"""Tests for dependency graph construction and cycle detection."""

import pytest

from repro.core.graph import DependencyGraph, Edge, EdgeType, build_dependency, find_cycle
from repro.core.model import History, Transaction, read, write


def txn(txn_id, *ops, **kwargs):
    return Transaction(txn_id, list(ops), **kwargs)


class TestDependencyGraphBasics:
    def test_add_edge_and_queries(self):
        graph = DependencyGraph()
        assert graph.add_edge(1, 2, EdgeType.WR, "x")
        assert not graph.add_edge(1, 2, EdgeType.WR, "x")  # duplicate
        assert graph.add_edge(1, 2, EdgeType.WW, "x")  # different label
        assert graph.has_edge(1, 2)
        assert graph.has_edge(1, 2, EdgeType.WR)
        assert graph.has_edge(1, 2, EdgeType.WR, "x")
        assert not graph.has_edge(2, 1)
        assert graph.num_edges == 2
        assert set(graph.successors(1)) == {2}

    def test_edges_filtered_by_type(self):
        graph = DependencyGraph()
        graph.add_edge(1, 2, EdgeType.WR, "x")
        graph.add_edge(2, 3, EdgeType.RW, "x")
        assert {e.edge_type for e in graph.edges()} == {EdgeType.WR, EdgeType.RW}
        assert [e.target for e in graph.edges(EdgeType.RW)] == [3]

    def test_edge_label_and_str(self):
        edge = Edge(1, 2, EdgeType.WR, "x")
        assert edge.label == "WR(x)"
        assert "T1" in str(edge) and "T2" in str(edge)
        assert Edge(1, 2, EdgeType.SO).label == "SO"

    def test_restricted_view(self):
        graph = DependencyGraph()
        graph.add_edge(1, 2, EdgeType.SO)
        graph.add_edge(2, 3, EdgeType.RW, "x")
        restricted = graph.restricted(frozenset({EdgeType.SO}))
        assert restricted.num_edges == 1
        assert restricted.nodes == graph.nodes


class _InstrumentedSucc(dict):
    """Forward-adjacency dict that counts whole-map scans and row lookups."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.values_calls = 0
        self.getitem_calls = 0

    def values(self):
        self.values_calls += 1
        return super().values()

    def __getitem__(self, key):
        self.getitem_calls += 1
        return super().__getitem__(key)


class TestRemoveNode:
    def build_chain(self, n):
        graph = DependencyGraph()
        for i in range(n - 1):
            graph.add_edge(i, i + 1, EdgeType.SO)
        return graph

    def test_remove_node_drops_incident_edges(self):
        graph = self.build_chain(5)
        graph.add_edge(2, 4, EdgeType.RW, "x")
        graph.remove_node(2)
        assert 2 not in graph.nodes
        assert not graph.has_edge(1, 2) and not graph.has_edge(2, 3)
        assert not graph.has_edge(2, 4)
        assert graph.num_edges == 2  # 0->1 and 3->4 survive

    def test_remove_then_readd_is_clean(self):
        graph = self.build_chain(3)
        graph.remove_node(1)
        assert graph.num_edges == 0
        assert graph.add_edge(0, 1, EdgeType.SO)
        assert graph.add_edge(1, 2, EdgeType.SO)
        assert graph.num_edges == 2
        graph.remove_node(1)
        assert graph.num_edges == 0 and graph.nodes == {0, 2}

    def test_remove_node_never_scans_whole_graph(self):
        # Window GC must be O(degree): removing a low-degree node from a
        # large graph may touch only its own adjacency rows, never iterate
        # the full successor map, and perform at most O(degree) lookups.
        graph = self.build_chain(500)
        instrumented = _InstrumentedSucc(graph._succ)
        graph._succ = instrumented
        graph.remove_node(250)
        assert instrumented.values_calls == 0, "remove_node scanned the successor map"
        assert instrumented.getitem_calls == 0  # only .pop/.get are needed
        assert not graph.has_edge(249, 250) and not graph.has_edge(250, 251)

    def test_predecessor_map_tracks_edges(self):
        graph = DependencyGraph()
        graph.add_edge(1, 3, EdgeType.WR, "x")
        graph.add_edge(2, 3, EdgeType.WW, "x")
        assert set(graph.predecessors(3)) == {1, 2}
        graph.remove_node(1)
        assert set(graph.predecessors(3)) == {2}


class TestTransitiveClosureHelper:
    def brute(self, pairs):
        succ = {}
        for s, t in pairs:
            succ.setdefault(s, set()).add(t)
        out = set(pairs)
        nodes = {n for pair in pairs for n in pair}
        for s in nodes:
            seen, stack = set(), list(succ.get(s, ()))
            while stack:
                n = stack.pop()
                if n in seen:
                    continue
                seen.add(n)
                stack.extend(succ.get(n, ()))
            out.update((s, t) for t in seen if t != s)
        return out

    def test_chain_dag_and_diamond(self):
        from repro.core.graph import _transitive_closure

        chain = [(1, 2), (2, 3), (3, 4)]
        assert _transitive_closure(chain) == self.brute(chain)
        diamond = [(1, 2), (1, 3), (2, 4), (3, 4)]
        assert _transitive_closure(diamond) == self.brute(diamond)

    def test_cyclic_relation_from_anomalous_history(self):
        from repro.core.graph import _transitive_closure

        cyclic = [(1, 2), (2, 3), (3, 1), (3, 4)]
        assert _transitive_closure(cyclic) == self.brute(cyclic)

    def test_randomized_against_brute_force(self):
        import random

        from repro.core.graph import _transitive_closure

        rng = random.Random(7)
        for _ in range(200):
            n = rng.randint(1, 10)
            pairs = [
                (rng.randrange(n), rng.randrange(n))
                for _ in range(rng.randint(0, 18))
            ]
            assert _transitive_closure(pairs) == self.brute(pairs), pairs


class TestCycleDetection:
    def test_acyclic_graph(self):
        graph = DependencyGraph()
        graph.add_edge(1, 2, EdgeType.SO)
        graph.add_edge(2, 3, EdgeType.SO)
        assert graph.is_acyclic()
        assert graph.find_cycle() is None

    def test_two_node_cycle(self):
        graph = DependencyGraph()
        graph.add_edge(1, 2, EdgeType.WW, "x")
        graph.add_edge(2, 1, EdgeType.RW, "x")
        cycle = graph.find_cycle()
        assert cycle is not None
        assert {edge.source for edge in cycle} == {1, 2}

    def test_longer_cycle_is_found(self):
        graph = DependencyGraph()
        for a, b in [(1, 2), (2, 3), (3, 4), (4, 2)]:
            graph.add_edge(a, b, EdgeType.SO)
        cycle = graph.find_cycle()
        assert cycle is not None
        assert {edge.source for edge in cycle} == {2, 3, 4}

    def test_isolated_nodes_do_not_confuse_detection(self):
        graph = DependencyGraph(nodes=[10, 20])
        graph.add_edge(1, 2, EdgeType.SO)
        assert graph.is_acyclic()

    def test_find_cycle_helper_on_plain_adjacency(self):
        assert find_cycle([1, 2, 3], {1: [2], 2: [3], 3: []}) is None
        cycle = find_cycle([1, 2, 3], {1: [2], 2: [3], 3: [1]})
        assert sorted(cycle) == [1, 2, 3]

    def test_self_loop_is_a_cycle(self):
        assert find_cycle([1], {1: [1]}) == [1]


class TestSIInducedGraph:
    def test_composition_adds_edges(self):
        graph = DependencyGraph()
        graph.add_edge(1, 2, EdgeType.WR, "x")
        graph.add_edge(2, 3, EdgeType.RW, "x")
        induced = graph.si_induced_graph()
        assert induced.has_edge(1, 2)          # base edge kept
        assert induced.has_edge(1, 3)          # composed WR ; RW
        assert not induced.has_edge(2, 3)      # raw RW edges are dropped

    def test_adjacent_rw_cycle_disappears(self):
        # Write-skew shape: two RW edges only — no SI-forbidden cycle.
        graph = DependencyGraph()
        graph.add_edge(1, 2, EdgeType.RW, "y")
        graph.add_edge(2, 1, EdgeType.RW, "x")
        assert graph.find_cycle() is not None
        assert graph.si_induced_graph().find_cycle() is None

    def test_ww_rw_cycle_survives(self):
        graph = DependencyGraph()
        graph.add_edge(1, 2, EdgeType.WW, "x")
        graph.add_edge(2, 1, EdgeType.RW, "x")
        assert graph.si_induced_graph().find_cycle() is not None


class TestBuildDependency:
    def _chain_history(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 1), write("x", 2))
        t3 = txn(3, read("x", 2))
        return History.from_transactions([[t1, t2], [t3]], initial_keys=["x"])

    def test_wr_edges_follow_unique_values(self):
        graph = build_dependency(self._chain_history())
        assert graph.has_edge(1, 2, EdgeType.WR, "x")
        assert graph.has_edge(2, 3, EdgeType.WR, "x")
        assert graph.has_edge(-1, 1, EdgeType.WR, "x")

    def test_ww_edges_inferred_from_rmw(self):
        graph = build_dependency(self._chain_history())
        assert graph.has_edge(-1, 1, EdgeType.WW, "x")
        assert graph.has_edge(1, 2, EdgeType.WW, "x")
        assert not graph.has_edge(2, 3, EdgeType.WW, "x")  # T3 does not write

    def test_rw_edges_derived(self):
        # T3 reads x from T2; nothing overwrites T2, so no RW edge from T3.
        graph = build_dependency(self._chain_history())
        assert not any(True for _ in graph.edges(EdgeType.RW) if _.source == 3)
        # T1 read from the initial txn which T1 overwrites -> no self RW.
        assert not graph.has_edge(1, 1, EdgeType.RW, "x")

    def test_so_edges_adjacent_only(self):
        graph = build_dependency(self._chain_history())
        assert graph.has_edge(1, 2, EdgeType.SO)
        assert graph.has_edge(-1, 1, EdgeType.SO)
        assert graph.has_edge(-1, 3, EdgeType.SO)

    def test_rt_edges_only_when_requested(self):
        t1 = txn(1, read("x", 0), write("x", 1), start_ts=0.0, finish_ts=1.0)
        t2 = txn(2, read("x", 1), start_ts=2.0, finish_ts=3.0)
        history = History.from_transactions([[t1], [t2]], initial_keys=["x"])
        without_rt = build_dependency(history, with_rt=False)
        with_rt = build_dependency(history, with_rt=True)
        assert not any(True for _ in without_rt.edges(EdgeType.RT))
        assert with_rt.has_edge(1, 2, EdgeType.RT)

    def test_divergent_readers_produce_rw_edges(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 0), write("x", 2))
        history = History.from_transactions([[t1], [t2]], initial_keys=["x"])
        graph = build_dependency(history)
        assert graph.has_edge(1, 2, EdgeType.RW, "x")
        assert graph.has_edge(2, 1, EdgeType.RW, "x")

    def test_transitive_ww_closure_adds_edges(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 1), write("x", 2))
        t3 = txn(3, read("x", 2), write("x", 3))
        history = History.from_transactions([[t1], [t2], [t3]], initial_keys=["x"])
        plain = build_dependency(history, transitive_ww=False)
        closed = build_dependency(history, transitive_ww=True)
        assert not plain.has_edge(1, 3, EdgeType.WW, "x")
        assert closed.has_edge(1, 3, EdgeType.WW, "x")
        # Theorem 1: both must agree on acyclicity.
        assert plain.is_acyclic() == closed.is_acyclic() is True

    def test_aborted_transactions_excluded_from_graph(self):
        from repro.core.model import TransactionStatus

        aborted = txn(1, read("x", 0), write("x", 1), status=TransactionStatus.ABORTED)
        t2 = txn(2, read("x", 0), write("x", 2))
        history = History.from_transactions([[aborted], [t2]], initial_keys=["x"])
        graph = build_dependency(history)
        assert 1 not in graph.nodes
        assert 2 in graph.nodes
