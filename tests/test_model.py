"""Tests for the core history model (operations, transactions, histories)."""

import itertools

import pytest

from repro.core.model import (
    INITIAL_TXN_ID,
    INITIAL_VALUE,
    History,
    Operation,
    OpType,
    Session,
    Transaction,
    TransactionStatus,
    interval_order_reduction,
    make_initial_transaction,
    read,
    write,
)


class TestOperation:
    def test_read_constructor(self):
        op = read("x", 5)
        assert op.is_read and not op.is_write
        assert op.key == "x" and op.value == 5

    def test_write_constructor(self):
        op = write("y", 7)
        assert op.is_write and not op.is_read
        assert op.op_type is OpType.WRITE

    def test_read_without_value(self):
        assert read("x").value is None

    def test_str_rendering(self):
        assert str(read("x", 1)) == "R(x,1)"
        assert str(write("x", 2)) == "W(x,2)"

    def test_operations_are_hashable_and_frozen(self):
        op = read("x", 1)
        assert op in {op}
        with pytest.raises(AttributeError):
            op.value = 3  # type: ignore[misc]


class TestTransaction:
    def test_final_write_returns_last_value(self):
        txn = Transaction(1, [read("x", 0), write("x", 1), write("x", 2)])
        assert txn.final_write("x") == 2

    def test_final_write_missing_key(self):
        txn = Transaction(1, [read("x", 0)])
        assert txn.final_write("x") is None

    def test_external_read_first_read_before_write(self):
        txn = Transaction(1, [read("x", 3), write("x", 4), read("x", 4)])
        assert txn.external_read("x") == 3

    def test_external_read_none_when_write_first(self):
        txn = Transaction(1, [write("x", 4), read("x", 4)])
        assert txn.external_read("x") is None

    def test_external_reads_map(self):
        txn = Transaction(1, [read("x", 3), read("y", 5), write("y", 6), read("y", 6)])
        assert txn.external_reads() == {"x": 3, "y": 5}

    def test_final_writes_map(self):
        txn = Transaction(1, [read("x", 0), write("x", 1), read("y", 0), write("y", 2), write("x", 3)])
        assert txn.final_writes() == {"x": 3, "y": 2}

    def test_keys_queries(self):
        txn = Transaction(1, [read("x", 0), write("y", 1)])
        assert txn.keys() == {"x", "y"}
        assert txn.keys_read() == {"x"}
        assert txn.keys_written() == {"y"}

    def test_writes_to(self):
        txn = Transaction(1, [read("x", 0), write("x", 1)])
        assert txn.writes_to("x")
        assert not txn.writes_to("y")

    def test_status_flags(self):
        committed = Transaction(1, [], status=TransactionStatus.COMMITTED)
        aborted = Transaction(2, [], status=TransactionStatus.ABORTED)
        assert committed.committed and not committed.aborted
        assert aborted.aborted and not aborted.committed

    def test_initial_flag(self):
        assert Transaction(INITIAL_TXN_ID, []).is_initial
        assert not Transaction(5, []).is_initial

    def test_append_and_len(self):
        txn = Transaction(1, [])
        txn.append(read("x", 0))
        txn.append(write("x", 1))
        assert len(txn) == 2

    def test_reads_and_writes_iterators(self):
        txn = Transaction(1, [read("x", 0), write("x", 1), read("y", 2)])
        assert [op.key for op in txn.reads()] == ["x", "y"]
        assert [op.key for op in txn.writes()] == ["x"]


class TestInitialTransaction:
    def test_make_initial_transaction_writes_all_keys(self):
        txn = make_initial_transaction(["b", "a", "a"])
        assert txn.txn_id == INITIAL_TXN_ID
        assert [op.key for op in txn.operations] == ["a", "b"]
        assert all(op.value == INITIAL_VALUE for op in txn.operations)

    def test_custom_initial_value(self):
        txn = make_initial_transaction(["x"], value=9)
        assert txn.final_write("x") == 9


class TestHistory:
    def _simple_history(self):
        t1 = Transaction(1, [read("x", 0), write("x", 1)])
        t2 = Transaction(2, [read("x", 1), write("x", 2)])
        t3 = Transaction(3, [read("x", 2)])
        return History.from_transactions([[t1, t2], [t3]], initial_keys=["x"])

    def test_from_transactions_assigns_sessions(self):
        history = self._simple_history()
        assert len(history.sessions) == 2
        assert history.sessions[0].transactions[0].session_id == 0
        assert history.sessions[1].transactions[0].session_id == 1

    def test_transactions_includes_initial(self):
        history = self._simple_history()
        assert len(history.transactions(include_initial=True)) == 4
        assert len(history.transactions(include_initial=False)) == 3

    def test_committed_transactions_filters_aborted(self):
        t1 = Transaction(1, [read("x", 0)], status=TransactionStatus.ABORTED)
        t2 = Transaction(2, [read("x", 0)])
        history = History.from_transactions([[t1, t2]], initial_keys=["x"])
        committed = history.committed_transactions(include_initial=False)
        assert [t.txn_id for t in committed] == [2]

    def test_transaction_by_id(self):
        history = self._simple_history()
        assert history.transaction_by_id(2).txn_id == 2
        assert history.transaction_by_id(INITIAL_TXN_ID).is_initial

    def test_keys(self):
        history = self._simple_history()
        assert history.keys() == {"x"}

    def test_session_order_adjacent_pairs_with_initial(self):
        history = self._simple_history()
        pairs = {(a.txn_id, b.txn_id) for a, b in history.session_order()}
        assert (INITIAL_TXN_ID, 1) in pairs
        assert (1, 2) in pairs
        assert (INITIAL_TXN_ID, 3) in pairs
        assert (1, 3) not in pairs  # cross-session pairs never appear

    def test_session_order_skips_aborted_by_default(self):
        t1 = Transaction(1, [read("x", 0)])
        t2 = Transaction(2, [read("x", 0)], status=TransactionStatus.ABORTED)
        t3 = Transaction(3, [read("x", 0)])
        history = History.from_transactions([[t1, t2, t3]], initial_keys=["x"])
        pairs = {(a.txn_id, b.txn_id) for a, b in history.session_order()}
        assert (1, 3) in pairs and (1, 2) not in pairs

    def test_ensure_initial_transaction_idempotent(self):
        t1 = Transaction(1, [read("x", 0)])
        history = History.from_transactions([[t1]])
        assert history.initial_transaction is None
        history.ensure_initial_transaction()
        first = history.initial_transaction
        history.ensure_initial_transaction()
        assert history.initial_transaction is first
        assert first.final_write("x") == INITIAL_VALUE

    def test_real_time_order_requires_timestamps(self):
        history = self._simple_history()
        assert history.real_time_order() == []

    def test_real_time_order_respects_intervals(self):
        t1 = Transaction(1, [read("x", 0)], start_ts=0.0, finish_ts=1.0)
        t2 = Transaction(2, [read("x", 0)], start_ts=2.0, finish_ts=3.0)
        t3 = Transaction(3, [read("x", 0)], start_ts=0.5, finish_ts=2.5)
        history = History.from_transactions([[t1], [t2], [t3]])
        pairs = {(a.txn_id, b.txn_id) for a, b in history.real_time_order()}
        assert (1, 2) in pairs
        assert (1, 3) not in pairs and (3, 2) not in pairs

    def test_len_and_repr(self):
        history = self._simple_history()
        assert len(history) == 3
        assert "History(" in repr(history)


class TestIntervalOrderReduction:
    @staticmethod
    def _txn(txn_id, start, finish):
        return Transaction(txn_id, [], start_ts=start, finish_ts=finish)

    def test_reduction_on_a_chain(self):
        txns = [self._txn(i, float(i), i + 0.5) for i in range(5)]
        pairs = {(a.txn_id, b.txn_id) for a, b in interval_order_reduction(txns)}
        # Only adjacent pairs survive the reduction.
        assert pairs == {(i, i + 1) for i in range(4)}

    def test_reduction_preserves_reachability(self):
        import random

        rng = random.Random(42)
        txns = []
        for i in range(40):
            start = rng.uniform(0, 100)
            txns.append(self._txn(i, start, start + rng.uniform(0.1, 20)))

        full = {
            (a.txn_id, b.txn_id)
            for a, b in itertools.permutations(txns, 2)
            if a.finish_ts < b.start_ts
        }
        reduced = {(a.txn_id, b.txn_id) for a, b in interval_order_reduction(txns)}
        assert reduced <= full

        # Transitive closure of the reduction equals the full relation.
        adjacency = {}
        for a, b in reduced:
            adjacency.setdefault(a, set()).add(b)
        closure = set()
        for node in {t.txn_id for t in txns}:
            stack = list(adjacency.get(node, ()))
            seen = set()
            while stack:
                nxt = stack.pop()
                if nxt in seen:
                    continue
                seen.add(nxt)
                closure.add((node, nxt))
                stack.extend(adjacency.get(nxt, ()))
        assert closure == full

    def test_empty_and_untimed_transactions(self):
        assert interval_order_reduction([]) == []
        untimed = Transaction(1, [])
        assert interval_order_reduction([untimed]) == []


class TestSession:
    def test_append_sets_session_id(self):
        session = Session(session_id=7)
        txn = Transaction(1, [])
        session.append(txn)
        assert txn.session_id == 7
        assert len(session) == 1
        assert list(iter(session)) == [txn]
