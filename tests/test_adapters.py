"""Tests for the database-adapter subsystem and the concurrent collector.

Covers the adapter protocol over a real engine (SQLite) and the simulator,
the SQLite busy/locked -> retryable-abort mapping, the protocol-boundary
chaos faults (with their expected anomaly classes), and the
adapter-equivalence suite: collecting through ``SimulatedAdapter`` must
yield the same checker verdicts as the direct ``workloads/runner.py`` path.
"""

import sqlite3
import threading

import pytest

from repro.adapters import (
    AdapterAborted,
    AdapterStateError,
    ChaosAdapter,
    ChaosPlan,
    Collector,
    SimulatedAdapter,
    SimulatedSession,
    SQLiteAdapter,
    collect_history,
    make_adapter,
)
from repro.adapters.collector import ThreadSafeClock
from repro.core.checker import MTChecker
from repro.core.result import AnomalyKind, IsolationLevel
from repro.db.database import Database
from repro.db.errors import TransactionAborted, retryable_sqlite_abort
from repro.db.faults import FaultPlan
from repro.history.serialization import (
    HistoryStreamWriter,
    load_history_jsonl,
)
from repro.workloads.mt_generator import MTWorkloadGenerator
from repro.workloads.runner import run_workload

LEVELS = {
    "SI": IsolationLevel.SNAPSHOT_ISOLATION,
    "SER": IsolationLevel.SERIALIZABILITY,
    "SSER": IsolationLevel.STRICT_SERIALIZABILITY,
}


def small_workload(sessions=4, txns=40, objects=10, seed=3):
    return MTWorkloadGenerator(
        num_sessions=sessions,
        txns_per_session=txns,
        num_objects=objects,
        seed=seed,
    ).generate()


# ----------------------------------------------------------------------
# Protocol basics
# ----------------------------------------------------------------------
class TestSQLiteAdapter:
    def test_begin_read_write_commit(self):
        with SQLiteAdapter() as adapter:
            adapter.setup(["x"], initial_value=0)
            session = adapter.session(0)
            session.begin()
            assert session.read("x") == 0
            assert session.read("missing") is None
            session.write("x", 41)
            session.commit()
            session.close()
            assert adapter.committed_value("x") == 41

    def test_abort_rolls_back(self):
        with SQLiteAdapter() as adapter:
            adapter.setup(["x"], initial_value=7)
            with adapter.session(0) as session:
                session.begin()
                session.write("x", 99)
                session.abort()
            assert adapter.committed_value("x") == 7

    def test_operations_outside_transaction_are_state_errors(self):
        with SQLiteAdapter() as adapter:
            with adapter.session(0) as session:
                with pytest.raises(AdapterStateError):
                    session.read("x")
                with pytest.raises(AdapterStateError):
                    session.commit()
                session.begin()
                with pytest.raises(AdapterStateError):
                    session.begin()
                session.abort()

    def test_in_memory_databases_are_rejected(self):
        with pytest.raises(ValueError):
            SQLiteAdapter(":memory:")

    def test_capabilities_report_a_real_time_serializable_engine(self):
        with SQLiteAdapter(wal=True) as adapter:
            caps = adapter.capabilities()
            assert caps.supports("ser") and caps.supports("SSER")
            assert caps.real_time and caps.concurrent_sessions
            assert "wal" in caps.name

    def test_lock_contention_maps_to_retryable_abort(self):
        """Satellite: busy timeouts ride the db/errors.py retryable path."""
        with SQLiteAdapter(mode="immediate", busy_timeout_ms=1) as adapter:
            adapter.setup(["x"])
            writer = adapter.session(0)
            blocked = adapter.session(1)
            writer.begin()
            writer.write("x", 1)  # holds the write lock
            with pytest.raises(AdapterAborted) as excinfo:
                blocked.begin()  # BEGIN IMMEDIATE cannot take the lock
            assert isinstance(excinfo.value, TransactionAborted)
            assert excinfo.value.retryable
            writer.commit()
            # The blocked session recovers on retry.
            blocked.begin()
            assert blocked.read("x") == 1
            blocked.commit()
            writer.close()
            blocked.close()


class TestRetryableSqliteMapping:
    def test_locked_errors_become_transaction_aborted(self):
        abort = retryable_sqlite_abort(sqlite3.OperationalError("database is locked"))
        assert isinstance(abort, TransactionAborted)
        assert abort.retryable
        assert "sqlite" in abort.reason

    def test_non_lock_errors_are_not_mapped(self):
        assert retryable_sqlite_abort(sqlite3.OperationalError("no such table: kv")) is None
        assert retryable_sqlite_abort(ValueError("database is locked")) is None


class TestSimulatedAdapter:
    def test_wraps_every_engine_under_one_protocol(self):
        for engine in ("si", "serializable", "s2pl", "read-committed"):
            adapter = SimulatedAdapter(engine)
            adapter.setup(["x"])
            with adapter.session(0) as session:
                session.begin()
                assert session.read("x") == 0
                session.write("x", 5)
                session.commit()
            assert adapter.committed_value("x") == 5

    def test_conflict_aborts_surface_as_adapter_aborted(self):
        adapter = SimulatedAdapter("si")
        adapter.setup(["x"])
        first, second = adapter.session(0), adapter.session(1)
        first.begin()
        second.begin()
        assert first.read("x") == 0
        assert second.read("x") == 0
        first.write("x", 1)
        first.commit()
        second.write("x", 2)
        with pytest.raises(AdapterAborted) as excinfo:
            second.commit()  # first-committer-wins
        assert isinstance(excinfo.value, TransactionAborted)


# ----------------------------------------------------------------------
# Concurrent collection
# ----------------------------------------------------------------------
class TestCollector:
    def test_sqlite_collection_satisfies_ser_and_sser(self):
        workload = small_workload()
        with SQLiteAdapter() as adapter:
            result = Collector(adapter).collect(workload)
        assert result.stats.committed > 0
        checker = MTChecker()
        assert checker.verify(result.history, LEVELS["SER"]).satisfied
        assert checker.verify(result.history, LEVELS["SSER"]).satisfied
        assert MTChecker.is_mt_history(result.history)

    def test_retry_path_under_heavy_lock_contention(self):
        workload = small_workload(sessions=6, txns=25, objects=6, seed=9)
        with SQLiteAdapter(mode="deferred", busy_timeout_ms=5) as adapter:
            result = Collector(adapter, max_retries=8).collect(workload)
        assert result.stats.aborted > 0, "deferred mode at 5ms must hit busy aborts"
        assert result.stats.retries > 0
        assert MTChecker().verify(result.history, LEVELS["SER"]).satisfied

    def test_concurrent_collection_roundtrips_jsonl_with_identical_parallel_verdicts(
        self, tmp_path
    ):
        workload = small_workload(sessions=4, txns=50, objects=12, seed=21)
        path = tmp_path / "e2e.jsonl"
        with SQLiteAdapter(wal=True) as adapter:
            with HistoryStreamWriter(path, initial_keys=workload.keys) as writer:
                result = Collector(adapter, on_transaction=writer).collect(workload)
        loaded = load_history_jsonl(path)
        direct = MTChecker().verify(result.history, LEVELS["SER"])
        serial = MTChecker(workers=1).verify(loaded, LEVELS["SER"])
        parallel = MTChecker(workers=4).verify(loaded, LEVELS["SER"])
        assert direct.satisfied and serial.satisfied and parallel.satisfied
        assert (
            direct.num_transactions
            == serial.num_transactions
            == parallel.num_transactions
        )

    def test_hook_sees_transactions_in_finish_timestamp_order(self):
        seen = []
        workload = small_workload(sessions=4, txns=20, objects=8)
        with SQLiteAdapter(wal=True) as adapter:
            collect_history(adapter, workload, on_transaction=seen.append)
        stamps = [txn.finish_ts for txn in seen]
        assert stamps == sorted(stamps)
        assert all(txn.start_ts < txn.finish_ts for txn in seen)

    def test_written_values_are_globally_unique(self):
        workload = small_workload(sessions=6, txns=30, objects=5, seed=2)
        with SQLiteAdapter(wal=True) as adapter:
            result = Collector(adapter).collect(workload)
        values = [
            op.value
            for txn in result.history.transactions(include_initial=False)
            for op in txn.operations
            if op.is_write
        ]
        assert len(values) == len(set(values))

    def test_nonzero_initial_value_is_not_a_false_positive(self):
        # ⊥T must install what adapter.setup installed, or a healthy
        # engine gets flagged with spurious ThinAirReads.
        workload = small_workload(sessions=2, txns=15, objects=6)
        with SQLiteAdapter() as adapter:
            result = Collector(adapter, initial_value=7).collect(workload)
        verdict = MTChecker().verify(result.history, LEVELS["SER"])
        assert verdict.satisfied, verdict.violation
        initial = result.history.initial_transaction
        assert all(op.value == 7 for op in initial.operations)

    def test_non_retryable_aborts_are_recorded_but_not_retried(self):
        class PermanentlyFailingSession(SimulatedSession):
            def commit(self):
                super().abort()
                raise AdapterAborted("quota exceeded", retryable=False)

        class PermanentlyFailingAdapter(SimulatedAdapter):
            def session(self, session_id):
                return PermanentlyFailingSession(
                    self.database, session_id, self._lock
                )

        workload = small_workload(sessions=2, txns=5, objects=4)
        result = Collector(PermanentlyFailingAdapter("si"), max_retries=3).collect(workload)
        assert result.stats.committed == 0
        assert result.stats.aborted == 10  # one attempt per transaction
        assert result.stats.retries == 0

    def test_worker_errors_propagate(self):
        class ExplodingAdapter(SQLiteAdapter):
            def session(self, session_id):
                raise RuntimeError("connection refused")

        workload = small_workload(sessions=2, txns=2, objects=2)
        with ExplodingAdapter() as adapter:
            with pytest.raises(RuntimeError, match="connection refused"):
                Collector(adapter).collect(workload)


class TestThreadSafeClock:
    def test_strictly_monotonic_across_threads(self):
        clock = ThreadSafeClock()
        stamps = []
        lock = threading.Lock()

        def tick_many():
            for _ in range(500):
                stamp = clock.tick()
                with lock:
                    stamps.append(stamp)

        threads = [threading.Thread(target=tick_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(stamps)) == len(stamps) == 2000


# ----------------------------------------------------------------------
# Adapter equivalence: SimulatedAdapter collection vs the serial runner
# ----------------------------------------------------------------------
class TestAdapterEquivalence:
    @pytest.mark.parametrize(
        "engine, guaranteed",
        [("si", ["SI"]), ("serializable", ["SER", "SI"]), ("s2pl", ["SSER", "SER", "SI"])],
    )
    def test_correct_engines_agree_with_runner_verdicts(self, engine, guaranteed):
        workload = small_workload(sessions=4, txns=30, objects=8, seed=11)
        runner_history = run_workload(
            Database(engine, keys=workload.keys), workload, seed=12
        ).history
        adapter = SimulatedAdapter(engine)
        collected = Collector(adapter).collect(workload).history
        checker = MTChecker()
        for level in guaranteed:
            via_runner = checker.verify(runner_history, LEVELS[level])
            via_adapter = checker.verify(collected, LEVELS[level])
            assert via_runner.satisfied and via_adapter.satisfied, (
                engine,
                level,
                via_runner.violation,
                via_adapter.violation,
            )

    def test_faulty_engine_detected_through_both_paths(self):
        workload = MTWorkloadGenerator(
            num_sessions=6, txns_per_session=40, num_objects=6,
            distribution="zipf", seed=4,
        ).generate()
        faults = FaultPlan.for_anomaly("lostupdate", rate=0.9, seed=4)
        runner_history = run_workload(
            Database("si", keys=workload.keys, faults=faults), workload, seed=5
        ).history
        # op_delay forces threaded transactions to genuinely overlap, so the
        # engine sees the write-write conflicts the fault plan corrupts.
        adapter = SimulatedAdapter(
            "si", faults=FaultPlan.for_anomaly("lostupdate", rate=0.9, seed=4),
            op_delay=0.0002,
        )
        collected = Collector(adapter).collect(workload).history
        assert adapter.database.injected_anomalies.get("lost_update", 0) > 0
        checker = MTChecker()
        assert not checker.verify(runner_history, LEVELS["SI"]).satisfied
        assert not checker.verify(collected, LEVELS["SI"]).satisfied


# ----------------------------------------------------------------------
# Chaos faults and their expected anomaly classes
# ----------------------------------------------------------------------
class TestChaosAdapter:
    def collect_with_chaos(self, fault, *, rate=0.3, seed=5, base="sqlite"):
        workload = small_workload(sessions=4, txns=60, objects=10, seed=3)
        adapter = make_adapter(base, chaos=fault, chaos_rate=rate, seed=seed, wal=True)
        with adapter:
            result = Collector(adapter).collect(workload)
        return adapter, result

    def test_lost_write_produces_a_counterexample_cycle(self):
        adapter, result = self.collect_with_chaos("lost-write")
        assert adapter.injections["lost_write"] > 0
        verdict = MTChecker().verify(result.history, LEVELS["SER"])
        assert not verdict.satisfied
        assert any(v.cycle for v in verdict.violations), "expected a cycle counterexample"
        # A healthy engine whose clients lose writes also breaks SI.
        assert not MTChecker().verify(result.history, LEVELS["SI"]).satisfied

    def test_duplicate_commit_is_flagged_as_aborted_read(self):
        adapter, result = self.collect_with_chaos("duplicate-commit")
        assert adapter.injections["duplicate_commit"] > 0
        verdict = MTChecker().verify(result.history, LEVELS["SER"])
        assert not verdict.satisfied
        assert AnomalyKind.ABORTED_READ in {v.kind for v in verdict.violations}

    def test_stale_read_violates_serializability(self):
        adapter, result = self.collect_with_chaos("stale-read", rate=0.4)
        assert adapter.injections["stale_read"] > 0
        verdict = MTChecker().verify(result.history, LEVELS["SER"])
        assert not verdict.satisfied

    def test_chaos_free_wrapper_is_transparent(self):
        workload = small_workload(sessions=2, txns=20, objects=6)
        adapter = ChaosAdapter(SimulatedAdapter("si"), ChaosPlan())
        result = Collector(adapter).collect(workload)
        assert not adapter.plan.any_enabled
        assert sum(adapter.injections.values()) == 0
        assert MTChecker().verify(result.history, LEVELS["SI"]).satisfied

    def test_unknown_fault_name_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos fault"):
            ChaosPlan.for_fault("bit-flip")


class TestMakeAdapter:
    def test_unknown_adapter_rejected(self):
        with pytest.raises(ValueError, match="unknown adapter"):
            make_adapter("postgres")

    def test_builds_each_registered_adapter(self):
        with make_adapter("sqlite") as sqlite_adapter:
            assert isinstance(sqlite_adapter, SQLiteAdapter)
        assert isinstance(make_adapter("simulated", isolation="s2pl"), SimulatedAdapter)
        assert isinstance(make_adapter("simulated", chaos="lost-write"), ChaosAdapter)
