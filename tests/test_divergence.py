"""Tests for DIVERGENCE pattern detection (Definition 10 / Lemma 1)."""

from repro.core.checkers import check_si
from repro.core.divergence import find_all_divergences, find_divergence
from repro.core.model import History, Transaction, read, write


def txn(txn_id, *ops):
    return Transaction(txn_id, list(ops))


def history_of(*sessions, keys=("x",)):
    return History.from_transactions(list(sessions), initial_keys=list(keys))


class TestFindDivergence:
    def test_basic_divergence(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 0), write("x", 2))
        instance = find_divergence(history_of([t1], [t2]))
        assert instance is not None
        assert instance.key == "x"
        assert {instance.reader_a, instance.reader_b} == {1, 2}
        assert instance.writer == -1  # the initial transaction

    def test_no_divergence_on_a_chain(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 1), write("x", 2))
        assert find_divergence(history_of([t1], [t2])) is None

    def test_reader_without_write_does_not_count(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 0))  # reads the same value but never writes x
        assert find_divergence(history_of([t1], [t2])) is None

    def test_divergence_on_non_initial_writer(self):
        t0 = txn(1, read("x", 0), write("x", 5))
        t1 = txn(2, read("x", 5), write("x", 6))
        t2 = txn(3, read("x", 5), write("x", 7))
        instance = find_divergence(history_of([t0], [t1], [t2]))
        assert instance is not None
        assert instance.writer == 1
        assert instance.value == 5

    def test_same_written_value_is_not_divergence(self):
        # Only possible without unique values; the pattern requires different writes.
        t1 = txn(1, read("x", 0), write("x", 9))
        t2 = txn(2, read("x", 0), write("x", 9))
        assert find_divergence(history_of([t1], [t2])) is None

    def test_find_all_divergences_counts_every_object(self):
        t1 = txn(1, read("x", 0), write("x", 1), read("y", 0), write("y", 2))
        t2 = txn(2, read("x", 0), write("x", 3), read("y", 0), write("y", 4))
        instances = find_all_divergences(history_of([t1], [t2], keys=("x", "y")))
        assert {i.key for i in instances} == {"x", "y"}

    def test_violation_conversion(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 0), write("x", 2))
        instance = find_divergence(history_of([t1], [t2]))
        violation = instance.to_violation()
        assert "DIVERGENCE" in violation.description
        assert set(violation.txn_ids) == {-1, 1, 2}


class TestLemma1:
    def test_divergence_implies_si_violation(self):
        """Lemma 1: any history containing DIVERGENCE violates SI."""
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 0), write("x", 2))
        history = history_of([t1], [t2])
        assert find_divergence(history) is not None
        assert not check_si(history).satisfied

    def test_si_violation_detected_even_without_early_exit(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 0), write("x", 2))
        history = history_of([t1], [t2])
        result = check_si(history, early_divergence_exit=False)
        assert not result.satisfied
