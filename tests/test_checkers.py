"""Tests for the MTC verification algorithms (CHECKSSER, CHECKSER, CHECKSI)."""

import pytest

from repro.core.anomalies import anomaly_catalog
from repro.core.checkers import MTHistoryError, check_ser, check_si, check_sser, classify_cycle
from repro.core.graph import DependencyGraph, Edge, EdgeType
from repro.core.model import History, Transaction, read, write
from repro.core.result import AnomalyKind, IsolationLevel


def txn(txn_id, *ops, **kwargs):
    return Transaction(txn_id, list(ops), **kwargs)


def history_of(*sessions, keys=("x",)):
    return History.from_transactions(list(sessions), initial_keys=list(keys))


class TestCheckSer:
    def test_serializable_chain_passes(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 1), write("x", 2))
        result = check_ser(history_of([t1], [t2]))
        assert result.satisfied
        assert result.num_transactions == 2
        assert result.elapsed_seconds is not None

    def test_lost_update_rejected(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 0), write("x", 2))
        result = check_ser(history_of([t1], [t2]))
        assert not result.satisfied
        assert result.violation.cycle  # counterexample present

    def test_write_skew_rejected(self):
        t1 = txn(1, read("x", 0), read("y", 0), write("x", 1))
        t2 = txn(2, read("x", 0), read("y", 0), write("y", 1))
        result = check_ser(history_of([t1], [t2], keys=("x", "y")))
        assert not result.satisfied
        assert result.violation.kind is AnomalyKind.WRITE_SKEW

    def test_empty_history_passes(self):
        assert check_ser(History.from_transactions([], initial_keys=["x"])).satisfied

    def test_read_only_transactions_pass(self):
        t1 = txn(1, read("x", 0), read("y", 0))
        t2 = txn(2, read("y", 0), read("x", 0))
        assert check_ser(history_of([t1], [t2], keys=("x", "y"))).satisfied

    def test_transitive_ww_variant_agrees(self):
        for name, spec in anomaly_catalog().items():
            history = spec.build()
            assert (
                check_ser(history, transitive_ww=True).satisfied
                == check_ser(history, transitive_ww=False).satisfied
            ), name

    def test_strict_mt_rejects_non_mt_history(self):
        gt = txn(1, write("x", 1), write("y", 2), write("z", 3))
        history = history_of([gt], keys=("x", "y", "z"))
        with pytest.raises(MTHistoryError):
            check_ser(history, strict_mt=True)

    def test_int_violations_short_circuit(self):
        t1 = txn(1, read("x", 42))
        result = check_ser(history_of([t1]))
        assert not result.satisfied
        assert result.violation.kind is AnomalyKind.THIN_AIR_READ


class TestCheckSi:
    def test_si_chain_passes(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 1), write("x", 2))
        assert check_si(history_of([t1], [t2])).satisfied

    def test_write_skew_allowed_under_si(self):
        t1 = txn(1, read("x", 0), read("y", 0), write("x", 1))
        t2 = txn(2, read("x", 0), read("y", 0), write("y", 1))
        assert check_si(history_of([t1], [t2], keys=("x", "y"))).satisfied

    def test_lost_update_rejected_under_si(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 0), write("x", 2))
        result = check_si(history_of([t1], [t2]))
        assert not result.satisfied
        assert result.violation.kind is AnomalyKind.LOST_UPDATE

    def test_long_fork_rejected_under_si(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("y", 0), write("y", 1))
        t3 = txn(3, read("x", 1), read("y", 0))
        t4 = txn(4, read("x", 0), read("y", 1))
        history = history_of([t1], [t2], [t3], [t4], keys=("x", "y"))
        assert not check_si(history).satisfied

    def test_early_exit_flag_does_not_change_the_verdict(self):
        for name, spec in anomaly_catalog().items():
            history = spec.build()
            with_exit = check_si(history, early_divergence_exit=True)
            without_exit = check_si(history, early_divergence_exit=False)
            assert with_exit.satisfied == without_exit.satisfied, name


class TestCheckSser:
    def _timed(self, txn_id, start, finish, *ops):
        return Transaction(txn_id, list(ops), start_ts=start, finish_ts=finish)

    def test_real_time_respecting_history_passes(self):
        t1 = self._timed(1, 0.0, 1.0, read("x", 0), write("x", 1))
        t2 = self._timed(2, 2.0, 3.0, read("x", 1), write("x", 2))
        assert check_sser(history_of([t1], [t2])).satisfied

    def test_real_time_violation_rejected(self):
        # T2 finishes before T1 starts, yet T1's write is read by T2: impossible.
        t1 = self._timed(1, 5.0, 6.0, read("x", 0), write("x", 1))
        t2 = self._timed(2, 0.0, 1.0, read("x", 1))
        result = check_sser(history_of([t1], [t2]))
        assert not result.satisfied
        assert result.violation.kind is AnomalyKind.REAL_TIME_VIOLATION

    def test_ser_violations_are_also_sser_violations(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 0), write("x", 2))
        assert not check_sser(history_of([t1], [t2])).satisfied

    def test_reduced_and_naive_rt_agree(self):
        t1 = self._timed(1, 0.0, 1.0, read("x", 0), write("x", 1))
        t2 = self._timed(2, 0.5, 2.5, read("x", 1), write("x", 2))
        t3 = self._timed(3, 3.0, 4.0, read("x", 2))
        history = history_of([t1], [t2], [t3])
        assert (
            check_sser(history, reduced_rt=True).satisfied
            == check_sser(history, reduced_rt=False).satisfied
            is True
        )

    def test_untimed_history_degenerates_to_ser(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 1))
        assert check_sser(history_of([t1], [t2])).satisfied


class TestClassifyCycle:
    def _graph(self):
        return DependencyGraph(nodes=[1, 2, 3])

    def test_rt_cycle_is_real_time_violation(self):
        cycle = [Edge(1, 2, EdgeType.RT), Edge(2, 1, EdgeType.WR, "x")]
        violation = classify_cycle(cycle, self._graph(), level=IsolationLevel.STRICT_SERIALIZABILITY)
        assert violation.kind is AnomalyKind.REAL_TIME_VIOLATION

    def test_ww_rw_two_cycle_is_lost_update(self):
        cycle = [Edge(1, 2, EdgeType.WW, "x"), Edge(2, 1, EdgeType.RW, "x")]
        violation = classify_cycle(cycle, self._graph(), level=IsolationLevel.SERIALIZABILITY)
        assert violation.kind is AnomalyKind.LOST_UPDATE

    def test_adjacent_rw_pair_is_write_skew(self):
        cycle = [Edge(1, 2, EdgeType.RW, "x"), Edge(2, 1, EdgeType.RW, "y")]
        violation = classify_cycle(cycle, self._graph(), level=IsolationLevel.SERIALIZABILITY)
        assert violation.kind is AnomalyKind.WRITE_SKEW

    def test_separated_rw_pair_is_long_fork(self):
        cycle = [
            Edge(1, 3, EdgeType.WR, "x"),
            Edge(3, 2, EdgeType.RW, "y"),
            Edge(2, 4, EdgeType.WR, "y"),
            Edge(4, 1, EdgeType.RW, "x"),
        ]
        violation = classify_cycle(cycle, self._graph(), level=IsolationLevel.SERIALIZABILITY)
        assert violation.kind is AnomalyKind.LONG_FORK

    def test_session_cycle_is_session_guarantee_violation(self):
        cycle = [Edge(2, 3, EdgeType.SO), Edge(3, 2, EdgeType.RW, "x")]
        violation = classify_cycle(cycle, self._graph(), level=IsolationLevel.SERIALIZABILITY)
        assert violation.kind is AnomalyKind.SESSION_GUARANTEE_VIOLATION

    def test_violation_carries_cycle_and_transactions(self):
        cycle = [Edge(1, 2, EdgeType.WW, "x"), Edge(2, 1, EdgeType.RW, "x")]
        violation = classify_cycle(cycle, self._graph(), level=IsolationLevel.SERIALIZABILITY)
        assert violation.txn_ids == [1, 2]
        assert len(violation.cycle) == 2
        assert violation.key == "x"


class TestCatalogAgainstCheckers:
    @pytest.mark.parametrize("name", list(anomaly_catalog()))
    def test_ser_matches_ground_truth(self, name):
        spec = anomaly_catalog()[name]
        assert check_ser(spec.build()).satisfied == (not spec.violates_ser)

    @pytest.mark.parametrize("name", list(anomaly_catalog()))
    def test_si_matches_ground_truth(self, name):
        spec = anomaly_catalog()[name]
        assert check_si(spec.build()).satisfied == (not spec.violates_si)

    @pytest.mark.parametrize("name", list(anomaly_catalog()))
    def test_sser_matches_ground_truth(self, name):
        spec = anomaly_catalog()[name]
        assert check_sser(spec.build()).satisfied == (not spec.violates_sser)
