"""Docs lint: documentation code blocks execute and internal links resolve.

Every fenced ``python`` block in README.md and docs/*.md is executed (blocks
within one file share a namespace, so snippets may build on each other), and
every ``bash``/``sh``/``console`` block has its ``python -m repro …`` lines
replayed through :func:`repro.cli.main` in a scratch directory.  Relative
markdown links must point at files that exist in the repository.
"""

import re
import shlex
from pathlib import Path

import pytest

from repro.cli import main as repro_main

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))

FENCE_RE = re.compile(r"^```(\w*)\s*$")
LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def fenced_blocks(path):
    """Yield ``(language, code)`` for each fenced block in a markdown file."""
    language, lines = None, []
    for line in path.read_text(encoding="utf-8").splitlines():
        match = FENCE_RE.match(line.strip())
        if match and language is None:
            language, lines = match.group(1).lower(), []
        elif line.strip() == "```" and language is not None:
            yield language, "\n".join(lines)
            language, lines = None, []
        elif language is not None:
            lines.append(line)


def shell_commands(code):
    """The ``python -m repro …`` invocations of a shell block, as argv lists."""
    merged = []
    for raw in code.splitlines():
        line = raw.strip()
        if line.startswith("$ "):
            line = line[2:]
        if merged and merged[-1].endswith("\\"):
            merged[-1] = merged[-1][:-1].rstrip() + " " + line
        elif line:
            merged.append(line)
    for line in merged:
        if line.startswith("python -m repro"):
            yield shlex.split(line)[3:]


def test_documentation_exists():
    assert (REPO_ROOT / "README.md").exists()
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").exists()
    assert (REPO_ROOT / "docs" / "API.md").exists()


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_code_blocks_execute(doc, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    namespace = {}
    executed = 0
    for language, code in fenced_blocks(doc):
        if language == "python":
            exec(compile(code, f"{doc.name} snippet", "exec"), namespace)
            executed += 1
        elif language in ("bash", "sh", "console"):
            for argv in shell_commands(code):
                exit_code = repro_main(argv)
                assert exit_code in (0, 1), (argv, exit_code)
                executed += 1
    capsys.readouterr()
    if doc.name == "README.md":
        assert executed > 0, "README must contain runnable quickstart snippets"


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_internal_links_resolve(doc):
    for match in LINK_RE.finditer(doc.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        resolved = (doc.parent / relative).resolve()
        assert resolved.exists(), f"{doc.name}: broken link -> {target}"
