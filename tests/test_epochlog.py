"""Crash-recovery suite for the durable epoch log.

The contract under test (see ``repro.history.epochlog``): a writer killed
at ANY byte offset loses at most the epoch it was buffering — recovery
never crashes and never loses a *sealed* epoch — and a verifier killed
mid-stream resumes from its newest checkpoint to the exact verdict an
uninterrupted run produces.  Faults are injected post-hoc by truncating or
corrupting the on-disk files at randomized offsets, which covers every
state an interrupted writer can leave behind (its writes are sequential:
temp file, rename, manifest temp file, rename).
"""

import random

import pytest

from repro import Database, MTChecker, run_workload
from repro.core.incremental import CheckerSession, stream_order
from repro.core.result import IsolationLevel
from repro.history.columnar import ColumnarHistory
from repro.history.epochlog import (
    MANIFEST_NAME,
    RETIRED_NAME,
    EpochLog,
    EpochLogError,
    EpochLogWriter,
    is_epochlog_path,
)
from repro.workloads.mt_generator import MTWorkloadGenerator

SER = IsolationLevel.SERIALIZABILITY
SI = IsolationLevel.SNAPSHOT_ISOLATION
SSER = IsolationLevel.STRICT_SERIALIZABILITY
LEVELS = [SER, SI, SSER]


def make_history(seed, *, engine="si", sessions=4, txns=12, objects=8):
    """A recorded history; ``engine="rc"`` yields SER/SI anomalies."""
    workload = MTWorkloadGenerator(
        num_sessions=sessions, txns_per_session=txns, num_objects=objects, seed=seed
    ).generate()
    return run_workload(
        Database(engine, keys=workload.keys), workload, seed=seed + 1
    ).history


def build_log(directory, history, *, epoch_transactions=10, compress=False):
    with EpochLogWriter(
        directory, epoch_transactions=epoch_transactions, compress=compress
    ) as writer:
        for txn in stream_order(history):
            writer.append(txn)
    return EpochLog.open(directory)


def stream_format(log, level, *, window=None, start_epoch=0, session=None):
    """Final verdict text of streaming every epoch from ``start_epoch``."""
    if session is None:
        session = CheckerSession(level, window=window)
    for _entry, segment in log.iter_segments(start_epoch):
        session.ingest_segment(segment)
    return session.result().format()


def direct_stream_format(transactions, level, *, window=None):
    """Verdict text of streaming ``transactions`` as one single segment.

    The never-crashed baseline: epoch-wise ingestion over the same arrival
    order must match it byte for byte.
    """
    session = CheckerSession(level, window=window)
    session.ingest_segment(ColumnarHistory.from_transactions(transactions))
    return session.result().format()


def truncate_at(path, rng):
    """Cut ``path`` at a random byte offset strictly inside the file."""
    data = path.read_bytes()
    cut = rng.randrange(0, len(data))
    path.write_bytes(data[:cut])
    return cut


# ----------------------------------------------------------------------
# Basics: sealing, manifest, refresh, mmap
# ----------------------------------------------------------------------
class TestEpochLogBasics:
    def test_path_predicate(self, tmp_path):
        assert is_epochlog_path("history.epochs")
        assert is_epochlog_path(tmp_path)  # existing directory
        assert not is_epochlog_path(tmp_path / "history.seg")
        assert not is_epochlog_path(tmp_path / "history.jsonl")

    def test_open_requires_a_directory(self, tmp_path):
        with pytest.raises(EpochLogError):
            EpochLog.open(tmp_path / "missing.epochs")
        target = tmp_path / "file.epochs"
        target.write_text("not a directory")
        with pytest.raises(EpochLogError):
            EpochLog.open(target)

    def test_empty_directory_opens_as_zero_epoch_log(self, tmp_path):
        d = tmp_path / "log.epochs"
        d.mkdir()
        log = EpochLog.open(d)
        assert len(log) == 0 and log.num_transactions == 0

    @pytest.mark.parametrize("compress", [False, True])
    def test_writer_seals_epochs_with_accurate_manifest(self, tmp_path, compress):
        history = make_history(1)
        log = build_log(
            tmp_path / "log.epochs", history, epoch_transactions=10, compress=compress
        )
        total_rows = sum(1 for _ in stream_order(history))
        assert log.num_transactions == total_rows
        assert len(log) == (total_rows + 9) // 10
        for entry in log.epochs:
            segment = log.load_epoch(entry)  # verifies size + CRC
            assert segment.num_transactions == entry.transactions
            assert min(segment.txn_ids) == entry.min_txn_id
            assert max(segment.txn_ids) == entry.max_txn_id
            assert entry.name.endswith(".seg.gz" if compress else ".seg")

    def test_epoch_stream_matches_whole_segment_verdicts(self, tmp_path):
        for engine in ("si", "rc"):
            history = make_history(2, engine=engine)
            stream = list(stream_order(history))
            log = build_log(tmp_path / f"{engine}.epochs", history)
            columns = log.to_columns()
            for level in LEVELS:
                # Epoch-wise streaming is byte-identical to single-segment
                # streaming, and agrees with the batch checker on the
                # verdict and anomaly kinds.
                assert stream_format(log, level) == direct_stream_format(stream, level)
                batch = MTChecker().verify(columns, level)
                session = CheckerSession(level)
                stream_format(log, level, session=session)
                result = session.result()
                assert result.satisfied == batch.satisfied
                # Streaming keeps checking past the first violation, so its
                # anomaly kinds are a superset of the batch checker's.
                assert {v.kind.value for v in batch.violations} <= {
                    v.kind.value for v in result.violations
                }

    def test_refresh_follows_a_live_writer(self, tmp_path):
        history = make_history(3)
        stream = list(stream_order(history))
        d = tmp_path / "live.epochs"
        writer = EpochLogWriter(d, epoch_transactions=10)
        for txn in stream[: len(stream) // 2]:
            writer.append(txn)
        log = EpochLog.open(d)
        seen = len(log)
        for txn in stream[len(stream) // 2 :]:
            writer.append(txn)
        writer.close()
        fresh = log.refresh()
        assert [e.epoch for e in fresh] == list(range(seen, len(log)))
        assert log.num_transactions == len(stream)

    def test_refresh_rejects_regression_and_disappearance(self, tmp_path):
        d = tmp_path / "gone.epochs"
        log = build_log(d, make_history(4))
        (d / log.epochs[-1].name).unlink()
        (d / MANIFEST_NAME).unlink()
        with pytest.raises(EpochLogError, match="regressed"):
            log.refresh()
        import shutil

        shutil.rmtree(d)
        with pytest.raises(EpochLogError, match="disappeared"):
            log.refresh()

    def test_reopening_a_writer_appends(self, tmp_path):
        history = make_history(5)
        stream = list(stream_order(history))
        d = tmp_path / "resume.epochs"
        with EpochLogWriter(d, epoch_transactions=10) as writer:
            for txn in stream[:25]:
                writer.append(txn)
        with EpochLogWriter(d, epoch_transactions=10) as writer:
            assert writer.epochs_sealed == 3  # 25 rows / 10 per epoch
            for txn in stream[25:]:
                writer.append(txn)
        log = EpochLog.open(d)
        assert log.num_transactions == len(stream)
        for level in LEVELS:
            assert stream_format(log, level) == direct_stream_format(stream, level)

    def test_mmap_and_copy_loads_agree(self, tmp_path):
        log = build_log(tmp_path / "m.epochs", make_history(6, engine="rc"))
        for entry in log.epochs:
            mapped = log.load_epoch(entry, mmap=True)
            copied = log.load_epoch(entry, mmap=False)
            assert mapped.to_wire() == copied.to_wire()


# ----------------------------------------------------------------------
# Crash recovery: the writer dies at an arbitrary byte offset
# ----------------------------------------------------------------------
@pytest.mark.parametrize("compress", [False, True])
class TestCrashRecovery:
    def _log_dir(self, tmp_path, compress, seed=11):
        d = tmp_path / "crash.epochs"
        log = build_log(
            d, make_history(seed), epoch_transactions=10, compress=compress
        )
        assert len(log) >= 3
        return d, log

    def test_torn_last_epoch_drops_exactly_that_epoch(self, tmp_path, compress):
        rng = random.Random(0)
        for trial in range(10):
            d, log = self._log_dir(tmp_path / str(trial), compress)
            victim = log.epochs[-1]
            truncate_at(d / victim.name, rng)
            recovered = EpochLog.open(d)
            assert len(recovered) == len(log) - 1
            assert [e.crc32 for e in recovered.epochs] == [
                e.crc32 for e in log.epochs[:-1]
            ]

    def test_missing_manifest_is_rebuilt_from_epoch_files(self, tmp_path, compress):
        d, log = self._log_dir(tmp_path, compress)
        (d / MANIFEST_NAME).unlink()
        recovered = EpochLog.open(d)
        assert [e.to_dict() for e in recovered.epochs] == [
            e.to_dict() for e in log.epochs
        ]

    def test_torn_manifest_is_rebuilt_from_epoch_files(self, tmp_path, compress):
        rng = random.Random(1)
        for trial in range(10):
            d, log = self._log_dir(tmp_path / str(trial), compress)
            truncate_at(d / MANIFEST_NAME, rng)
            recovered = EpochLog.open(d)
            assert [e.crc32 for e in recovered.epochs] == [
                e.crc32 for e in log.epochs
            ]

    def test_sealed_file_without_manifest_entry_is_adopted(self, tmp_path, compress):
        import json

        d, log = self._log_dir(tmp_path, compress)
        # Rewrite the manifest as if the writer died between the segment
        # rename and the manifest rename: the last entry never landed.
        manifest = json.loads((d / MANIFEST_NAME).read_text())
        manifest["epochs"] = manifest["epochs"][:-1]
        (d / MANIFEST_NAME).write_text(json.dumps(manifest))
        recovered = EpochLog.open(d)
        assert len(recovered) == len(log)
        assert recovered.epochs[-1].crc32 == log.epochs[-1].crc32

    def test_leftover_temp_file_is_swept_on_open(self, tmp_path, compress):
        d, log = self._log_dir(tmp_path, compress)
        nxt = len(log)
        orphan = d / f".epoch-{nxt:05d}.seg.tmp"
        orphan.write_bytes(b"REPROSEG1\n{torn")
        recovered = EpochLog.open(d)
        assert len(recovered) == len(log)
        # The orphan is garbage from a crash mid-seal: open() deletes it so
        # it can never be confused for live state or accumulate forever.
        assert not orphan.exists()

    def test_leftover_temp_file_is_swept_by_writer(self, tmp_path, compress):
        d, log = self._log_dir(tmp_path, compress)
        orphan = d / ".epoch-99999.seg.tmp"
        orphan.write_bytes(b"stale")
        EpochLogWriter(d, epoch_transactions=4, compress=compress)
        assert not orphan.exists()

    def test_corrupt_epoch_fails_its_checksum_cleanly(self, tmp_path, compress):
        d, log = self._log_dir(tmp_path, compress)
        victim = log.epochs[1]
        path = d / victim.name
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # same size, different bytes
        path.write_bytes(bytes(blob))
        recovered = EpochLog.open(d)  # size check passes; open succeeds
        with pytest.raises(EpochLogError, match="checksum"):
            recovered.load_epoch(1)

    def test_randomized_kill_never_crashes_or_loses_sealed_epochs(
        self, tmp_path, compress
    ):
        """The integrated trial: random fault, recover, append, verify.

        Whatever single fault the kill left behind, recovery must (a) not
        raise, (b) keep every sealed epoch that survived on disk intact,
        and (c) let a reopened writer continue the stream to a verdict
        identical to a never-crashed run over the same transactions.
        """
        import json

        for seed in range(12):
            rng = random.Random(seed)
            history = make_history(20 + seed, engine=rng.choice(["si", "rc"]))
            stream = list(stream_order(history))
            cut = rng.randrange(15, len(stream))
            d = tmp_path / f"trial-{seed}.epochs"
            with EpochLogWriter(d, epoch_transactions=10, compress=compress) as w:
                for txn in stream[:cut]:
                    w.append(txn)
            before = EpochLog.open(d)
            scenario = rng.choice(
                ["torn-epoch", "torn-manifest", "missing-manifest", "orphan", "none"]
            )
            lost = 0
            if scenario == "torn-epoch" and len(before) > 0:
                truncate_at(d / before.epochs[-1].name, rng)
                lost = 1
            elif scenario == "torn-manifest":
                truncate_at(d / MANIFEST_NAME, rng)
            elif scenario == "missing-manifest":
                (d / MANIFEST_NAME).unlink()
            elif scenario == "orphan" and len(before) > 0:
                manifest = json.loads((d / MANIFEST_NAME).read_text())
                manifest["epochs"] = manifest["epochs"][:-1]
                (d / MANIFEST_NAME).write_text(json.dumps(manifest))

            recovered = EpochLog.open(d)  # (a) never crashes
            assert len(recovered) == len(before) - lost  # (b) sealed prefix
            assert [e.crc32 for e in recovered.epochs] == [
                e.crc32 for e in before.epochs[: len(before) - lost]
            ]

            # (c) resume the writer over the transactions that were not
            # durably sealed, then compare against a never-crashed run.
            survived = recovered.num_transactions
            with EpochLogWriter(d, epoch_transactions=10, compress=compress) as w:
                for txn in stream[survived:]:
                    w.append(txn)
            final = EpochLog.open(d)
            assert final.num_transactions == len(stream)
            level = rng.choice(LEVELS)
            assert stream_format(final, level) == direct_stream_format(
                stream, level
            ), (seed, scenario)


# ----------------------------------------------------------------------
# Checkpoints: kill the verifier, resume, same verdict
# ----------------------------------------------------------------------
class TestCheckpointResume:
    @pytest.mark.parametrize("engine", ["si", "rc"])
    @pytest.mark.parametrize("level", LEVELS)
    def test_restart_at_every_epoch_boundary_matches_uninterrupted(
        self, tmp_path, engine, level
    ):
        d = tmp_path / "svc.epochs"
        log = build_log(d, make_history(31, engine=engine), epoch_transactions=10)
        uninterrupted = stream_format(log, level)
        for boundary in range(len(log)):
            session = CheckerSession(level)
            ingested = 0
            for _entry, segment in log.iter_segments(0):
                if _entry.epoch == boundary:
                    break
                session.ingest_segment(segment)
                ingested += segment.num_transactions
            log.save_checkpoint(
                session.checkpoint(), epochs=boundary, transactions=ingested
            )
            del session  # the verifier is killed here

            ckpt = log.latest_checkpoint()
            assert ckpt is not None and ckpt.epochs == boundary
            resumed = CheckerSession.restore(ckpt.state)
            assert (
                stream_format(log, level, start_epoch=boundary, session=resumed)
                == uninterrupted
            )

    def test_half_written_checkpoint_falls_back_to_previous(self, tmp_path):
        rng = random.Random(7)
        d = tmp_path / "ckpt.epochs"
        log = build_log(d, make_history(32), epoch_transactions=10)
        session = CheckerSession(SER)
        session.ingest_segment(log.load_epoch(0))
        good = log.save_checkpoint(session.checkpoint(), epochs=1, transactions=10)
        session.ingest_segment(log.load_epoch(1))
        torn = log.save_checkpoint(session.checkpoint(), epochs=2, transactions=20)
        truncate_at(torn, rng)
        ckpt = log.latest_checkpoint()
        assert ckpt is not None
        assert ckpt.path == good and ckpt.epochs == 1
        # Resume from the fallback still reaches the uninterrupted verdict.
        resumed = CheckerSession.restore(ckpt.state)
        assert stream_format(log, SER, start_epoch=1, session=resumed) == stream_format(
            log, SER
        )

    def test_no_valid_checkpoint_returns_none(self, tmp_path):
        d = tmp_path / "none.epochs"
        log = build_log(d, make_history(33))
        assert log.latest_checkpoint() is None
        (d / "checkpoint-00001.ckpt").write_bytes(b"garbage")
        assert log.latest_checkpoint() is None

    def test_only_newest_two_checkpoints_are_kept(self, tmp_path):
        d = tmp_path / "prune.epochs"
        log = build_log(d, make_history(34), epoch_transactions=10)
        session = CheckerSession(SER)
        for boundary in range(len(log)):
            session.ingest_segment(log.load_epoch(boundary))
            log.save_checkpoint(
                session.checkpoint(),
                epochs=boundary + 1,
                transactions=(boundary + 1) * 10,
            )
        kept = sorted(p.name for p in d.glob("checkpoint-*.ckpt"))
        assert len(kept) == 2
        assert kept[-1] == f"checkpoint-{len(log):05d}.ckpt"


# ----------------------------------------------------------------------
# Window-GC retirement
# ----------------------------------------------------------------------
class TestRetirement:
    def test_retire_unlinks_files_and_persists_watermark(self, tmp_path):
        d = tmp_path / "gc.epochs"
        log = build_log(d, make_history(41), epoch_transactions=10)
        removed = log.retire_through(1)
        assert removed == 2
        assert log.retired_through == 1
        assert (d / RETIRED_NAME).read_text().strip() == "1"
        assert not (d / log.epochs[0].name).exists()
        with pytest.raises(EpochLogError, match="retired"):
            log.load_epoch(0)
        # Reopen: the watermark survives and the prefix stays accepted.
        reopened = EpochLog.open(d)
        assert reopened.retired_through == 1
        assert len(reopened) == len(log)
        assert all(e.retired for e in reopened.epochs[:2])
        assert log.retire_through(1) == 0  # idempotent
        with pytest.raises(ValueError):
            log.retire_through(len(log.epochs))

    def test_windowed_resume_survives_retirement(self, tmp_path):
        """The full service loop: window + checkpoint + GC + restart."""
        d = tmp_path / "svc.epochs"
        log = build_log(d, make_history(42, txns=20), epoch_transactions=10)
        window = 25
        uninterrupted = stream_format(log, SER, window=window)

        session = CheckerSession(SER, window=window)
        boundary = len(log) - 1
        ingested = 0
        for entry, segment in log.iter_segments():
            if entry.epoch == boundary:
                break
            session.ingest_segment(segment)
            ingested += segment.num_transactions
        log.save_checkpoint(session.checkpoint(), epochs=boundary, transactions=ingested)
        # Retire everything the windowed verifier can never revisit.
        log.retire_through(boundary - (window // 10) - 1)
        del session

        restarted = EpochLog.open(d)
        assert restarted.retired_through >= 0
        ckpt = restarted.latest_checkpoint()
        assert ckpt is not None and ckpt.epochs > restarted.retired_through
        resumed = CheckerSession.restore(ckpt.state)
        assert (
            stream_format(restarted, SER, start_epoch=ckpt.epochs, session=resumed)
            == uninterrupted
        )
