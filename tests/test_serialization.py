"""Tests for history serialization (JSON round-trips)."""

import json

import pytest

from repro.core.checkers import check_ser, check_si
from repro.core.lwt import LWTHistory, LWTKind, LWTOperation, check_linearizability
from repro.core.model import History, Transaction, TransactionStatus, read, write
from repro.db import Database
from repro.history import (
    HistoryStreamWriter,
    history_from_dict,
    history_to_dict,
    is_stream_path,
    iter_history_jsonl,
    load_history,
    load_history_jsonl,
    load_lwt_history,
    lwt_history_from_dict,
    lwt_history_to_dict,
    save_history,
    save_lwt_history,
    write_history_jsonl,
)
from repro.workloads import LWTHistoryGenerator, MTWorkloadGenerator, run_workload


def sample_history():
    t1 = Transaction(1, [read("x", 0), write("x", 1)], start_ts=0.0, finish_ts=1.0)
    t2 = Transaction(
        2, [read("x", 1)], status=TransactionStatus.ABORTED, start_ts=2.0, finish_ts=3.0
    )
    return History.from_transactions([[t1], [t2]], initial_keys=["x"])


class TestHistoryRoundTrip:
    def test_dict_round_trip_preserves_structure(self):
        history = sample_history()
        restored = history_from_dict(history_to_dict(history))
        assert len(restored.sessions) == len(history.sessions)
        assert restored.initial_transaction is not None
        original = history.transactions(include_initial=False)
        recovered = restored.transactions(include_initial=False)
        assert [t.txn_id for t in original] == [t.txn_id for t in recovered]
        assert [t.status for t in original] == [t.status for t in recovered]
        assert [len(t) for t in original] == [len(t) for t in recovered]

    def test_operations_preserved_exactly(self):
        restored = history_from_dict(history_to_dict(sample_history()))
        txn = restored.transaction_by_id(1)
        assert [str(op) for op in txn.operations] == ["R(x,0)", "W(x,1)"]
        assert txn.start_ts == 0.0 and txn.finish_ts == 1.0

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "history.json"
        save_history(sample_history(), path)
        restored = load_history(path)
        assert len(restored) == 2
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-history-v1"

    def test_checker_verdicts_survive_round_trip(self):
        generator = MTWorkloadGenerator(num_sessions=3, txns_per_session=20, num_objects=8, seed=4)
        workload = generator.generate()
        run = run_workload(Database("si", keys=workload.keys), workload, seed=5)
        restored = history_from_dict(history_to_dict(run.history))
        assert check_si(restored).satisfied == check_si(run.history).satisfied
        assert check_ser(restored).satisfied == check_ser(run.history).satisfied

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            history_from_dict({"format": "something-else"})

    def test_history_without_initial_transaction(self):
        t1 = Transaction(1, [read("x", 0)])
        history = History.from_transactions([[t1]])
        restored = history_from_dict(history_to_dict(history))
        assert restored.initial_transaction is None


class TestLWTHistoryRoundTrip:
    def sample(self):
        return LWTHistory(
            [
                LWTOperation(1, LWTKind.INSERT, "x", written=0, start_ts=0.0, finish_ts=0.5),
                LWTOperation(2, LWTKind.READ_WRITE, "x", expected=0, written=1, start_ts=1.0, finish_ts=2.0, session_id=3),
            ]
        )

    def test_dict_round_trip(self):
        history = self.sample()
        restored = lwt_history_from_dict(lwt_history_to_dict(history))
        assert len(restored) == 2
        assert restored.operations[0].kind is LWTKind.INSERT
        assert restored.operations[1].expected == 0
        assert restored.operations[1].session_id == 3

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "lwt.json"
        save_lwt_history(self.sample(), path)
        restored = load_lwt_history(path)
        assert check_linearizability(restored).satisfied

    def test_generated_history_round_trip_preserves_verdict(self):
        generator = LWTHistoryGenerator(num_sessions=4, txns_per_session=20, num_objects=2, seed=6)
        for valid in (True, False):
            history = generator.generate(valid=valid)
            restored = lwt_history_from_dict(lwt_history_to_dict(history))
            assert (
                check_linearizability(restored).satisfied
                == check_linearizability(history).satisfied
                == valid
            )

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            lwt_history_from_dict({"format": "bogus"})


class TestStreamingJsonl:
    def test_round_trip_preserves_verdicts(self, tmp_path):
        workload = MTWorkloadGenerator(
            num_sessions=4, txns_per_session=15, num_objects=8, seed=3
        ).generate()
        history = run_workload(Database("si", keys=workload.keys), workload, seed=4).history
        path = tmp_path / "history.jsonl"
        write_history_jsonl(history, path)
        restored = load_history_jsonl(path)
        assert check_ser(restored).satisfied == check_ser(history).satisfied
        assert check_si(restored).satisfied == check_si(history).satisfied
        assert len(restored) == len(history)

    def test_iteration_is_lazy_and_initial_first(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_history_jsonl(sample_history(), path)
        stream = iter_history_jsonl(path)
        first = next(stream)
        assert first.is_initial
        rest = list(stream)
        assert {txn.txn_id for txn in rest} == {1, 2}
        aborted = next(txn for txn in rest if txn.txn_id == 2)
        assert aborted.status is TransactionStatus.ABORTED
        assert aborted.start_ts == 2.0

    def test_stream_writer_appends_incrementally(self, tmp_path):
        path = tmp_path / "live.jsonl"
        with HistoryStreamWriter(path) as writer:
            writer.write(Transaction(1, [read("x", 0), write("x", 1)]))
            # A concurrent reader already sees the flushed prefix.
            assert len(list(iter_history_jsonl(path))) == 1
            writer.write(Transaction(2, [read("x", 1)], session_id=1))
        assert len(list(iter_history_jsonl(path))) == 2

    def test_header_is_first_line(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_history_jsonl(sample_history(), path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == "repro-history-stream-v1"
        assert header["initial_transaction"]["txn_id"] == -1

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"format": "bogus"}\n')
        with pytest.raises(ValueError):
            list(iter_history_jsonl(path))

    def test_is_stream_path(self):
        assert is_stream_path("history.jsonl")
        assert is_stream_path("history.NDJSON")
        assert not is_stream_path("history.json")
        assert is_stream_path("history.jsonl.gz")
        assert is_stream_path("history.ndjson.GZ")
        assert not is_stream_path("history.json.gz")
        assert not is_stream_path("history.seg.gz")


class TestGzipStreams:
    def test_gzip_round_trip_by_suffix(self, tmp_path):
        import gzip

        path = tmp_path / "history.jsonl.gz"
        write_history_jsonl(sample_history(), path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        header = json.loads(gzip.open(path, "rt").readline())
        assert header["format"] == "repro-history-stream-v1"
        restored = load_history_jsonl(path)
        assert len(restored) == 2
        assert restored.transaction_by_id(1).start_ts == 0.0

    def test_gzip_detected_by_content_not_suffix(self, tmp_path):
        import shutil

        source = tmp_path / "history.jsonl.gz"
        write_history_jsonl(sample_history(), source)
        renamed = tmp_path / "renamed.jsonl"  # lies about its compression
        shutil.copy(source, renamed)
        assert len(list(iter_history_jsonl(renamed))) == 3  # ⊥T + 2


class TestFlushEveryAndTornLines:
    def test_flush_every_batches_flushes(self, tmp_path):
        path = tmp_path / "batched.jsonl"
        writer = HistoryStreamWriter(path, flush_every=100)
        writer.write(Transaction(1, [read("x", 0), write("x", 1)]))
        # Header flushed eagerly; the buffered transaction is not yet visible.
        assert len(list(iter_history_jsonl(path))) == 0
        writer.flush()
        assert len(list(iter_history_jsonl(path))) == 1
        writer.write(Transaction(2, [read("x", 1)], session_id=1))
        writer.close()  # close flushes the tail
        assert len(list(iter_history_jsonl(path))) == 2

    def test_flush_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            HistoryStreamWriter(tmp_path / "x.jsonl", flush_every=0)

    def test_torn_final_line_is_skipped_with_a_warning(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        write_history_jsonl(sample_history(), path)
        torn = tmp_path / "cut.jsonl"
        torn.write_bytes(path.read_bytes()[:-15])  # cut inside the last line
        with pytest.warns(UserWarning, match="torn final line"):
            txns = list(iter_history_jsonl(torn))  # must not raise
        assert [t.txn_id for t in txns] == [-1, 1]

    def test_live_gzip_stream_reads_cleanly_to_the_flushed_prefix(self, tmp_path):
        # A gzip writer that has flushed but not closed leaves a compressed
        # member without its end-of-stream trailer; readers must surface the
        # complete prefix instead of dying with EOFError.
        path = tmp_path / "live.jsonl.gz"
        writer = HistoryStreamWriter(path, initial_keys=["x"])
        writer.write(Transaction(1, [read("x", 0), write("x", 1)]))
        writer.flush()
        try:
            with pytest.warns(UserWarning, match="truncated mid-member"):
                txns = list(iter_history_jsonl(path))  # must not raise
            assert [t.txn_id for t in txns] == [-1, 1]
        finally:
            writer.close()
        assert [t.txn_id for t in iter_history_jsonl(path)] == [-1, 1]

    def test_truncated_gzip_header_raises_value_error(self, tmp_path):
        path = tmp_path / "h.jsonl.gz"
        write_history_jsonl(sample_history(), path)
        cut = tmp_path / "cut.jsonl.gz"
        cut.write_bytes(path.read_bytes()[:12])  # gzip magic, no usable data
        with pytest.raises(ValueError):
            list(iter_history_jsonl(cut))

    def test_complete_final_line_without_newline_still_parses(self, tmp_path):
        path = tmp_path / "no-newline.jsonl"
        write_history_jsonl(sample_history(), path)
        trimmed = tmp_path / "trimmed.jsonl"
        trimmed.write_bytes(path.read_bytes().rstrip(b"\n"))
        assert [t.txn_id for t in iter_history_jsonl(trimmed)] == [-1, 1, 2]
