"""Tests for the MTChecker facade and the CheckResult/Violation data model."""

import pytest

from repro import IsolationLevel, MTChecker
from repro.core.anomalies import anomaly_history
from repro.core.checkers import MTHistoryError
from repro.core.lwt import LWTHistory, LWTKind, LWTOperation
from repro.core.model import History, Transaction, read, write
from repro.core.result import AnomalyKind, CheckResult, Violation


class TestMTCheckerFacade:
    def setup_method(self):
        self.checker = MTChecker()

    def test_verify_dispatches_per_level(self):
        history = anomaly_history("LostUpdate")
        assert not self.checker.verify(history, IsolationLevel.SERIALIZABILITY).satisfied
        assert not self.checker.verify(history, IsolationLevel.SNAPSHOT_ISOLATION).satisfied
        assert not self.checker.verify(history, IsolationLevel.STRICT_SERIALIZABILITY).satisfied

    def test_component_aliases(self):
        history = anomaly_history("WriteSkew")
        assert not self.checker.check_ser(history).satisfied
        assert self.checker.check_si(history).satisfied
        assert not self.checker.check_sser(history).satisfied

    def test_lwt_history_routed_to_linearizability(self):
        history = LWTHistory(
            [
                LWTOperation(1, LWTKind.INSERT, "x", written=0, start_ts=0, finish_ts=1),
                LWTOperation(2, LWTKind.READ_WRITE, "x", expected=0, written=1, start_ts=2, finish_ts=3),
            ]
        )
        assert self.checker.verify(history, IsolationLevel.LINEARIZABILITY).satisfied
        assert self.checker.check_linearizability(history).satisfied

    def test_lwt_history_with_wrong_level_rejected(self):
        history = LWTHistory([])
        with pytest.raises(ValueError):
            self.checker.verify(history, IsolationLevel.SERIALIZABILITY)

    def test_unsupported_level_rejected(self):
        with pytest.raises(ValueError):
            self.checker.verify(anomaly_history("WriteSkew"), IsolationLevel.READ_COMMITTED)

    def test_strict_mode_rejects_gt_histories(self):
        gt = Transaction(1, [write("x", 1), write("y", 2), write("z", 3)])
        history = History.from_transactions([[gt]], initial_keys=["x", "y", "z"])
        strict = MTChecker(strict_mt=True)
        with pytest.raises(MTHistoryError):
            strict.check_ser(history)

    def test_is_mt_history_helper(self):
        assert MTChecker.is_mt_history(anomaly_history("LostUpdate"))
        gt = Transaction(1, [write("x", 1), write("y", 2)])
        assert not MTChecker.is_mt_history(
            History.from_transactions([[gt]], initial_keys=["x", "y"])
        )

    def test_transitive_ww_option_is_honoured(self):
        checker = MTChecker(transitive_ww=True)
        assert not checker.check_ser(anomaly_history("LostUpdate")).satisfied


class TestIsolationLevel:
    def test_short_names(self):
        assert IsolationLevel.SERIALIZABILITY.short_name == "SER"
        assert IsolationLevel.SNAPSHOT_ISOLATION.short_name == "SI"
        assert IsolationLevel.STRICT_SERIALIZABILITY.short_name == "SSER"
        assert IsolationLevel.LINEARIZABILITY.short_name == "LIN"
        assert IsolationLevel.READ_COMMITTED.short_name == "RC"


class TestCheckResult:
    def test_ok_and_violated_constructors(self):
        ok = CheckResult.ok(IsolationLevel.SERIALIZABILITY, 10)
        assert ok.satisfied and bool(ok) and ok.violation is None
        bad = CheckResult.violated(
            IsolationLevel.SNAPSHOT_ISOLATION,
            [Violation(AnomalyKind.LOST_UPDATE, "boom", txn_ids=[1, 2])],
            num_transactions=5,
        )
        assert not bad.satisfied and not bool(bad)
        assert bad.violation.kind is AnomalyKind.LOST_UPDATE

    def test_format_mentions_level_and_status(self):
        ok = CheckResult.ok(IsolationLevel.SERIALIZABILITY, 3)
        assert "SER" in ok.format() and "SATISFIED" in str(ok)
        bad = CheckResult.violated(
            IsolationLevel.SERIALIZABILITY, [Violation(AnomalyKind.WRITE_SKEW, "ws")]
        )
        assert "VIOLATED" in bad.format()
        assert "WriteSkew" in bad.format()


class TestViolationFormatting:
    def test_format_includes_transactions_and_cycle(self):
        violation = Violation(
            kind=AnomalyKind.LOST_UPDATE,
            description="two writers diverged",
            txn_ids=[3, 5],
            cycle=[(3, 5, "WW(x)"), (5, 3, "RW(x)")],
            key="x",
        )
        rendered = violation.format()
        assert "LostUpdate" in rendered
        assert "T3" in rendered and "T5" in rendered
        assert "WW(x)" in rendered and "RW(x)" in rendered
        assert str(violation) == rendered

    def test_format_without_optional_fields(self):
        violation = Violation(kind=AnomalyKind.THIN_AIR_READ, description="ghost value")
        rendered = violation.format()
        assert "ThinAirRead" in rendered
        assert "cycle" not in rendered
