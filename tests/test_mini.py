"""Tests for the mini-transaction definition and MT-history validation."""

from repro.core.mini import (
    MAX_MT_OPERATIONS,
    is_mini_transaction,
    is_mt_history,
    mt_violations,
    validate_mt_history,
)
from repro.core.model import History, Transaction, TransactionStatus, read, write


def txn(txn_id, *ops, status=TransactionStatus.COMMITTED):
    return Transaction(txn_id, list(ops), status=status)


class TestMiniTransactionDefinition:
    def test_single_rmw_is_mini(self):
        assert is_mini_transaction(txn(1, read("x", 0), write("x", 1)))

    def test_double_rmw_is_mini(self):
        assert is_mini_transaction(
            txn(1, read("x", 0), read("y", 0), write("x", 1), write("y", 2))
        )

    def test_read_only_single_and_double(self):
        assert is_mini_transaction(txn(1, read("x", 0)))
        assert is_mini_transaction(txn(1, read("x", 0), read("y", 0)))

    def test_interleaved_rmw_is_mini(self):
        assert is_mini_transaction(
            txn(1, read("x", 0), write("x", 1), read("y", 0), write("y", 2))
        )

    def test_write_without_preceding_read_is_not_mini(self):
        violations = mt_violations(txn(1, read("y", 0), write("x", 1)))
        assert any("not preceded by a read" in v.reason for v in violations)

    def test_blind_write_only_transaction_is_not_mini(self):
        violations = mt_violations(txn(1, write("x", 1)))
        reasons = " ".join(v.reason for v in violations)
        assert "no read" in reasons and "not preceded" in reasons

    def test_too_many_reads(self):
        violations = mt_violations(txn(1, read("x", 0), read("y", 0), read("z", 0)))
        assert any("3 reads" in v.reason for v in violations)

    def test_too_many_writes(self):
        t = txn(
            1,
            read("x", 0),
            read("y", 0),
            write("x", 1),
            write("y", 2),
            write("x", 3),
        )
        violations = mt_violations(t)
        assert any("3 writes" in v.reason for v in violations)

    def test_write_after_read_of_other_key_not_mini(self):
        assert not is_mini_transaction(txn(1, read("x", 0), write("y", 1)))

    def test_initial_transaction_is_exempt(self):
        initial = Transaction(-1, [write("x", 0), write("y", 0), write("z", 0)])
        assert mt_violations(initial) == []

    def test_max_operation_budget_matches_paper(self):
        assert MAX_MT_OPERATIONS == 4

    def test_mt_violation_str(self):
        violation = mt_violations(txn(9, write("x", 1)))[0]
        assert "T9" in str(violation)


class TestMTHistoryValidation:
    def test_valid_mt_history(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 1), write("x", 2))
        history = History.from_transactions([[t1], [t2]], initial_keys=["x"])
        assert is_mt_history(history)

    def test_duplicate_written_values_detected(self):
        t1 = txn(1, read("x", 0), write("x", 7))
        t2 = txn(2, read("x", 7), write("x", 7))
        history = History.from_transactions([[t1], [t2]], initial_keys=["x"])
        violations = validate_mt_history(history)
        assert any("duplicate write" in v.reason for v in violations)

    def test_duplicate_value_on_different_keys_is_fine(self):
        t1 = txn(1, read("x", 0), write("x", 7))
        t2 = txn(2, read("y", 0), write("y", 7))
        history = History.from_transactions([[t1], [t2]], initial_keys=["x", "y"])
        assert is_mt_history(history)

    def test_same_transaction_rewriting_value_not_flagged_as_duplicate(self):
        t1 = txn(1, read("x", 0), write("x", 7), write("x", 7))
        history = History.from_transactions([[t1]], initial_keys=["x"])
        violations = validate_mt_history(history)
        assert not any("duplicate" in v.reason for v in violations)

    def test_aborted_transactions_also_checked_for_uniqueness(self):
        t1 = txn(1, read("x", 0), write("x", 7), status=TransactionStatus.ABORTED)
        t2 = txn(2, read("x", 0), write("x", 7))
        history = History.from_transactions([[t1], [t2]], initial_keys=["x"])
        assert not is_mt_history(history)

    def test_non_mini_transaction_makes_history_invalid(self):
        gt = txn(1, write("x", 1), write("y", 2), write("z", 3))
        history = History.from_transactions([[gt]], initial_keys=["x", "y", "z"])
        assert not is_mt_history(history)

    def test_catalog_histories_are_mt_histories(self):
        from repro.core.anomalies import anomaly_catalog

        for name, spec in anomaly_catalog().items():
            assert is_mt_history(spec.build()), name
