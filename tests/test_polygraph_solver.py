"""Tests for polygraph construction and the DPLL-style orientation solver."""

import pytest

from repro.baselines.polygraph import Constraint, Polygraph, build_polygraph
from repro.baselines.solver import PolygraphSolver
from repro.core.model import History, Transaction, read, write


def txn(txn_id, *ops):
    return Transaction(txn_id, list(ops))


def history_of(*sessions, keys=("x",)):
    return History.from_transactions(list(sessions), initial_keys=list(keys))


class TestBuildPolygraph:
    def test_known_edges_include_so_and_wr(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 1))
        polygraph = build_polygraph(history_of([t1, t2]))
        labels = {(s, t, kind) for s, t, kind in polygraph.known_edges}
        assert (-1, 1, "SO") in labels
        assert (1, 2, "SO") in labels
        assert (1, 2, "WR") in labels
        assert (-1, 1, "WR") in labels

    def test_constraints_for_unordered_writers(self):
        # Two blind-ish writers of x (each RMW from the initial value) plus
        # no reads connecting them: their WW order is unknown.
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("y", 0), write("y", 5))
        t3 = txn(3, read("x", 0), write("x", 2))
        polygraph = build_polygraph(history_of([t1], [t2], [t3], keys=("x", "y")))
        keys_with_constraints = {c.key for c in polygraph.constraints}
        assert "x" in keys_with_constraints

    def test_rmw_inference_reduces_constraints(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 1), write("x", 2))
        t3 = txn(3, read("x", 2), write("x", 3))
        history = history_of([t1], [t2], [t3])
        without = build_polygraph(history, infer_rmw_ww=False)
        with_inference = build_polygraph(history, infer_rmw_ww=True)
        assert with_inference.num_constraints < without.num_constraints
        assert with_inference.num_constraints == 0  # the whole chain is known

    def test_constraint_orientations_bundle_rw_edges(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 0), write("x", 2))
        t3 = txn(3, read("x", 1))
        polygraph = build_polygraph(history_of([t1], [t2], [t3]), infer_rmw_ww=False)
        pair_constraints = [c for c in polygraph.constraints if {c.txn_a, c.txn_b} == {1, 2}]
        assert pair_constraints
        constraint = pair_constraints[0]
        # Orienting T1 before T2 forces T3 (a reader of T1) before T2 as well.
        first_edges = set(constraint.first) | set(constraint.second)
        assert any(kind == "RW" and source == 3 for source, _, kind in first_edges)

    def test_repr_and_counts(self):
        history = history_of([txn(1, read("x", 0), write("x", 1))])
        polygraph = build_polygraph(history, infer_rmw_ww=True)
        assert "Polygraph(" in repr(polygraph)
        # The single RMW chain (initial txn -> T1) leaves nothing unresolved.
        assert polygraph.num_constraints == 0
        # Without the inference the writer pair becomes a solver constraint.
        assert build_polygraph(history, infer_rmw_ww=False).num_constraints == 1


class TestSolverSerMode:
    def test_empty_polygraph_is_satisfiable(self):
        result = PolygraphSolver(Polygraph(nodes={1, 2})).solve()
        assert result.satisfiable

    def test_known_cycle_is_unsat(self):
        polygraph = Polygraph(nodes={1, 2})
        polygraph.known_edges = [(1, 2, "WR"), (2, 1, "WR")]
        result = PolygraphSolver(polygraph, mode="ser").solve()
        assert not result.satisfiable
        assert result.conflict_edge is not None

    def test_constraint_resolved_by_propagation(self):
        polygraph = Polygraph(nodes={1, 2, 3})
        polygraph.known_edges = [(1, 2, "WR")]
        # Choosing (2, 1) would close a cycle, so the solver must pick (1, 2).
        polygraph.constraints = [
            Constraint(key="x", txn_a=1, txn_b=2, first=((2, 1, "WW"),), second=((1, 2, "WW"),))
        ]
        result = PolygraphSolver(polygraph, mode="ser").solve()
        assert result.satisfiable
        assert result.propagations >= 1

    def test_unsatisfiable_constraints(self):
        polygraph = Polygraph(nodes={1, 2})
        polygraph.known_edges = [(1, 2, "WR"), (2, 1, "RW")]
        result = PolygraphSolver(polygraph, mode="ser").solve()
        assert not result.satisfiable

    def test_branching_finds_a_consistent_orientation(self):
        polygraph = Polygraph(nodes={1, 2, 3})
        polygraph.constraints = [
            Constraint("x", 1, 2, first=((1, 2, "WW"),), second=((2, 1, "WW"),)),
            Constraint("x", 2, 3, first=((2, 3, "WW"),), second=((3, 2, "WW"),)),
            Constraint("x", 1, 3, first=((1, 3, "WW"),), second=((3, 1, "WW"),)),
        ]
        result = PolygraphSolver(polygraph, mode="ser").solve()
        assert result.satisfiable
        assert result.decisions >= 1

    def test_conflicting_pair_of_constraints_unsat(self):
        polygraph = Polygraph(nodes={1, 2})
        polygraph.known_edges = [(1, 2, "WR")]
        polygraph.constraints = [
            Constraint("x", 1, 2, first=((2, 1, "WW"),), second=((2, 1, "RW"),)),
        ]
        result = PolygraphSolver(polygraph, mode="ser").solve()
        assert not result.satisfiable

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PolygraphSolver(Polygraph(), mode="linearizability")


class TestSolverSiMode:
    def test_adjacent_rw_cycle_is_allowed_under_si(self):
        # Write-skew shape: RW edges in both directions — SI-satisfiable.
        polygraph = Polygraph(nodes={1, 2})
        polygraph.known_edges = [(1, 2, "RW"), (2, 1, "RW")]
        assert PolygraphSolver(polygraph, mode="si").solve().satisfiable
        # The same graph is a violation under SER.
        assert not PolygraphSolver(polygraph, mode="ser").solve().satisfiable

    def test_ww_rw_cycle_is_forbidden_under_si(self):
        polygraph = Polygraph(nodes={1, 2})
        polygraph.known_edges = [(1, 2, "WW"), (2, 1, "RW")]
        assert not PolygraphSolver(polygraph, mode="si").solve().satisfiable

    def test_base_cycle_is_forbidden_under_si(self):
        polygraph = Polygraph(nodes={1, 2})
        polygraph.known_edges = [(1, 2, "WR"), (2, 1, "SO")]
        assert not PolygraphSolver(polygraph, mode="si").solve().satisfiable

    def test_si_divergence_shape_is_unsat(self):
        # Divergence: T1 and T2 both read from T0 and overwrite x; whatever
        # orientation the writers' WW edge takes, a WW ; RW cycle arises.
        polygraph = Polygraph(nodes={0, 1, 2})
        polygraph.known_edges = [
            (0, 1, "WR"),
            (0, 2, "WR"),
            (0, 1, "WW"),
            (0, 2, "WW"),
            (2, 1, "RW"),
            (1, 2, "RW"),
        ]
        polygraph.constraints = [
            Constraint("x", 1, 2, first=((1, 2, "WW"),), second=((2, 1, "WW"),))
        ]
        result = PolygraphSolver(polygraph, mode="si").solve()
        assert not result.satisfiable

    def test_si_rw_only_known_edges_with_constraint_resolves(self):
        # The same RW edges without any WW orientation forced remain SI-valid.
        polygraph = Polygraph(nodes={1, 2})
        polygraph.known_edges = [(1, 2, "RW"), (2, 1, "RW")]
        polygraph.constraints = []
        assert PolygraphSolver(polygraph, mode="si").solve().satisfiable
