"""Tests for the object-access distributions used by the workload generators."""

import random
from collections import Counter

import pytest

from repro.workloads.distributions import (
    DISTRIBUTION_NAMES,
    ExponentialDistribution,
    HotspotDistribution,
    UniformDistribution,
    ZipfianDistribution,
    make_distribution,
)


def sample(distribution, count=2000, seed=0):
    rng = random.Random(seed)
    return [distribution.choose(rng) for _ in range(count)]


class TestFactory:
    @pytest.mark.parametrize("name", DISTRIBUTION_NAMES)
    def test_make_distribution_known_names(self, name):
        distribution = make_distribution(name, 50)
        assert distribution.num_keys == 50

    def test_aliases(self):
        assert isinstance(make_distribution("zipfian", 10), ZipfianDistribution)
        assert isinstance(make_distribution("exponential", 10), ExponentialDistribution)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_distribution("gaussian", 10)

    def test_zero_keys_rejected(self):
        with pytest.raises(ValueError):
            UniformDistribution(0)


class TestBounds:
    @pytest.mark.parametrize("name", DISTRIBUTION_NAMES)
    def test_samples_within_key_space(self, name):
        distribution = make_distribution(name, 17)
        assert all(0 <= index < 17 for index in sample(distribution, 500))

    @pytest.mark.parametrize("name", DISTRIBUTION_NAMES)
    def test_single_key_space(self, name):
        distribution = make_distribution(name, 1)
        assert set(sample(distribution, 50)) == {0}


class TestSkewness:
    def test_uniform_spreads_accesses(self):
        counts = Counter(sample(UniformDistribution(10), 5000))
        assert len(counts) == 10
        assert max(counts.values()) < 2 * min(counts.values())

    def test_zipfian_concentrates_on_low_ranks(self):
        counts = Counter(sample(ZipfianDistribution(100), 5000))
        top = counts[0]
        assert top > counts.get(50, 0)
        assert top > 0.1 * 5000 / 2  # rank 0 takes a disproportionate share

    def test_zipf_more_skewed_than_uniform(self):
        zipf_counts = Counter(sample(ZipfianDistribution(50), 5000))
        uniform_counts = Counter(sample(UniformDistribution(50), 5000))
        assert max(zipf_counts.values()) > max(uniform_counts.values())

    def test_hotspot_hits_hot_set(self):
        distribution = HotspotDistribution(100, hot_fraction=0.1, hot_probability=0.9)
        counts = Counter(sample(distribution, 5000))
        hot_hits = sum(count for index, count in counts.items() if index < distribution.hot_set_size)
        assert hot_hits > 0.8 * 5000

    def test_exponential_prefers_small_indices(self):
        counts = Counter(sample(ExponentialDistribution(100), 5000))
        low = sum(count for index, count in counts.items() if index < 20)
        high = sum(count for index, count in counts.items() if index >= 80)
        assert low > high


class TestDistinctSelection:
    def test_choose_distinct_returns_distinct_keys(self):
        distribution = ZipfianDistribution(5)
        rng = random.Random(1)
        chosen = distribution.choose_distinct(rng, 3)
        assert len(chosen) == len(set(chosen)) == 3

    def test_choose_distinct_caps_at_key_space(self):
        distribution = UniformDistribution(2)
        rng = random.Random(1)
        chosen = distribution.choose_distinct(rng, 10)
        assert sorted(chosen) == [0, 1]

    def test_choose_distinct_on_extremely_skewed_distribution(self):
        # Even when the hot key dominates, distinctness must be honoured.
        distribution = HotspotDistribution(50, hot_fraction=0.02, hot_probability=0.999)
        rng = random.Random(1)
        chosen = distribution.choose_distinct(rng, 4)
        assert len(set(chosen)) == 4


class TestDeterminism:
    @pytest.mark.parametrize("name", DISTRIBUTION_NAMES)
    def test_same_seed_same_samples(self, name):
        distribution = make_distribution(name, 30)
        assert sample(distribution, 200, seed=5) == sample(distribution, 200, seed=5)
