"""Tests for the dense CSR graph kernel (``repro.core.csr``).

The central invariant: **the dense accept path and the legacy multigraph
pipeline are interchangeable** — identical verdicts, identical anomaly
kinds, and identical labeled counterexample cycles across SER/SI/SSER on
healthy and faulty histories.  The randomized equivalence suite below
enforces it over the same composite fault-plan histories the parallel
pipeline is validated against (``tests/test_parallel.py``).
"""

import pytest

from repro.core.checkers import check_ser, check_si, check_sser
from repro.core.csr import CSRGraph, first_nontrivial_scc
from repro.core.graph import DependencyGraph, EdgeType, build_dependency
from repro.core.index import HistoryIndex
from repro.core.model import History, Transaction, read, write
from repro.core.result import IsolationLevel
from repro.db import FaultPlan

from test_parallel import composite_history

CHECKERS = [
    ("SER", check_ser),
    ("SI", check_si),
    ("SSER", check_sser),
]


def two_txn_history():
    t1 = Transaction(1, [read("x", 0), write("x", 1)])
    t2 = Transaction(2, [read("x", 1), write("x", 2)], session_id=1)
    return History.from_transactions([[t1], [t2]], initial_keys=["x"])


def lost_update_history():
    t1 = Transaction(1, [read("x", 0), write("x", 1)])
    t2 = Transaction(2, [read("x", 0), write("x", 2)], session_id=1)
    return History.from_transactions([[t1], [t2]], initial_keys=["x"])


def assert_dense_equivalent(history, *, transitive_ww=False):
    """Dense and legacy paths agree byte-for-byte on every verdict field."""
    for name, check in CHECKERS:
        legacy = check(history, transitive_ww=transitive_ww, dense=False)
        dense = check(history, transitive_ww=transitive_ww, dense=True)
        assert legacy.satisfied == dense.satisfied, name
        assert legacy.num_transactions == dense.num_transactions, name
        assert [v.kind for v in legacy.violations] == [
            v.kind for v in dense.violations
        ], name
        assert [(v.txn_ids, v.key, v.cycle) for v in legacy.violations] == [
            (v.txn_ids, v.key, v.cycle) for v in dense.violations
        ], name


# ----------------------------------------------------------------------
# CSRGraph unit behaviour
# ----------------------------------------------------------------------
class TestCSRGraph:
    def test_build_matches_legacy_edge_set(self):
        history = two_txn_history()
        index = HistoryIndex.build(history)
        csr = build_dependency(history, index=index, dense=True)
        legacy = build_dependency(history, index=index)
        assert isinstance(csr, CSRGraph)
        assert sorted(map(str, csr.iter_edges())) == sorted(map(str, legacy.edges()))

    def test_to_multigraph_round_trip(self):
        history = two_txn_history()
        csr = build_dependency(history, dense=True)
        graph = csr.to_multigraph()
        assert isinstance(graph, DependencyGraph)
        legacy = build_dependency(history)
        assert graph.nodes == legacy.nodes
        assert graph.num_edges == legacy.num_edges
        assert csr.to_multigraph() is graph  # cached

    def test_has_cycle_accept_and_reject(self):
        assert build_dependency(two_txn_history(), dense=True).has_cycle() is None
        scc = build_dependency(lost_update_history(), dense=True).has_cycle()
        assert scc is not None and sorted(scc) == [1, 2]

    def test_si_induced_matches_legacy_composition(self):
        history = lost_update_history()
        csr = build_dependency(history, dense=True)
        legacy_induced = build_dependency(history).si_induced_graph()
        dense_edges = {
            (e.source, e.target, e.edge_type, e.key)
            for e in csr.si_induced().iter_edges()
        }
        legacy_edges = {
            (e.source, e.target, e.edge_type, e.key) for e in legacy_induced.edges()
        }
        assert dense_edges == legacy_edges

    def test_wire_round_trip(self):
        history = two_txn_history()
        csr = build_dependency(history, dense=True)
        clone = CSRGraph.from_wire(csr.to_wire())
        assert clone.node_ids == csr.node_ids
        assert list(clone.src) == list(csr.src)
        assert list(clone.key_id) == list(csr.key_id)
        assert (clone.has_cycle() is None) == (csr.has_cycle() is None)

    def test_nbytes_is_compact(self):
        history = two_txn_history()
        csr = build_dependency(history, dense=True)
        # Four int32 columns per edge row (+ CSR offsets once compiled).
        assert csr.nbytes == 4 * csr.num_edges * csr.src.itemsize
        csr.has_cycle()
        assert csr.nbytes > 4 * csr.num_edges * csr.src.itemsize

    def test_with_rt_adds_rt_rows(self):
        t1 = Transaction(1, [read("x", 0), write("x", 1)], start_ts=0.0, finish_ts=1.0)
        t2 = Transaction(
            2, [read("x", 1), write("x", 2)], session_id=1, start_ts=2.0, finish_ts=3.0
        )
        history = History.from_transactions([[t1], [t2]], initial_keys=["x"])
        index = HistoryIndex.build(history)
        csr = CSRGraph.from_index(index, with_rt=True)
        assert any(e.edge_type is EdgeType.RT for e in csr.iter_edges())


class TestTarjan:
    def test_acyclic(self):
        assert first_nontrivial_scc([[1], [2], []]) is None

    def test_cycle_component(self):
        scc = first_nontrivial_scc([[1], [2], [0], []])
        assert scc is not None and sorted(scc) == [0, 1, 2]

    def test_self_loop(self):
        assert first_nontrivial_scc([[0]]) == [0]

    def test_first_component_is_deterministic(self):
        adjacency = [[1], [0], [3], [2]]
        assert first_nontrivial_scc(adjacency) == first_nontrivial_scc(adjacency)


# ----------------------------------------------------------------------
# Randomized dense-vs-legacy equivalence suite
# ----------------------------------------------------------------------
class TestDenseEquivalence:
    def test_healthy_histories_all_engines(self):
        for isolation in ("serializable", "si", "s2pl"):
            history = composite_history(
                [(isolation, 71, None), (isolation, 72, None)]
            )
            assert_dense_equivalent(history)

    @pytest.mark.parametrize(
        "fault",
        ["lostupdate", "writeskew", "staleread", "abortedread"],
    )
    def test_faulty_histories(self, fault):
        plan = FaultPlan.for_anomaly(fault, rate=0.5, seed=73)
        history = composite_history([("si", 74, plan), ("si", 75, None)])
        assert_dense_equivalent(history)

    def test_seeded_random_sweep(self):
        for seed in range(80, 90):
            faults = (
                FaultPlan.for_anomaly("lostupdate", rate=0.3, seed=seed)
                if seed % 3 == 0
                else None
            )
            history = composite_history([("si", seed, faults)])
            assert_dense_equivalent(history)

    def test_transitive_ww_variant(self):
        plan = FaultPlan.for_anomaly("writeskew", rate=0.5, seed=91)
        history = composite_history([("si", 92, plan)])
        assert_dense_equivalent(history, transitive_ww=True)

    def test_read_committed_engine(self):
        history = composite_history([("read-committed", 93, None)])
        assert_dense_equivalent(history)

    def test_facade_dense_flag(self):
        from repro.core.checker import MTChecker

        history = composite_history([("si", 94, None)])
        for level in (
            IsolationLevel.SERIALIZABILITY,
            IsolationLevel.SNAPSHOT_ISOLATION,
        ):
            dense = MTChecker().verify(history, level)
            legacy = MTChecker(dense=False).verify(history, level)
            assert dense.satisfied == legacy.satisfied
            assert [v.kind for v in dense.violations] == [
                v.kind for v in legacy.violations
            ]

    def test_parallel_sser_dense_wire_equivalence(self):
        from repro.parallel import check_parallel

        history = composite_history([("si", 95, None), ("serializable", 96, None)])
        level = IsolationLevel.STRICT_SERIALIZABILITY
        dense = check_parallel(history, level, workers=1, dense=True)
        legacy = check_parallel(history, level, workers=1, dense=False)
        assert dense.satisfied == legacy.satisfied
        assert [(v.kind, v.txn_ids, v.cycle) for v in dense.violations] == [
            (v.kind, v.txn_ids, v.cycle) for v in legacy.violations
        ]

    def test_parallel_sser_dense_wire_catches_cross_shard_cycle(self):
        from repro.parallel import check_parallel, partition_history

        t1 = Transaction(1, [read("a", 2)], session_id=0, start_ts=0.0, finish_ts=1.0)
        t2 = Transaction(
            2, [read("a", 0), write("a", 2)], session_id=1, start_ts=4.0, finish_ts=5.0
        )
        t3 = Transaction(
            3, [read("b", 0), write("b", 3)], session_id=2, start_ts=1.5, finish_ts=2.0
        )
        t4 = Transaction(4, [read("b", 3)], session_id=3, start_ts=2.5, finish_ts=3.5)
        history = History.from_transactions(
            [[t1], [t2], [t3], [t4]], initial_keys=["a", "b"]
        )
        assert len(partition_history(history)) == 2
        dense = check_parallel(
            history, IsolationLevel.STRICT_SERIALIZABILITY, workers=1, dense=True
        )
        legacy = check_parallel(
            history, IsolationLevel.STRICT_SERIALIZABILITY, workers=1, dense=False
        )
        assert not dense.satisfied and not legacy.satisfied
        assert [(v.kind, v.txn_ids, v.cycle) for v in dense.violations] == [
            (v.kind, v.txn_ids, v.cycle) for v in legacy.violations
        ]


# ----------------------------------------------------------------------
# Bench suite plumbing
# ----------------------------------------------------------------------
class TestCoreBenchmark:
    def test_smoke_rows_assert_equality(self):
        from repro.bench import core_benchmark

        payload = core_benchmark(smoke=True, sizes=[200])
        assert payload["suite"] == "core"
        assert {row["level"] for row in payload["rows"]} == {"SER", "SI"}
        assert all(row["verdicts_equal"] for row in payload["rows"])
        assert all(row["verdict"] for row in payload["rows"])

    def test_parallel_rows_marked_advisory_beyond_cpu_count(self, monkeypatch):
        import repro.bench.suites as suites

        monkeypatch.setattr(suites.os, "cpu_count", lambda: 1)
        payload = suites.parallel_benchmark(
            smoke=True, workers=(1, 2), levels=("ser",), sizes=[80]
        )
        speedup_rows = [r for r in payload["rows"] if r["kind"] == "speedup"]
        by_workers = {row["workers"]: row for row in speedup_rows}
        assert by_workers[1]["advisory"] is False
        assert by_workers[2]["advisory"] is True
        # The executor clamps rather than oversubscribes: the advisory row
        # records that it effectively ran on one worker.
        assert by_workers[2]["workers_effective"] == 1
        assert all(row["cpu_count"] == 1 for row in speedup_rows)
