"""Tests for the async collection plane (aio adapters + AsyncCollector).

The contract under test: histories collected by coroutine sessions must be
*schedule-valid* (well-formed intervals, per-session ordering, globally
unique written values) and reach verdicts identical to the threaded
collector's across isolation levels, healthy and chaos-wrapped adapters,
and the full ``max_inflight`` range — while constructing zero
``Transaction``/``Operation`` objects on the accept path.
"""

import asyncio

import pytest

from repro.adapters import (
    AsyncCollector,
    AsyncSimulatedAdapter,
    BridgedAsyncAdapter,
    Collector,
    SimulatedAdapter,
    SQLiteAdapter,
    ensure_async_adapter,
    make_adapter,
    make_async_adapter,
)
from repro.adapters.aio import AsyncAdapterSession, AsyncDatabaseAdapter
from repro.adapters.base import AdapterError
from repro.core import model as core_model
from repro.core.checker import MTChecker
from repro.core.model import Transaction, TransactionStatus
from repro.core.result import IsolationLevel
from repro.history.columnar import ColumnarHistory
from repro.workloads.mt_generator import MTWorkloadGenerator
from repro.workloads.spec import make_traffic_shape

LEVELS = {
    "SI": IsolationLevel.SNAPSHOT_ISOLATION,
    "SER": IsolationLevel.SERIALIZABILITY,
    "SSER": IsolationLevel.STRICT_SERIALIZABILITY,
}


def small_workload(sessions=6, txns=20, objects=12, seed=3, distribution="uniform"):
    return MTWorkloadGenerator(
        num_sessions=sessions,
        txns_per_session=txns,
        num_objects=objects,
        distribution=distribution,
        seed=seed,
    ).generate()


def assert_schedule_valid(columns: ColumnarHistory) -> None:
    """The recorded history is a well-formed schedule.

    Intervals are positive, a session's transactions never overlap (the
    collectors are one-transaction-at-a-time per session), transaction ids
    are unique, and committed written values are globally unique.
    """
    history = columns.to_history()
    seen_ids = set()
    written = set()
    for session in history.sessions:
        prev_finish = None
        for txn in session.transactions:
            assert txn.txn_id not in seen_ids
            seen_ids.add(txn.txn_id)
            assert txn.start_ts is not None and txn.finish_ts is not None
            assert txn.start_ts < txn.finish_ts
            if prev_finish is not None:
                assert txn.start_ts > prev_finish, (
                    f"T{txn.txn_id} overlaps its session predecessor"
                )
            prev_finish = txn.finish_ts
            if txn.status == TransactionStatus.COMMITTED:
                for op in txn.operations:
                    if op.is_write:
                        assert op.value not in written
                        written.add(op.value)


# ----------------------------------------------------------------------
# Threaded/async equivalence
# ----------------------------------------------------------------------
class TestAsyncThreadedEquivalence:
    @pytest.mark.parametrize(
        "engine, guaranteed",
        [
            ("si", ["SI"]),
            ("serializable", ["SER", "SI"]),
            ("s2pl", ["SSER", "SER", "SI"]),
        ],
    )
    @pytest.mark.parametrize("max_inflight", [1, 8, 256])
    def test_healthy_engines_reach_identical_verdicts(
        self, engine, guaranteed, max_inflight
    ):
        workload = small_workload(sessions=8, txns=12, objects=10, seed=17)
        threaded = Collector(SimulatedAdapter(engine)).collect(workload)
        asynced = AsyncCollector(
            AsyncSimulatedAdapter(engine), max_inflight=max_inflight
        ).collect(workload)
        assert asynced.stats.committed == threaded.stats.committed
        assert_schedule_valid(asynced.columns)
        checker = MTChecker()
        threaded_columns = ColumnarHistory.from_history(threaded.history)
        for level in guaranteed:
            via_threads = checker.verify(threaded_columns, LEVELS[level])
            via_async = checker.verify(asynced.columns, LEVELS[level])
            assert via_threads.satisfied == via_async.satisfied
            assert via_async.satisfied, (engine, level, via_async.violation)

    @pytest.mark.parametrize("max_inflight", [1, 8, 256])
    def test_chaos_faults_detected_through_both_collectors(self, max_inflight):
        workload = small_workload(sessions=6, txns=30, objects=8, seed=5,
                                  distribution="zipf")
        threaded = Collector(
            make_adapter("simulated", isolation="si", chaos="lost-write",
                         chaos_rate=0.9, seed=5)
        ).collect(workload)
        async_adapter = make_async_adapter(
            "simulated", isolation="si", chaos="lost-write",
            chaos_rate=0.9, seed=5,
        )
        asynced = AsyncCollector(async_adapter, max_inflight=max_inflight).collect(
            workload
        )
        assert async_adapter.sync_adapter.injections["lost_write"] > 0
        checker = MTChecker()
        via_threads = checker.verify(
            ColumnarHistory.from_history(threaded.history), LEVELS["SER"]
        )
        via_async = checker.verify(asynced.columns, LEVELS["SER"])
        assert not via_threads.satisfied
        assert not via_async.satisfied
        assert via_threads.satisfied == via_async.satisfied

    def test_bridged_sqlite_collection_satisfies_ser(self, tmp_path):
        workload = small_workload(sessions=6, txns=10, objects=8, seed=9)
        adapter = SQLiteAdapter(str(tmp_path / "async.db"))
        result = AsyncCollector(adapter, max_inflight=4).collect(workload)
        assert_schedule_valid(result.columns)
        verdict = MTChecker().verify(result.columns, LEVELS["SER"])
        assert verdict.satisfied, verdict.violation

    def test_traffic_shapes_apply_to_both_collectors(self):
        workload = small_workload(sessions=6, txns=3, objects=8, seed=2)
        workload.traffic = make_traffic_shape(
            "churn", churn_stagger=0.002, think_time=0.0005, seed=1
        )
        threaded = Collector(SimulatedAdapter("si")).collect(workload)
        asynced = AsyncCollector(AsyncSimulatedAdapter("si")).collect(workload)
        assert threaded.stats.committed == asynced.stats.committed == 18
        assert MTChecker().verify(asynced.columns, LEVELS["SI"]).satisfied


# ----------------------------------------------------------------------
# The object-free accept path
# ----------------------------------------------------------------------
class TestDirectToColumnIngest:
    def test_zero_transaction_objects_on_accept_path(self, monkeypatch):
        constructed = []
        original_txn = Transaction.__init__
        original_op = core_model.Operation.__init__

        def counting_txn(self, *args, **kwargs):
            constructed.append("txn")
            return original_txn(self, *args, **kwargs)

        def counting_op(self, *args, **kwargs):
            constructed.append("op")
            return original_op(self, *args, **kwargs)

        monkeypatch.setattr(Transaction, "__init__", counting_txn)
        monkeypatch.setattr(core_model.Operation, "__init__", counting_op)
        workload = small_workload(sessions=5, txns=8, objects=10, seed=7)
        result = AsyncCollector(AsyncSimulatedAdapter("si"), max_inflight=4).collect(
            workload
        )
        assert constructed == [], (
            f"{len(constructed)} model objects built on the accept path"
        )
        assert result.columns.num_transactions == result.stats.committed + 1
        # Materialisation still works after the fact, off the hot path.
        assert len(result.history.transactions()) == result.stats.committed + 1

    def test_legacy_hook_sees_finish_ordered_transactions(self):
        seen = []
        workload = small_workload(sessions=6, txns=6, objects=10, seed=13)
        AsyncCollector(
            AsyncSimulatedAdapter("si"),
            max_inflight=4,
            on_transaction=seen.append,
        ).collect(workload)
        assert len(seen) == 36
        assert all(isinstance(txn, Transaction) for txn in seen)
        finishes = [txn.finish_ts for txn in seen]
        assert finishes == sorted(finishes)

    def test_backpressure_stalls_are_counted_and_lossless(self):
        seen = []
        workload = small_workload(sessions=12, txns=6, objects=10, seed=3)
        result = AsyncCollector(
            AsyncSimulatedAdapter("si"),
            max_inflight=8,
            queue_depth=1,
            on_transaction=seen.append,
        ).collect(workload)
        assert result.backpressure_stalls > 0
        assert len(seen) == 72  # every row survived the full queue
        assert result.columns.num_transactions == 73


# ----------------------------------------------------------------------
# Deadline watchdog
# ----------------------------------------------------------------------
class _HangingSession(AsyncAdapterSession):
    """Wedges forever on the first read; cancellation must unwind it."""

    def __init__(self, inner):
        self._inner = inner

    async def begin(self):
        await self._inner.begin()

    async def read(self, key):
        await asyncio.Event().wait()

    async def write(self, key, value):
        await self._inner.write(key, value)

    async def commit(self):
        await self._inner.commit()

    async def abort(self):
        await self._inner.abort()


class _HangingAdapter(AsyncDatabaseAdapter):
    def __init__(self, hang_session_id=0):
        self._inner = AsyncSimulatedAdapter("si")
        self._hang = hang_session_id

    def capabilities(self):
        return self._inner.capabilities()

    async def session(self, session_id):
        session = await self._inner.session(session_id)
        if session_id == self._hang:
            return _HangingSession(session)
        return session

    async def setup(self, keys, initial_value=0):
        await self._inner.setup(keys, initial_value)


class TestDeadlineWatchdog:
    def test_hung_session_recorded_unknown_and_cancelled(self):
        workload = small_workload(sessions=4, txns=3, objects=8, seed=21)
        result = AsyncCollector(
            _HangingAdapter(hang_session_id=0),
            max_inflight=4,
            txn_deadline=0.05,
        ).collect(workload)
        assert result.unknown == 1
        history = result.columns.to_history()
        unknown = [
            txn
            for txn in history.transactions()
            if txn.status == TransactionStatus.UNKNOWN
        ]
        assert len(unknown) == 1
        assert unknown[0].session_id == 0
        # The three healthy sessions finished their full quota.
        assert result.stats.committed == 9


# ----------------------------------------------------------------------
# Construction and bridging errors
# ----------------------------------------------------------------------
class TestAsyncConstruction:
    def test_sync_adapter_without_bridge_is_rejected(self, tmp_path):
        adapter = SQLiteAdapter(str(tmp_path / "x.db"))
        with pytest.raises(AdapterError, match="no native async support"):
            ensure_async_adapter(adapter, bridge=False)
        with pytest.raises(AdapterError, match="no native async support"):
            AsyncCollector(adapter, bridge=False).collect(
                small_workload(sessions=2, txns=2)
            )

    def test_native_async_adapter_passes_through(self):
        adapter = AsyncSimulatedAdapter("si")
        assert ensure_async_adapter(adapter, bridge=False) is adapter

    def test_bridged_adapter_exposes_sync_adapter(self, tmp_path):
        sync = SQLiteAdapter(str(tmp_path / "y.db"))
        bridged = ensure_async_adapter(sync)
        assert isinstance(bridged, BridgedAsyncAdapter)
        assert bridged.sync_adapter is sync

    @pytest.mark.parametrize(
        "kwargs", [{"max_inflight": 0}, {"max_inflight": -3}, {"queue_depth": 0}]
    )
    def test_nonpositive_bounds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AsyncCollector(AsyncSimulatedAdapter("si"), **kwargs)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestAsyncCLI:
    def run_cli(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_async_simulated_collect_and_check(self, capsys):
        code, out = self.run_cli(
            ["collect", "--adapter", "simulated", "--async", "--sessions", "20",
             "--txns", "3", "--objects", "16", "--check", "si"],
            capsys,
        )
        assert code == 0
        assert "coroutine sessions" in out
        assert "SI: SATISFIED" in out

    @pytest.mark.parametrize(
        "argv, message",
        [
            (["collect", "--sessions", "0", "--txns", "5", "--check", "si"],
             "must be positive"),
            (["collect", "--sessions", "2", "--txns", "-1", "--check", "si"],
             "must be positive"),
            (["collect", "--max-inflight", "4", "--sessions", "2", "--txns", "2",
              "--check", "si"],
             "pass --async"),
            (["collect", "--no-bridge", "--sessions", "2", "--txns", "2",
              "--check", "si"],
             "pass --async"),
            (["collect", "--async", "--max-inflight", "0", "--sessions", "2",
              "--txns", "2", "--adapter", "simulated", "--check", "si"],
             "--max-inflight must be positive"),
        ],
    )
    def test_inconsistent_flags_exit_2(self, argv, message, capsys):
        code, out = self.run_cli(argv, capsys)
        assert code == 2
        assert "error:" in out
        assert message in out

    def test_no_bridge_with_sync_only_adapter_exits_2(self, capsys, tmp_path):
        code, out = self.run_cli(
            ["collect", "--adapter", "sqlite", "--async", "--no-bridge",
             "--db-path", str(tmp_path / "z.db"), "--sessions", "2",
             "--txns", "2", "--check", "ser"],
            capsys,
        )
        assert code == 2
        assert "error:" in out
        assert "no native async support" in out
