"""Tests for the MT and GT workload generators and the workload spec model."""

import pytest

from repro.workloads import (
    GTWorkloadGenerator,
    GTWorkloadMix,
    MTWorkloadGenerator,
    MTWorkloadMix,
)
from repro.workloads.spec import PlannedOpKind, PlannedOperation, TransactionSpec


class TestTransactionSpec:
    def test_counts_and_keys(self):
        spec = TransactionSpec(
            [
                PlannedOperation(PlannedOpKind.READ, "x"),
                PlannedOperation(PlannedOpKind.WRITE, "x"),
                PlannedOperation(PlannedOpKind.READ, "y"),
            ]
        )
        assert spec.num_reads() == 2
        assert spec.num_writes() == 1
        assert spec.keys() == ["x", "y"]
        assert len(spec) == 3

    def test_is_mini_accepts_rmw(self):
        spec = TransactionSpec(
            [
                PlannedOperation(PlannedOpKind.READ, "x"),
                PlannedOperation(PlannedOpKind.WRITE, "x"),
            ]
        )
        assert spec.is_mini()

    def test_is_mini_rejects_blind_write(self):
        spec = TransactionSpec(
            [
                PlannedOperation(PlannedOpKind.READ, "y"),
                PlannedOperation(PlannedOpKind.WRITE, "x"),
            ]
        )
        assert not spec.is_mini()

    def test_is_mini_rejects_too_many_reads(self):
        spec = TransactionSpec([PlannedOperation(PlannedOpKind.READ, k) for k in "abc"])
        assert not spec.is_mini()


class TestMTWorkloadGenerator:
    def test_every_generated_transaction_is_mini(self):
        generator = MTWorkloadGenerator(num_sessions=5, txns_per_session=50, num_objects=20, seed=3)
        workload = generator.generate()
        assert workload.num_sessions == 5
        assert workload.num_transactions == 250
        assert all(spec.is_mini() for spec in workload.all_specs())

    def test_deterministic_for_a_seed(self):
        a = MTWorkloadGenerator(num_sessions=3, txns_per_session=20, num_objects=10, seed=7).generate()
        b = MTWorkloadGenerator(num_sessions=3, txns_per_session=20, num_objects=10, seed=7).generate()
        assert [
            [(op.kind, op.key) for spec in session for op in spec.operations]
            for session in a.sessions
        ] == [
            [(op.kind, op.key) for spec in session for op in spec.operations]
            for session in b.sessions
        ]

    def test_different_seeds_differ(self):
        a = MTWorkloadGenerator(num_sessions=3, txns_per_session=20, num_objects=10, seed=1).generate()
        b = MTWorkloadGenerator(num_sessions=3, txns_per_session=20, num_objects=10, seed=2).generate()
        flat_a = [(op.kind, op.key) for spec in a.all_specs() for op in spec.operations]
        flat_b = [(op.kind, op.key) for spec in b.all_specs() for op in spec.operations]
        assert flat_a != flat_b

    def test_keys_cover_object_space(self):
        generator = MTWorkloadGenerator(num_objects=7)
        assert generator.keys() == [f"k{i}" for i in range(7)]

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            MTWorkloadGenerator(mix=MTWorkloadMix(single_rmw=0.9, double_rmw=0.5, read_only=0.0, read_then_rmw=0.0))

    def test_pure_single_rmw_mix(self):
        mix = MTWorkloadMix(single_rmw=1.0, double_rmw=0.0, read_only=0.0, read_then_rmw=0.0)
        generator = MTWorkloadGenerator(num_sessions=2, txns_per_session=30, num_objects=10, mix=mix, seed=3)
        for spec in generator.generate().all_specs():
            assert spec.num_reads() == 1 and spec.num_writes() == 1

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            MTWorkloadGenerator(num_sessions=0)
        with pytest.raises(ValueError):
            MTWorkloadGenerator(txns_per_session=0)

    def test_accepts_every_distribution(self):
        for name in ("uniform", "zipf", "hotspot", "exp"):
            generator = MTWorkloadGenerator(num_sessions=2, txns_per_session=10, num_objects=10, distribution=name)
            assert generator.generate().num_transactions == 20

    def test_workload_name_mentions_distribution(self):
        generator = MTWorkloadGenerator(distribution="zipf")
        assert "zipf" in generator.generate().name


class TestGTWorkloadGenerator:
    def test_transaction_count_and_sizes(self):
        generator = GTWorkloadGenerator(
            num_sessions=4, txns_per_session=25, num_objects=20, ops_per_txn=10, seed=3
        )
        workload = generator.generate()
        assert workload.num_transactions == 100
        sizes = [len(spec) for spec in workload.all_specs()]
        assert max(sizes) <= 2 * 10  # RMW transactions pair reads with writes
        assert min(sizes) >= 1

    def test_mix_distribution_roughly_matches(self):
        generator = GTWorkloadGenerator(
            num_sessions=4, txns_per_session=200, num_objects=50, ops_per_txn=8, seed=9
        )
        workload = generator.generate()
        read_only = sum(1 for spec in workload.all_specs() if spec.num_writes() == 0)
        write_only = sum(1 for spec in workload.all_specs() if spec.num_reads() == 0)
        total = workload.num_transactions
        assert 0.1 < read_only / total < 0.3
        assert 0.3 < write_only / total < 0.5

    def test_most_gt_transactions_are_not_mini(self):
        generator = GTWorkloadGenerator(
            num_sessions=2, txns_per_session=100, num_objects=20, ops_per_txn=12, seed=5
        )
        workload = generator.generate()
        non_mini = sum(1 for spec in workload.all_specs() if not spec.is_mini())
        assert non_mini > workload.num_transactions * 0.7

    def test_invalid_ops_per_txn(self):
        with pytest.raises(ValueError):
            GTWorkloadGenerator(ops_per_txn=0)

    def test_gt_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            GTWorkloadGenerator(mix=GTWorkloadMix(read_only=0.5, write_only=0.5, read_modify_write=0.5))

    def test_deterministic_for_a_seed(self):
        a = GTWorkloadGenerator(num_sessions=2, txns_per_session=10, seed=4).generate()
        b = GTWorkloadGenerator(num_sessions=2, txns_per_session=10, seed=4).generate()
        assert [
            [(op.kind, op.key) for op in spec.operations] for spec in a.all_specs()
        ] == [[(op.kind, op.key) for op in spec.operations] for spec in b.all_specs()]
