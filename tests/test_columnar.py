"""Tests for the columnar history substrate (``repro.history.columnar``).

The central invariants of the columnar data plane:

* **Lossless interchange** — JSONL ↔ columnar conversion preserves every
  transaction field exactly, in order, including aborted/unknown statuses,
  ``None`` values, and timestamps.
* **One verdict** — for any history, checking through the columnar path
  (``HistoryIndex.from_columns`` / ``MTChecker.verify(segment)`` /
  ``IncrementalChecker.ingest_segment`` / ``workers=N`` columnar dispatch)
  produces the *same* verdict, anomaly kinds, and labeled cycles as the
  object pipeline — across SER/SI/SSER, healthy and fault-injected
  histories.
* **No object pickling** — parallel dispatch ships raw column buffers;
  no ``Transaction``/``Operation`` ever crosses the process boundary.
"""

import gzip
import math
import pickle
import random

import pytest

from repro.core.checker import MTChecker
from repro.core.checkers import check_ser, check_si, check_sser
from repro.core.incremental import IncrementalChecker
from repro.core.index import HistoryIndex
from repro.core.model import (
    History,
    Transaction,
    TransactionStatus,
    read,
    write,
)
from repro.core.result import IsolationLevel
from repro.db import Database, FaultPlan
from repro.history import (
    ColumnarHistory,
    SegmentWriter,
    is_segment_path,
    iter_history_jsonl,
    load_history_segment,
    write_history_jsonl,
    write_history_segment,
)
from repro.parallel import check_parallel
from repro.parallel.executor import make_payload
from repro.parallel.partition import partition_columns, partition_history
from repro.workloads.mt_generator import MTWorkloadGenerator
from repro.workloads.runner import run_workload

LEVELS = [
    IsolationLevel.SERIALIZABILITY,
    IsolationLevel.SNAPSHOT_ISOLATION,
    IsolationLevel.STRICT_SERIALIZABILITY,
]

FAULTS = [None, "lostupdate", "writeskew", "staleread", "abortedread"]


def generated_history(seed, fault=None, sessions=4, txns=25, objects=10):
    workload = MTWorkloadGenerator(
        num_sessions=sessions,
        txns_per_session=txns,
        num_objects=objects,
        distribution="zipf",
        seed=seed,
    ).generate()
    faults = (
        FaultPlan.for_anomaly(fault, rate=0.4, seed=seed) if fault else None
    )
    database = Database("si", keys=workload.keys, faults=faults)
    return run_workload(database, workload, seed=seed + 1).history


def txn_fingerprint(txn):
    """Every serialised field of one transaction, for exact comparisons."""
    return (
        txn.txn_id,
        txn.session_id,
        txn.status,
        txn.start_ts,
        txn.finish_ts,
        tuple((op.op_type, op.key, op.value) for op in txn.operations),
    )


def result_fingerprint(result):
    """Verdict + anomaly kinds + labeled cycles, for exact comparisons."""
    return (
        result.satisfied,
        result.num_transactions,
        [
            (v.kind, tuple(v.txn_ids), v.key, v.cycle, v.description)
            for v in result.violations
        ],
    )


# ----------------------------------------------------------------------
# Columnar container basics
# ----------------------------------------------------------------------
class TestColumnarContainer:
    def test_round_trip_through_columns_is_exact(self):
        history = generated_history(1, "abortedread")
        cols = ColumnarHistory.from_history(history)
        assert cols.num_transactions == history.num_transactions(include_initial=True)
        back = cols.to_history()
        original = {t.txn_id: txn_fingerprint(t) for t in history.transactions()}
        restored = {t.txn_id: txn_fingerprint(t) for t in back.transactions()}
        assert original == restored

    def test_none_values_and_missing_timestamps_survive(self):
        txn = Transaction(
            7,
            [read("x", None), write("x", 1), read("y", 3)],
            session_id=2,
            status=TransactionStatus.UNKNOWN,
        )
        cols = ColumnarHistory.from_transactions([txn])
        restored = cols.transaction_at(0)
        assert txn_fingerprint(restored) == txn_fingerprint(txn)
        assert restored.operations[0].value is None
        assert restored.start_ts is None and restored.finish_ts is None

    def test_wire_round_trip(self):
        cols = ColumnarHistory.from_history(generated_history(2))
        back = ColumnarHistory.from_wire(cols.to_wire())
        assert [txn_fingerprint(t) for t in back.iter_transactions()] == [
            txn_fingerprint(t) for t in cols.iter_transactions()
        ]

    def test_slice_rows_restricts_initial_keys(self):
        history = generated_history(3)
        cols = ColumnarHistory.from_history(history)
        keys = cols.key_names[:2]
        sliced = cols.slice_rows([0], restrict_initial_keys=keys)
        initial = sliced.transaction_at(0)
        assert initial.is_initial
        assert set(initial.keys()) <= set(keys)

    def test_nbytes_is_a_flat_columns_footprint(self):
        cols = ColumnarHistory.from_history(generated_history(4))
        assert 0 < cols.nbytes < 10 * cols.num_operations * 8 + 50 * cols.num_transactions


# ----------------------------------------------------------------------
# Segment files
# ----------------------------------------------------------------------
class TestSegmentFiles:
    def test_save_load_round_trip(self, tmp_path):
        history = generated_history(5, "lostupdate")
        path = tmp_path / "history.seg"
        write_history_segment(history, path)
        cols = load_history_segment(path)
        assert [txn_fingerprint(t) for t in cols.iter_transactions()] == [
            txn_fingerprint(t)
            for t in ColumnarHistory.from_history(history).iter_transactions()
        ]

    def test_gzip_segments_are_detected_by_content(self, tmp_path):
        history = generated_history(6)
        plain = tmp_path / "a.seg"
        packed = tmp_path / "b.seg.gz"
        write_history_segment(history, plain)
        write_history_segment(history, packed)
        assert packed.read_bytes()[:2] == b"\x1f\x8b"
        assert packed.stat().st_size < plain.stat().st_size
        a = load_history_segment(plain)
        b = load_history_segment(packed)
        assert [txn_fingerprint(t) for t in a.iter_transactions()] == [
            txn_fingerprint(t) for t in b.iter_transactions()
        ]

    def test_corrupt_files_are_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.seg"
        bogus.write_bytes(b"not a segment at all")
        with pytest.raises(ValueError):
            load_history_segment(bogus)
        truncated = tmp_path / "trunc.seg"
        write_history_segment(generated_history(7), tmp_path / "ok.seg")
        truncated.write_bytes((tmp_path / "ok.seg").read_bytes()[:-64])
        with pytest.raises(ValueError):
            load_history_segment(truncated)

    def test_is_segment_path(self):
        assert is_segment_path("history.seg")
        assert is_segment_path("history.SEG")
        assert is_segment_path("history.seg.gz")
        assert not is_segment_path("history.jsonl")
        assert not is_segment_path("history.json")

    def test_segment_writer_is_a_live_hook(self, tmp_path):
        workload = MTWorkloadGenerator(
            num_sessions=3, txns_per_session=10, num_objects=6, seed=8
        ).generate()
        path = tmp_path / "live.seg"
        with SegmentWriter(path, initial_keys=workload.keys) as writer:
            run = run_workload(
                Database("si", keys=workload.keys), workload, seed=9,
                on_transaction=writer,
            )
        cols = load_history_segment(path)
        assert cols.has_initial
        assert cols.num_transactions == run.stats.committed + run.stats.aborted + 1
        verdict = MTChecker().verify(cols, IsolationLevel.SNAPSHOT_ISOLATION)
        assert verdict.satisfied


# ----------------------------------------------------------------------
# JSONL <-> columnar interchange
# ----------------------------------------------------------------------
class TestJsonlInterchange:
    @pytest.mark.parametrize("fault", FAULTS)
    def test_jsonl_and_columnar_record_identical_streams(self, tmp_path, fault):
        history = generated_history(11, fault)
        jsonl = tmp_path / "h.jsonl"
        seg = tmp_path / "h.seg"
        write_history_jsonl(history, jsonl)
        write_history_segment(history, seg)
        via_jsonl = [txn_fingerprint(t) for t in iter_history_jsonl(jsonl)]
        via_seg = [
            txn_fingerprint(t)
            for t in load_history_segment(seg).iter_transactions()
        ]
        assert via_jsonl == via_seg

    def test_columnar_from_jsonl_stream_is_lossless(self, tmp_path):
        history = generated_history(12, "staleread")
        jsonl = tmp_path / "h.jsonl.gz"
        write_history_jsonl(history, jsonl)
        cols = ColumnarHistory.from_transactions(iter_history_jsonl(jsonl))
        assert [txn_fingerprint(t) for t in cols.iter_transactions()] == [
            txn_fingerprint(t) for t in iter_history_jsonl(jsonl)
        ]


# ----------------------------------------------------------------------
# Randomized equivalence: one verdict through every path
# ----------------------------------------------------------------------
class TestVerdictEquivalence:
    @pytest.mark.parametrize("fault", FAULTS)
    @pytest.mark.parametrize("level", LEVELS, ids=lambda l: l.short_name)
    def test_batch_incremental_and_parallel_agree(self, level, fault):
        rng = random.Random(hash((str(level), fault)) & 0xFFFF)
        for _ in range(3):
            seed = rng.randrange(10_000)
            history = generated_history(seed, fault)
            cols = ColumnarHistory.from_history(history)
            canonical = cols.to_history()

            reference = MTChecker().verify(canonical, level)

            # Batch through the columnar index: exact equality, labeled
            # cycles included.
            columnar = MTChecker().verify(cols, level)
            assert result_fingerprint(columnar) == result_fingerprint(reference)

            # Parallel columnar dispatch, inline and with 4 workers.
            for workers in (1, 4):
                sharded = MTChecker(workers=workers).verify(cols, level)
                assert sharded.satisfied == reference.satisfied
                assert sharded.num_transactions == reference.num_transactions

            # Incremental bulk segment ingestion: verdict and anomaly
            # existence match the batch checker (counterexample shape may
            # differ, never existence).
            incremental = IncrementalChecker(level)
            incremental.ingest_segment(cols)
            assert incremental.result().satisfied == reference.satisfied

    def test_segment_split_points_do_not_change_the_verdict(self):
        rng = random.Random(13)
        for fault in (None, "lostupdate"):
            history = generated_history(14, fault)
            cols = ColumnarHistory.from_history(history)
            reference = MTChecker().verify(cols, IsolationLevel.SNAPSHOT_ISOLATION)
            n = cols.num_transactions
            cut_a = rng.randrange(1, n)
            cut_b = rng.randrange(cut_a, n)
            checker = IncrementalChecker(IsolationLevel.SNAPSHOT_ISOLATION)
            checker.ingest_segment(cols.slice_rows(range(0, cut_a)))
            checker.ingest_segment(cols.slice_rows(range(cut_a, cut_b)))
            checker.ingest_segment(cols.slice_rows(range(cut_b, n)))
            assert checker.result().satisfied == reference.satisfied

    def test_segment_ingestion_equals_per_transaction_ingestion(self):
        for fault in (None, "writeskew"):
            cols = ColumnarHistory.from_history(generated_history(15, fault))
            bulk = IncrementalChecker(IsolationLevel.SERIALIZABILITY)
            bulk.ingest_segment(cols)
            one_by_one = IncrementalChecker(IsolationLevel.SERIALIZABILITY)
            for txn in cols.iter_transactions():
                one_by_one.ingest(txn)
            assert [v.kind for v in bulk.result().violations] == [
                v.kind for v in one_by_one.result().violations
            ]
            assert bulk.num_ingested == one_by_one.num_ingested

    def test_windowed_segment_ingestion_matches_windowed_object_ingestion(self):
        cols = ColumnarHistory.from_history(generated_history(16, sessions=6, txns=40))
        bulk = IncrementalChecker(IsolationLevel.SERIALIZABILITY, window=50)
        bulk.ingest_segment(cols)
        one_by_one = IncrementalChecker(IsolationLevel.SERIALIZABILITY, window=50)
        for txn in cols.iter_transactions():
            one_by_one.ingest(txn)
        assert bulk.result().satisfied == one_by_one.result().satisfied
        assert bulk.evicted_count == one_by_one.evicted_count
        assert bulk.stale_reads == one_by_one.stale_reads


# ----------------------------------------------------------------------
# The columnar index
# ----------------------------------------------------------------------
class TestColumnarIndex:
    def test_from_columns_matches_object_index_structurally(self):
        history = generated_history(21, "abortedread")
        cols = ColumnarHistory.from_history(history)
        canonical = cols.to_history()
        via_objects = HistoryIndex.build(canonical)
        via_columns = HistoryIndex.from_columns(cols)
        assert via_columns.txn_ids == via_objects.txn_ids
        assert via_columns.key_names == via_objects.key_names
        assert via_columns.txn_keys == via_objects.txn_keys
        assert via_columns.committed_txn_ids == via_objects.committed_txn_ids
        assert via_columns.session_order_id_pairs() == via_objects.session_order_id_pairs()
        assert via_columns.real_time_id_pairs() == via_objects.real_time_id_pairs()
        assert list(via_columns.iter_read_edges()) == list(via_objects.iter_read_edges())
        assert list(via_columns.iter_read_tuples()) == list(via_objects.iter_read_tuples())
        assert [
            (v.kind, tuple(v.txn_ids)) for v in via_columns.int_violations()
        ] == [(v.kind, tuple(v.txn_ids)) for v in via_objects.int_violations()]

    def test_from_columns_materialises_no_transactions_on_accept_path(self):
        history = generated_history(22)  # healthy SI history
        cols = ColumnarHistory.from_history(history)
        index = HistoryIndex.from_columns(cols)
        for level, check in (
            (IsolationLevel.SERIALIZABILITY, check_ser),
            (IsolationLevel.SNAPSHOT_ISOLATION, check_si),
        ):
            result = check(None, index=index)
            assert result.satisfied, level
        # The object layer was never touched: no Transaction exists.
        assert index._transactions is None
        assert index._txn_cache == {}
        assert index._history is None

    def test_lazy_object_layer_round_trips(self):
        history = generated_history(23, "lostupdate")
        cols = ColumnarHistory.from_history(history)
        index = HistoryIndex.from_columns(cols)
        # Object accessors materialise on demand and agree with the columns.
        assert {t.txn_id for t in index.committed_non_initial} == {
            t.txn_id
            for t in cols.to_history().committed_transactions(include_initial=False)
        }
        writer = index.final_writer(
            index.key_names[0],
            index.final_writes(index.committed_txn_ids[-1]).get(index.key_names[0]),
        )
        assert writer is None or isinstance(writer, Transaction)
        assert index.history.num_transactions() == len(cols.to_history())

    def test_version_chains_match_object_index(self):
        history = generated_history(24)
        cols = ColumnarHistory.from_history(history)
        assert (
            HistoryIndex.from_columns(cols).version_chains()
            == HistoryIndex.build(cols.to_history()).version_chains()
        )


# ----------------------------------------------------------------------
# Parallel dispatch: columns on the wire, never Transactions
# ----------------------------------------------------------------------
class TestColumnarDispatch:
    def _disjoint_history(self):
        from repro.bench import make_disjoint_history

        return make_disjoint_history(
            num_groups=5,
            sessions_per_group=2,
            txns_per_session=15,
            keys_per_group=4,
            timestamps=True,
        )

    def test_payloads_contain_no_pickled_transactions(self):
        history = self._disjoint_history()
        for shards in (
            partition_history(history),
            partition_columns(ColumnarHistory.from_history(history)),
        ):
            assert len(shards) == 5
            for shard in shards:
                blob = pickle.dumps(
                    make_payload(
                        shard, IsolationLevel.STRICT_SERIALIZABILITY, False, True
                    )
                )
                # A pickled Transaction/Operation would name its module.
                assert b"repro.core.model" not in blob
                assert b"Transaction" not in blob
                assert b"Operation" not in blob

    def test_partition_columns_matches_partition_history(self):
        history = self._disjoint_history()
        cols = ColumnarHistory.from_history(history)
        object_shards = partition_history(history)
        column_shards = partition_columns(cols)
        assert [s.keys for s in object_shards] == [s.keys for s in column_shards]
        assert [s.session_ids for s in object_shards] == [
            s.session_ids for s in column_shards
        ]
        assert [s.num_transactions for s in object_shards] == [
            s.num_transactions for s in column_shards
        ]
        # Each columnar shard holds exactly its sub-history's transactions.
        for obj, col in zip(object_shards, column_shards):
            assert col.columns is not None
            ids = sorted(
                t.txn_id for t in col.columns.iter_transactions() if not t.is_initial
            )
            expected = sorted(
                t.txn_id
                for t in obj.history.transactions(include_initial=False)
            )
            assert ids == expected

    @pytest.mark.parametrize("level", LEVELS, ids=lambda l: l.short_name)
    def test_check_parallel_columns_only(self, level):
        history = self._disjoint_history()
        cols = ColumnarHistory.from_history(history)
        serial = MTChecker().verify(history, level)
        sharded = check_parallel(None, level, workers=2, columns=cols)
        assert sharded.satisfied == serial.satisfied
        assert sharded.num_transactions == serial.num_transactions

    def test_check_parallel_requires_some_input(self):
        with pytest.raises(ValueError):
            check_parallel(None, IsolationLevel.SERIALIZABILITY)


class TestMemoryMappedSegments:
    """``ColumnarHistory.load(path, mmap=True)``: zero-copy column views."""

    def test_mmap_load_equals_copying_load(self, tmp_path):
        history = generated_history(31, "lostupdate")
        path = tmp_path / "history.seg"
        write_history_segment(history, path)
        mapped = ColumnarHistory.load(path, mmap=True)
        copied = ColumnarHistory.load(path)
        assert mapped.to_wire() == copied.to_wire()
        assert [txn_fingerprint(t) for t in mapped.iter_transactions()] == [
            txn_fingerprint(t) for t in copied.iter_transactions()
        ]
        # The columns really are views into the mapping, not arrays.
        assert isinstance(mapped.txn_ids, memoryview)

    @pytest.mark.parametrize("level", LEVELS, ids=lambda l: l.short_name)
    def test_mmap_verdicts_match_object_pipeline(self, tmp_path, level):
        for fault in (None, "lostupdate"):
            history = generated_history(32, fault)
            path = tmp_path / f"{fault}.seg"
            write_history_segment(history, path)
            mapped = ColumnarHistory.load(path, mmap=True)
            assert result_fingerprint(
                MTChecker().verify(mapped, level)
            ) == result_fingerprint(MTChecker().verify(history, level))

    def test_gzip_falls_back_to_copying_loader(self, tmp_path):
        history = generated_history(33)
        path = tmp_path / "history.seg.gz"
        write_history_segment(history, path)
        loaded = ColumnarHistory.load(path, mmap=True)  # silently copies
        assert not isinstance(loaded.txn_ids, memoryview)
        assert loaded.num_transactions == history.num_transactions() + 1

    def test_truncated_segment_is_rejected(self, tmp_path):
        history = generated_history(34)
        path = tmp_path / "history.seg"
        write_history_segment(history, path)
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(ValueError):
            ColumnarHistory.load(path, mmap=True)

    def test_mapped_segments_are_immutable_but_sliceable(self, tmp_path):
        history = generated_history(35)
        path = tmp_path / "history.seg"
        write_history_segment(history, path)
        mapped = ColumnarHistory.load(path, mmap=True)
        with pytest.raises(ValueError, match="memory-mapped"):
            mapped.append(Transaction(99_999, [read("k0", None)]))
        rows = list(range(min(5, mapped.num_transactions)))
        sliced = mapped.slice_rows(rows, restrict_initial_keys=mapped.key_names)
        sliced.append(Transaction(99_999, [read("k0", None)]))  # mutable copy
        assert sliced.num_transactions == len(rows) + 1

    @pytest.mark.parametrize("level", LEVELS, ids=lambda l: l.short_name)
    def test_segref_payloads_match_wire_payloads(self, tmp_path, level):
        from repro.bench import make_disjoint_history

        history = make_disjoint_history(
            num_groups=4,
            sessions_per_group=2,
            txns_per_session=12,
            keys_per_group=4,
            timestamps=True,
        )
        path = tmp_path / "history.seg"
        write_history_segment(history, path)
        columns = ColumnarHistory.load(path, mmap=True)
        serial = MTChecker().verify(history, level)
        via_wire = check_parallel(None, level, workers=2, columns=columns)
        via_segref = check_parallel(
            None, level, workers=2, columns=columns, source_path=path
        )
        assert result_fingerprint(via_segref) == result_fingerprint(via_wire)
        assert via_segref.satisfied == serial.satisfied

    def test_segref_payload_carries_rows_not_bytes(self, tmp_path):
        from repro.bench import make_disjoint_history

        history = make_disjoint_history(
            num_groups=5,
            sessions_per_group=2,
            txns_per_session=15,
            keys_per_group=4,
            timestamps=True,
        )
        path = tmp_path / "history.seg"
        write_history_segment(history, path)
        columns = ColumnarHistory.load(path, mmap=True)
        index = HistoryIndex.from_columns(columns)
        shards = partition_columns(columns, index=index, materialize=False)
        assert len(shards) > 1
        level = IsolationLevel.SERIALIZABILITY
        for shard in shards:
            assert shard.columns is None and shard.rows
            payload = make_payload(shard, level, False, True, source_path=path)
            assert payload[1][0] == "segref"
            blob = pickle.dumps(payload)
            assert b"repro.core.model" not in blob
            # The reference is tiny compared to the sliced column bytes.
            wire = make_payload(
                partition_columns(columns, index=index)[shard.index],
                level,
                False,
                True,
            )
            assert len(blob) < len(pickle.dumps(wire))
