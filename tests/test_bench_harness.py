"""Tests for the benchmark harness (metrics, canned pipelines, reporting)."""

import pytest

from repro.bench import (
    EndToEndResult,
    end_to_end,
    format_table,
    generate_gt_history,
    generate_mt_history,
    measure,
    measure_memory,
    scaled,
)
from repro.core.checkers import check_ser, check_si
from repro.db import FaultPlan


class TestMetrics:
    def test_measure_returns_value_time_and_memory(self):
        result = measure(lambda: sum(range(10_000)))
        assert result.value == sum(range(10_000))
        assert result.seconds >= 0
        assert result.peak_memory_mb >= 0

    def test_measure_without_memory(self):
        result = measure(lambda: 42, with_memory=False)
        assert result.value == 42
        assert result.peak_memory_mb == 0.0

    def test_measure_memory_tracks_allocations(self):
        value, peak_mb = measure_memory(lambda: [0] * 500_000)
        assert len(value) == 500_000
        assert peak_mb > 1.0


class TestScaled:
    def test_scaled_applies_minimum(self):
        assert scaled(10) >= 1
        assert scaled(0, minimum=3) == 3


class TestGenerationPipelines:
    def test_generate_mt_history_returns_history_and_stats(self):
        generated = generate_mt_history(
            isolation="si", num_sessions=3, txns_per_session=15, num_objects=10, seed=2
        )
        assert generated.history.num_transactions() > 0
        assert generated.generation_seconds >= 0
        assert 0.0 <= generated.stats.abort_rate <= 1.0
        assert check_si(generated.history).satisfied

    def test_generate_gt_history_uses_ops_per_txn(self):
        generated = generate_gt_history(
            isolation="si",
            num_sessions=2,
            txns_per_session=10,
            num_objects=20,
            ops_per_txn=8,
            seed=3,
        )
        sizes = [
            len(txn)
            for txn in generated.history.committed_transactions(include_initial=False)
        ]
        assert sizes and max(sizes) > 4  # larger than any mini-transaction

    def test_generate_with_faults_produces_violations(self):
        generated = generate_mt_history(
            isolation="si",
            num_sessions=5,
            txns_per_session=40,
            num_objects=6,
            distribution="zipf",
            faults=FaultPlan(lost_update_rate=0.6, seed=1),
            seed=4,
        )
        assert not check_si(generated.history).satisfied


class TestEndToEnd:
    def test_end_to_end_result_rows(self):
        generated = generate_mt_history(
            isolation="serializable", num_sessions=3, txns_per_session=15, num_objects=10, seed=5
        )
        result = end_to_end("mtc", generated, check_ser)
        assert isinstance(result, EndToEndResult)
        assert result.satisfied
        assert result.total_seconds >= result.verification_seconds
        row = result.row()
        assert row["label"] == "mtc"
        assert set(row) >= {"gen_s", "verify_s", "total_s", "mem_mb", "abort_rate", "valid"}


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [{"name": "mtc", "time": 0.1}, {"name": "cobra", "time": 1.25}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[2] and "time" in lines[2]
        assert any("cobra" in line for line in lines)

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")
