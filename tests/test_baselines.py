"""Tests for the baseline checkers: Cobra, PolySI, Porcupine, Elle, dbcop.

Beyond unit behaviour, the key property exercised here is *agreement*: on
mini-transaction histories, every baseline must return the same verdict as
the corresponding MTC checker (the baselines are general-purpose, so MT
histories are just a special case for them).
"""

import pytest

from repro.baselines import (
    CobraChecker,
    DbcopChecker,
    ElleChecker,
    PolySIChecker,
    PorcupineChecker,
)
from repro.core.anomalies import anomaly_catalog
from repro.core.checkers import check_ser, check_si
from repro.core.lwt import check_linearizability
from repro.core.model import History, Transaction, read, write
from repro.core.result import IsolationLevel
from repro.db import Database, FaultPlan
from repro.workloads import (
    LWTHistoryGenerator,
    MTWorkloadGenerator,
    run_workload,
)


def txn(txn_id, *ops):
    return Transaction(txn_id, list(ops))


def generated_history(isolation, *, faults=None, seed=1, objects=10, txns=30):
    generator = MTWorkloadGenerator(
        num_sessions=4, txns_per_session=txns, num_objects=objects, distribution="zipf", seed=seed
    )
    workload = generator.generate()
    db = Database(isolation, keys=workload.keys, faults=faults)
    return run_workload(db, workload, seed=seed + 1).history


class TestCobra:
    def test_valid_chain_accepted(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 1), write("x", 2))
        history = History.from_transactions([[t1], [t2]], initial_keys=["x"])
        assert CobraChecker().check(history).satisfied

    @pytest.mark.parametrize("name", list(anomaly_catalog()))
    def test_agrees_with_mtc_on_catalog(self, name):
        spec = anomaly_catalog()[name]
        history = spec.build()
        assert CobraChecker().check(history).satisfied == (not spec.violates_ser)

    def test_agrees_with_mtc_on_generated_histories(self):
        for isolation, faults in (("serializable", None), ("si", None), ("read-committed", None)):
            history = generated_history(isolation, faults=faults)
            assert CobraChecker().check(history).satisfied == check_ser(history).satisfied

    def test_detects_injected_write_skew(self):
        from repro.workloads import MTWorkloadMix

        mix = MTWorkloadMix(single_rmw=0.2, double_rmw=0.2, read_only=0.1, read_then_rmw=0.5)
        generator = MTWorkloadGenerator(
            num_sessions=6, txns_per_session=80, num_objects=5, mix=mix, seed=3
        )
        workload = generator.generate()
        db = Database("serializable", keys=workload.keys, faults=FaultPlan(write_skew_rate=1.0, seed=5))
        history = run_workload(db, workload, seed=7).history
        mtc = check_ser(history)
        cobra = CobraChecker().check(history)
        assert cobra.satisfied == mtc.satisfied == False  # noqa: E712

    def test_report_populated(self):
        checker = CobraChecker()
        checker.check(generated_history("serializable"))
        assert checker.last_report is not None
        assert checker.last_report.total_seconds >= 0

    def test_without_rmw_pruning_still_correct(self):
        history = generated_history("serializable", txns=10, objects=5)
        assert CobraChecker(prune_rmw_chains=False).check(history).satisfied

    def test_int_violations_reported(self):
        bad = txn(1, read("x", 42))
        history = History.from_transactions([[bad]], initial_keys=["x"])
        result = CobraChecker().check(history)
        assert not result.satisfied


class TestPolySI:
    @pytest.mark.parametrize("name", list(anomaly_catalog()))
    def test_agrees_with_mtc_on_catalog(self, name):
        spec = anomaly_catalog()[name]
        history = spec.build()
        assert PolySIChecker().check(history).satisfied == (not spec.violates_si)

    def test_agrees_with_mtc_on_generated_si_history(self):
        history = generated_history("si", txns=15, objects=15)
        assert PolySIChecker().check(history).satisfied == check_si(history).satisfied is True

    def test_detects_lost_update_fault(self):
        history = generated_history("si", faults=FaultPlan(lost_update_rate=0.6, seed=2), txns=15, objects=5)
        mtc = check_si(history)
        polysi = PolySIChecker().check(history)
        assert polysi.satisfied == mtc.satisfied == False  # noqa: E712

    def test_write_skew_history_accepted_under_si(self):
        from repro.core.anomalies import write_skew

        assert PolySIChecker().check(write_skew()).satisfied

    def test_report_populated(self):
        checker = PolySIChecker()
        checker.check(generated_history("si", txns=10, objects=10))
        assert checker.last_report is not None
        assert checker.last_report.num_constraints >= 0


class TestPorcupine:
    def test_agrees_with_vl_lwt_on_valid_histories(self):
        generator = LWTHistoryGenerator(num_sessions=5, txns_per_session=30, num_objects=2, seed=3)
        history = generator.generate()
        assert PorcupineChecker().check(history).satisfied == check_linearizability(history).satisfied

    def test_agrees_on_invalid_histories(self):
        generator = LWTHistoryGenerator(num_sessions=5, txns_per_session=30, num_objects=1, seed=5)
        history = generator.generate(valid=False)
        assert (
            PorcupineChecker().check(history).satisfied
            == check_linearizability(history).satisfied
            == False  # noqa: E712
        )

    def test_accepts_overlapping_concurrent_operations(self):
        from repro.core.lwt import LWTHistory, LWTKind, LWTOperation

        history = LWTHistory(
            [
                LWTOperation(1, LWTKind.INSERT, "x", written=0, start_ts=0.0, finish_ts=9.0),
                LWTOperation(2, LWTKind.READ_WRITE, "x", expected=0, written=1, start_ts=0.0, finish_ts=9.0),
                LWTOperation(3, LWTKind.READ_WRITE, "x", expected=1, written=2, start_ts=0.0, finish_ts=9.0),
            ]
        )
        assert PorcupineChecker().check(history).satisfied

    def test_state_budget_guard(self):
        generator = LWTHistoryGenerator(num_sessions=4, txns_per_session=20, num_objects=1, seed=7)
        checker = PorcupineChecker(max_states=1)
        assert not checker.check(generator.generate()).satisfied


class TestElle:
    def test_register_mode_detects_divergence(self):
        from repro.core.anomalies import lost_update

        checker = ElleChecker(IsolationLevel.SERIALIZABILITY)
        assert not checker.check_registers(lost_update()).satisfied

    def test_register_mode_accepts_valid_history(self):
        history = generated_history("serializable", txns=15)
        assert ElleChecker(IsolationLevel.SERIALIZABILITY).check_registers(history).satisfied

    def test_rejects_unsupported_level(self):
        with pytest.raises(ValueError):
            ElleChecker(IsolationLevel.LINEARIZABILITY)

    def test_list_append_incompatible_order_detected(self):
        from repro.workloads.list_append import AppendOp, ElleHistory, ElleTransaction, ReadListOp

        t1 = ElleTransaction(1, 0, ops=[AppendOp("l0", 1)])
        t2 = ElleTransaction(2, 1, ops=[AppendOp("l0", 2)])
        r1 = ElleTransaction(3, 2, ops=[ReadListOp("l0", (1, 2))])
        r2 = ElleTransaction(4, 3, ops=[ReadListOp("l0", (2,))])
        history = ElleHistory(sessions=[[t1], [t2], [r1], [r2]], keys=["l0"])
        result = ElleChecker(IsolationLevel.SERIALIZABILITY).check_list_append(history)
        assert not result.satisfied

    def test_list_append_aborted_read_detected(self):
        from repro.workloads.list_append import AppendOp, ElleHistory, ElleTransaction, ReadListOp

        aborted = ElleTransaction(1, 0, ops=[AppendOp("l0", 1)], committed=False)
        reader = ElleTransaction(2, 1, ops=[ReadListOp("l0", (1,))])
        history = ElleHistory(sessions=[[aborted], [reader]], keys=["l0"])
        result = ElleChecker(IsolationLevel.SNAPSHOT_ISOLATION).check_list_append(history)
        assert not result.satisfied

    def test_list_append_thin_air_read_detected(self):
        from repro.workloads.list_append import ElleHistory, ElleTransaction, ReadListOp

        reader = ElleTransaction(1, 0, ops=[ReadListOp("l0", (99,))])
        history = ElleHistory(sessions=[[reader]], keys=["l0"])
        assert not ElleChecker(IsolationLevel.SERIALIZABILITY).check_list_append(history).satisfied

    def test_list_append_valid_chain_accepted(self):
        from repro.workloads.list_append import AppendOp, ElleHistory, ElleTransaction, ReadListOp

        t1 = ElleTransaction(1, 0, ops=[AppendOp("l0", 1)])
        t2 = ElleTransaction(2, 0, ops=[AppendOp("l0", 2), ReadListOp("l0", (1, 2))])
        reader = ElleTransaction(3, 1, ops=[ReadListOp("l0", (1,))])
        history = ElleHistory(sessions=[[t1, t2], [reader]], keys=["l0"])
        assert ElleChecker(IsolationLevel.SERIALIZABILITY).check_list_append(history).satisfied


class TestDbcop:
    @pytest.mark.parametrize("name", list(anomaly_catalog()))
    def test_agrees_with_mtc_on_catalog(self, name):
        spec = anomaly_catalog()[name]
        assert DbcopChecker().check(spec.build()).satisfied == (not spec.violates_ser)

    def test_agrees_with_mtc_on_generated_histories(self):
        for isolation in ("serializable", "si"):
            history = generated_history(isolation, txns=15)
            assert DbcopChecker().check(history).satisfied == check_ser(history).satisfied

    def test_state_budget_guard(self):
        history = generated_history("serializable", txns=20)
        assert not DbcopChecker(max_states=1).check(history).satisfied

    def test_empty_history(self):
        history = History.from_transactions([], initial_keys=["x"])
        assert DbcopChecker().check(history).satisfied
