"""Tests for the streaming incremental verification subsystem.

The central invariant: after ingesting a complete history (in any order
preserving per-session order), the incremental verdict equals the batch
verdict of ``check_ser`` / ``check_si`` / ``check_sser``.  On top of that:
violations surface at the exact offending transaction, the Pearce–Kelly
order stays consistent under insertions and removals, and the bounded
window garbage-collects without changing verdicts on well-behaved streams.
"""

import itertools
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, MTChecker, run_workload
from repro.core.anomalies import anomaly_catalog
from repro.core.checkers import MTHistoryError, check_ser, check_si, check_sser
from repro.core.incremental import (
    CheckerSession,
    IncrementalChecker,
    PearceKellyOrder,
    stream_order,
)
from repro.core.model import History, Transaction, TransactionStatus, read, write
from repro.core.result import AnomalyKind, IsolationLevel
from repro.workloads.mt_generator import MTWorkloadGenerator

SER = IsolationLevel.SERIALIZABILITY
SI = IsolationLevel.SNAPSHOT_ISOLATION
SSER = IsolationLevel.STRICT_SERIALIZABILITY

SLOW = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])

KEYS = ("x", "y")


@st.composite
def mt_histories(draw, max_txns=7):
    """Random MT histories (valid and anomalous), as in test_property_based."""
    num_txns = draw(st.integers(min_value=1, max_value=max_txns))
    num_sessions = draw(st.integers(min_value=1, max_value=3))
    value_counter = itertools.count(1)
    writes_per_key = {key: [0] for key in KEYS}
    shapes = []
    for _ in range(num_txns):
        shape = draw(
            st.sampled_from(["read_only_1", "read_only_2", "rmw_1", "rmw_2", "read_then_rmw"])
        )
        keys = list(KEYS) if draw(st.booleans()) else list(reversed(KEYS))
        plan = {
            "read_only_1": [("r", keys[0])],
            "read_only_2": [("r", keys[0]), ("r", keys[1])],
            "rmw_1": [("r", keys[0]), ("w", keys[0])],
            "rmw_2": [("r", keys[0]), ("r", keys[1]), ("w", keys[0]), ("w", keys[1])],
            "read_then_rmw": [("r", keys[0]), ("r", keys[1]), ("w", keys[1])],
        }[shape]
        concrete = []
        for kind, key in plan:
            if kind == "w":
                value = next(value_counter)
                writes_per_key[key].append(value)
                concrete.append(("w", key, value))
            else:
                concrete.append(("r", key, None))
        shapes.append(concrete)
    transactions = []
    for index, concrete in enumerate(shapes):
        ops = []
        for kind, key, value in concrete:
            if kind == "w":
                ops.append(write(key, value))
            else:
                ops.append(read(key, draw(st.sampled_from(writes_per_key[key]))))
        transactions.append(Transaction(txn_id=index + 1, operations=ops))
    sessions = [[] for _ in range(num_sessions)]
    for index, txn in enumerate(transactions):
        sessions[index % num_sessions].append(txn)
    return History.from_transactions(sessions, initial_keys=list(KEYS))


def generated_history(seed, *, engine="si", sessions=4, txns=15, objects=8):
    workload = MTWorkloadGenerator(
        num_sessions=sessions, txns_per_session=txns, num_objects=objects, seed=seed
    ).generate()
    return run_workload(Database(engine, keys=workload.keys), workload, seed=seed + 1).history


# ----------------------------------------------------------------------
# Pearce–Kelly online topological order
# ----------------------------------------------------------------------
class TestPearceKellyOrder:
    def test_forward_insertions_are_cheap_and_acyclic(self):
        topo = PearceKellyOrder()
        for i in range(10):
            assert topo.add_edge(i, i + 1) is None
        assert all(topo.order_of(i) < topo.order_of(i + 1) for i in range(10))

    def test_back_edge_triggers_reorder_not_cycle(self):
        topo = PearceKellyOrder()
        topo.add_node(1)
        topo.add_node(2)  # insertion order 1, 2
        assert topo.add_edge(2, 1) is None  # must reorder, not report a cycle
        assert topo.order_of(2) < topo.order_of(1)

    def test_cycle_is_reported_with_the_closing_path(self):
        topo = PearceKellyOrder()
        assert topo.add_edge(1, 2) is None
        assert topo.add_edge(2, 3) is None
        cycle = topo.add_edge(3, 1)
        assert cycle == [1, 2, 3]
        # The rejected edge leaves the structure acyclic and usable.
        assert topo.add_edge(1, 3) is None

    def test_self_loop_is_a_cycle(self):
        topo = PearceKellyOrder()
        assert topo.add_edge(5, 5) == [5]

    def test_duplicate_edges_are_noops(self):
        topo = PearceKellyOrder()
        assert topo.add_edge(1, 2) is None
        assert topo.add_edge(1, 2) is None
        assert topo.has_edge(1, 2)

    def test_remove_node_unblocks_former_cycles(self):
        topo = PearceKellyOrder()
        topo.add_edge(1, 2)
        topo.add_edge(2, 3)
        topo.remove_node(2)
        assert topo.add_edge(3, 1) is None  # 1 -> 2 -> 3 is gone

    def test_random_insertions_maintain_topological_order(self):
        rng = random.Random(42)
        for _ in range(30):
            topo = PearceKellyOrder()
            edges = set()
            for _ in range(60):
                source, target = rng.randrange(15), rng.randrange(15)
                if topo.add_edge(source, target) is None and source != target:
                    edges.add((source, target))
                for a, b in edges:
                    assert topo.order_of(a) < topo.order_of(b)


# ----------------------------------------------------------------------
# Equivalence with the batch checkers
# ----------------------------------------------------------------------
class TestBatchEquivalence:
    @SLOW
    @given(history=mt_histories())
    def test_ser_matches_batch(self, history):
        incremental = CheckerSession(SER).ingest_history(history)
        assert incremental.satisfied == check_ser(history).satisfied

    @SLOW
    @given(history=mt_histories())
    def test_si_matches_batch(self, history):
        incremental = CheckerSession(SI).ingest_history(history)
        assert incremental.satisfied == check_si(history).satisfied

    @pytest.mark.parametrize("engine", ["si", "serializable", "s2pl", "read-committed"])
    @pytest.mark.parametrize("level,batch", [(SER, check_ser), (SI, check_si), (SSER, check_sser)])
    def test_engine_histories_match_batch(self, engine, level, batch):
        for seed in range(5):
            history = generated_history(seed, engine=engine)
            incremental = CheckerSession(level).ingest_history(history)
            assert incremental.satisfied == batch(history).satisfied

    def test_anomaly_catalog_matches_batch(self):
        for name, spec in anomaly_catalog().items():
            history = spec.build()
            for level, batch in ((SER, check_ser), (SI, check_si)):
                incremental = CheckerSession(level).ingest_history(history)
                assert incremental.satisfied == batch(history).satisfied, (name, level)

    def test_shuffled_arrival_order_preserves_verdicts(self):
        for seed in range(8):
            history = generated_history(seed, engine="read-committed")
            rng = random.Random(seed * 13 + 5)
            queues = [list(s.transactions) for s in history.sessions]
            stream = []
            while any(queues):
                queue = rng.choice([q for q in queues if q])
                stream.append(queue.pop(0))
            for level, batch in ((SER, check_ser), (SI, check_si), (SSER, check_sser)):
                session = CheckerSession(level)
                session.ingest(history.initial_transaction)
                for txn in stream:
                    session.ingest(txn)
                assert session.result().satisfied == batch(history).satisfied

    def test_num_transactions_matches_batch(self):
        history = generated_history(1)
        incremental = CheckerSession(SER).ingest_history(history)
        assert incremental.num_transactions == check_ser(history).num_transactions


# ----------------------------------------------------------------------
# Online behaviour: violations at the exact offending transaction
# ----------------------------------------------------------------------
class TestOnlineDetection:
    def test_lost_update_cycle_reported_at_second_overwriter_under_ser(self):
        checker = IncrementalChecker(SER, initial_keys=["x"])
        assert checker.ingest(Transaction(1, [read("x", 0), write("x", 1)])) == []
        violations = checker.ingest(
            Transaction(2, [read("x", 0), write("x", 2)], session_id=1)
        )
        # The RW/RW 2-cycle between the two overwriters (batch classifies the
        # same shape as a generic dependency cycle under SER).
        assert violations and violations[0].cycle
        assert sorted(violations[0].txn_ids) == [1, 2]
        assert not checker.satisfied

    def test_lost_update_divergence_reported_at_second_overwriter_under_si(self):
        checker = IncrementalChecker(SI, initial_keys=["x"])
        assert checker.ingest(Transaction(1, [read("x", 0), write("x", 1)])) == []
        violations = checker.ingest(
            Transaction(2, [read("x", 0), write("x", 2)], session_id=1)
        )
        assert violations and violations[0].kind is AnomalyKind.LOST_UPDATE

    def test_write_skew_reported_at_second_writer_under_ser(self):
        checker = IncrementalChecker(SER, initial_keys=["x", "y"])
        t1 = Transaction(1, [read("x", 0), read("y", 0), write("x", 1)])
        t2 = Transaction(2, [read("x", 0), read("y", 0), write("y", 2)], session_id=1)
        assert checker.ingest(t1) == []
        violations = checker.ingest(t2)
        assert violations and violations[0].kind is AnomalyKind.WRITE_SKEW

    def test_write_skew_is_allowed_under_si(self):
        checker = IncrementalChecker(SI, initial_keys=["x", "y"])
        checker.ingest(Transaction(1, [read("x", 0), read("y", 0), write("x", 1)]))
        checker.ingest(Transaction(2, [read("x", 0), read("y", 0), write("y", 2)], session_id=1))
        assert checker.result().satisfied

    def test_checking_continues_past_the_first_violation(self):
        checker = IncrementalChecker(SER, initial_keys=["x", "y"])
        checker.ingest(Transaction(1, [read("x", 0), write("x", 1)]))
        first = checker.ingest(Transaction(2, [read("x", 0), write("x", 2)], session_id=1))
        assert first
        checker.ingest(Transaction(3, [read("y", 0), write("y", 3)], session_id=2))
        second = checker.ingest(Transaction(4, [read("y", 0), write("y", 4)], session_id=3))
        assert second, "an unrelated later anomaly must still be detected"

    def test_pending_read_resolves_when_writer_arrives(self):
        checker = IncrementalChecker(SER, initial_keys=["x"])
        checker.ingest(Transaction(2, [read("x", 7)], session_id=1))
        assert not checker.result().satisfied  # writer unseen: thin-air so far
        checker.ingest(Transaction(1, [read("x", 0), write("x", 7)]))
        assert checker.result().satisfied

    def test_future_read_reports_exactly_the_batch_anomalies(self):
        # A FutureRead must not additionally surface as a phantom ThinAirRead
        # from the pending-read sweep (the read's value is the reader's own).
        txn = Transaction(1, [read("x", 5), write("x", 5), write("x", 6)])
        history = History.from_transactions([[txn]], initial_keys=["x"])
        batch_kinds = [v.kind for v in check_ser(history).violations]
        result = CheckerSession(SER).ingest_history(history)
        assert [v.kind for v in result.violations] == batch_kinds
        assert batch_kinds == [AnomalyKind.FUTURE_READ]

    def test_unresolved_read_is_thin_air_at_result_time(self):
        checker = IncrementalChecker(SER, initial_keys=["x"])
        checker.ingest(Transaction(1, [read("x", 99)]))
        result = checker.result()
        assert not result.satisfied
        assert result.violation.kind is AnomalyKind.THIN_AIR_READ

    def test_aborted_writer_flags_pending_reader_on_arrival(self):
        checker = IncrementalChecker(SER, initial_keys=["x"])
        checker.ingest(Transaction(2, [read("x", 7)], session_id=1))
        checker.ingest(
            Transaction(
                1,
                [read("x", 0), write("x", 7)],
                status=TransactionStatus.ABORTED,
            )
        )
        kinds = {v.kind for v in checker.violations}
        assert AnomalyKind.ABORTED_READ in kinds

    def test_rt_violation_detected_under_sser(self):
        # t2 starts after t1 finished in real time, yet observes the state
        # t1 overwrote — a stale read that only SSER forbids.
        t1 = Transaction(1, [read("x", 0), write("x", 1)], start_ts=0.0, finish_ts=1.0)
        t2 = Transaction(2, [read("x", 0)], session_id=1, start_ts=2.0, finish_ts=3.0)

        checker = IncrementalChecker(SSER, initial_keys=["x"])
        assert checker.ingest(t1) == []
        violations = checker.ingest(t2)
        assert violations and violations[0].kind is AnomalyKind.REAL_TIME_VIOLATION

        relaxed = IncrementalChecker(SER, initial_keys=["x"])
        relaxed.ingest(t1)
        relaxed.ingest(t2)
        assert relaxed.result().satisfied  # SER allows serializing t2 first

    def test_strict_mt_rejects_duplicate_values_at_ingest(self):
        checker = IncrementalChecker(SER, initial_keys=["x"], strict_mt=True)
        checker.ingest(Transaction(1, [read("x", 0), write("x", 1)]))
        with pytest.raises(MTHistoryError):
            checker.ingest(Transaction(2, [read("x", 0), write("x", 1)], session_id=1))

    def test_strict_mt_rejects_non_mini_transactions(self):
        checker = IncrementalChecker(SER, initial_keys=["x"], strict_mt=True)
        with pytest.raises(MTHistoryError):
            checker.ingest(Transaction(1, [write("x", 1)]))  # write without read

    def test_unsupported_levels_are_rejected(self):
        with pytest.raises(ValueError):
            IncrementalChecker(IsolationLevel.READ_COMMITTED)


# ----------------------------------------------------------------------
# Bounded-window garbage collection
# ----------------------------------------------------------------------
class TestWindowGC:
    def test_graph_stays_bounded_and_verdict_clean(self):
        history = generated_history(3, sessions=6, txns=80, objects=20)
        session = CheckerSession(SI, window=100)
        result = session.ingest_history(history)
        checker = session.checker
        assert result.satisfied
        assert checker.stale_reads == 0
        assert checker.evicted_count > 0
        assert checker.graph.num_nodes() <= 102  # window + ⊥T + slack

    def test_windowed_verdict_matches_batch_on_faulty_stream(self):
        from repro.db.faults import FaultPlan

        workload = MTWorkloadGenerator(
            num_sessions=6, txns_per_session=60, num_objects=8, seed=5, distribution="zipf"
        ).generate()
        database = Database(
            "si", keys=workload.keys, faults=FaultPlan.for_anomaly("lostupdate", rate=0.5, seed=5)
        )
        history = run_workload(database, workload, seed=6).history
        session = CheckerSession(SI, window=100)
        session.ingest_history(history)
        assert session.satisfied == check_si(history).satisfied is False

    def test_current_versions_remain_readable_beyond_the_window(self):
        # A key written once at the start and read much later: the version is
        # still the latest, so the read is legitimate at any age.
        checker = IncrementalChecker(SER, initial_keys=["hot", "cold"], window=10)
        checker.ingest(Transaction(1, [read("cold", 0), write("cold", 1)]))
        last_hot = 0
        for i in range(2, 40):
            checker.ingest(Transaction(i, [read("hot", last_hot), write("hot", 1000 + i)]))
            last_hot = 1000 + i
        late_reader = Transaction(99, [read("cold", 1)], session_id=1)
        checker.ingest(late_reader)
        assert checker.stale_reads == 0
        assert checker.result().satisfied

    def test_stale_read_beyond_window_is_counted(self):
        checker = IncrementalChecker(SER, initial_keys=["x"], window=5)
        value = 0
        for i in range(1, 20):  # overwrite x repeatedly; old versions seal
            checker.ingest(Transaction(i, [read("x", value), write("x", i * 100)]))
            value = i * 100
        assert checker.ingest(Transaction(50, [read("x", 100)], session_id=1)) == []
        assert checker.stale_reads == 1

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            IncrementalChecker(SER, window=0)

    def test_sealed_marker_fifo_cap_value(self):
        # The documented cap is max(4 * window, 1024) markers; no window
        # means no cap bookkeeping at all.
        assert IncrementalChecker(SER, window=2)._sealed_cap == 1024
        assert IncrementalChecker(SER, window=300)._sealed_cap == 1200
        assert IncrementalChecker(SER)._sealed_cap == 0

    def test_sealed_marker_fifo_caps_at_documented_bound(self):
        # Overwrite one key far more times than the marker cap: the FIFO
        # must top out at exactly the cap while the stream stays healthy.
        checker = IncrementalChecker(SER, initial_keys=["x"], window=2)
        cap = checker._sealed_cap
        last = 0
        for i in range(1, cap + 201):
            checker.ingest(Transaction(i, [read("x", last), write("x", i)]))
            last = i
        assert len(checker._sealed_fifo) == cap
        assert checker.result().satisfied
        assert checker.stale_reads == 0

    def test_read_of_expired_marker_reports_thin_air_not_stale(self):
        # A read of a version whose sealed marker already left the FIFO can
        # no longer be recognised as "stale": it must surface as the louder
        # ThinAirRead verdict, with the stale-read counter untouched.
        checker = IncrementalChecker(SER, initial_keys=["x"], window=2)
        cap = checker._sealed_cap
        last = 0
        for i in range(1, cap + 201):
            checker.ingest(Transaction(i, [read("x", last), write("x", i)]))
            last = i
        assert ("x", 5) not in checker._slots  # marker expired, not sealed
        checker.ingest(Transaction(9000, [read("x", 5)], session_id=1))
        assert checker.stale_reads == 0
        result = checker.result()
        assert not result.satisfied
        assert {v.kind for v in result.violations} == {AnomalyKind.THIN_AIR_READ}

    def test_read_of_sealed_marker_counts_stale_not_thin_air(self):
        # While the marker is still in the FIFO the same read is classified
        # as a window violation (stale read), not as an anomaly.
        checker = IncrementalChecker(SER, initial_keys=["x"], window=2)
        last = 0
        for i in range(1, 50):
            checker.ingest(Transaction(i, [read("x", last), write("x", i)]))
            last = i
        assert checker._slots[("x", 5)] is not None  # sealed marker present
        checker.ingest(Transaction(9000, [read("x", 5)], session_id=1))
        assert checker.stale_reads == 1
        assert checker.result().satisfied

    def test_window_mode_is_bounded_memory(self):
        # A single hot key overwritten thousands of times: slots, graph, and
        # topology must all stay bounded by the window/marker cap, not the
        # stream length.
        checker = IncrementalChecker(SER, initial_keys=["x"], window=4)
        last = 0
        for i in range(1, 2001):
            checker.ingest(Transaction(i, [read("x", last), write("x", i)]))
            last = i
        assert checker.result().satisfied
        assert checker.graph.num_nodes() <= 6
        assert len(checker._slots) <= checker._sealed_cap + 8
        assert len(checker._sealed_fifo) <= checker._sealed_cap


# ----------------------------------------------------------------------
# The CheckerSession facade and live checking
# ----------------------------------------------------------------------
class TestCheckerSession:
    def test_mtchecker_session_factory_inherits_strict_mt(self):
        session = MTChecker(strict_mt=True).session(SER, initial_keys=["x"])
        with pytest.raises(MTHistoryError):
            session.ingest(Transaction(1, [write("x", 1)]))

    def test_session_rejects_lwt_levels(self):
        with pytest.raises(ValueError):
            MTChecker().session(IsolationLevel.LINEARIZABILITY)

    def test_live_checking_hook_on_runner(self):
        workload = MTWorkloadGenerator(
            num_sessions=4, txns_per_session=20, num_objects=10, seed=2
        ).generate()
        with MTChecker().session(SI, initial_keys=workload.keys) as session:
            run = run_workload(
                Database("si", keys=workload.keys), workload, seed=3, on_transaction=session
            )
            assert session.num_ingested == run.stats.committed
            assert session.result().satisfied

    def test_live_checking_matches_post_hoc_batch_on_faulty_run(self):
        from repro.db.faults import FaultPlan

        workload = MTWorkloadGenerator(
            num_sessions=4, txns_per_session=40, num_objects=5, seed=9, distribution="zipf"
        ).generate()
        database = Database(
            "si", keys=workload.keys, faults=FaultPlan.for_anomaly("lostupdate", rate=0.6, seed=9)
        )
        session = MTChecker().session(SI, initial_keys=workload.keys)
        run = run_workload(database, workload, seed=10, on_transaction=session)
        assert session.result().satisfied == check_si(run.history).satisfied

    def test_ingest_round(self):
        session = CheckerSession(SER, initial_keys=["x"])
        round_one = [
            Transaction(1, [read("x", 0), write("x", 1)]),
            Transaction(2, [read("x", 1), write("x", 2)], session_id=1),
        ]
        assert session.ingest_round(round_one) == []
        assert session.result().satisfied


# ----------------------------------------------------------------------
# Canonical stream order
# ----------------------------------------------------------------------
class TestStreamOrder:
    def test_initial_first_and_per_session_order_preserved(self):
        history = generated_history(4)
        stream = list(stream_order(history))
        assert stream[0].is_initial
        positions = {txn.txn_id: i for i, txn in enumerate(stream)}
        for session in history.sessions:
            ids = [t.txn_id for t in session.transactions]
            assert [positions[i] for i in ids] == sorted(positions[i] for i in ids)

    def test_timestamped_streams_merge_by_finish(self):
        history = generated_history(6)
        stream = [t for t in stream_order(history) if not t.is_initial]
        finishes = [t.finish_ts for t in stream]
        assert finishes == sorted(finishes)

    def test_untimestamped_histories_round_robin(self):
        t1 = Transaction(1, [read("x", 0)])
        t2 = Transaction(2, [read("x", 0)])
        t3 = Transaction(3, [read("x", 0)])
        history = History.from_transactions([[t1, t3], [t2]], initial_keys=["x"])
        ids = [t.txn_id for t in stream_order(history) if not t.is_initial]
        assert ids == [1, 2, 3]


# ----------------------------------------------------------------------
# Checkpoint / restore round trips
# ----------------------------------------------------------------------
class TestCheckpointRestore:
    """checkpoint() -> restore() must be invisible to the stream.

    At EVERY ingestion boundary of a randomized stream, snapshotting the
    session (through a JSON round trip — the snapshot must be JSON-safe)
    and resuming in a fresh process-equivalent object yields the same
    per-transaction violation reports and a byte-identical final verdict,
    across SER, SI, and SSER, with and without a bounded window.
    """

    @staticmethod
    def _baseline(level, stream, window=None):
        session = CheckerSession(level, window=window)
        reports = [[v.format() for v in session.ingest(t)] for t in stream]
        return reports, session.result().format()

    @staticmethod
    def _cut_and_resume(level, stream, cut, window=None):
        import json

        head = CheckerSession(level, window=window)
        reports = [[v.format() for v in head.ingest(t)] for t in stream[:cut]]
        state = json.loads(json.dumps(head.checkpoint()))
        del head
        resumed = CheckerSession.restore(state)
        reports += [[v.format() for v in resumed.ingest(t)] for t in stream[cut:]]
        return reports, resumed.result().format()

    @SLOW
    @given(history=mt_histories())
    def test_round_trip_at_every_boundary_matches_uninterrupted(self, history):
        stream = list(stream_order(history))
        for level in (SER, SI, SSER):
            base_reports, base_format = self._baseline(level, stream)
            for cut in range(len(stream) + 1):
                reports, fmt = self._cut_and_resume(level, stream, cut)
                assert reports == base_reports, (level, cut)
                assert fmt == base_format, (level, cut)

    @pytest.mark.parametrize("window", [None, 8])
    def test_faulty_generated_stream_round_trips_everywhere(self, window):
        history = generated_history(23, engine="rc", txns=12)
        stream = list(stream_order(history))
        for level in (SER, SI, SSER):
            base_reports, base_format = self._baseline(level, stream, window)
            for cut in range(len(stream) + 1):
                reports, fmt = self._cut_and_resume(level, stream, cut, window)
                assert reports == base_reports, (level, cut, window)
                assert fmt == base_format, (level, cut, window)

    def test_restore_rejects_unknown_snapshot_format(self):
        with pytest.raises(ValueError):
            CheckerSession.restore({"format": "not-a-checker-state"})
        with pytest.raises(ValueError):
            IncrementalChecker.restore({})

    def test_restored_session_keeps_streaming(self):
        session = CheckerSession(SER, initial_keys=["x"])
        session.ingest(Transaction(1, [read("x", 0), write("x", 1)]))
        resumed = CheckerSession.restore(session.checkpoint())
        assert resumed.ingest(Transaction(2, [read("x", 1), write("x", 2)])) == []
        # A second-generation snapshot works too (checkpoint of a restore).
        again = CheckerSession.restore(resumed.checkpoint())
        assert again.ingest(Transaction(3, [read("x", 2), write("x", 3)])) == []
        assert again.result().satisfied
        assert again.result().num_transactions == 3
