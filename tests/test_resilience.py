"""Tests for the resilience layer (ISSUE 9).

Covers the four pillars:

* **Failpoints** — grammar, deterministic probabilistic firing, env
  export/re-arm, the zero-overhead disarmed fast path, and the injected
  actions themselves (raise / truncate-then-raise / kill).
* **Policies** — RetryPolicy backoff math and ``run()`` semantics,
  Deadline arithmetic, CircuitBreaker state machine — all on fake
  clocks, so the suite runs in microseconds.
* **Fault recovery equivalence** — a SIGKILLed pool worker, a hung
  dispatch (``task_timeout``), and an injected SQLite commit failure all
  recover to verdicts identical to the undisturbed run.
* **Durability under injected faults** — the failpoint matrix
  (site x action x raw/gzip) pins the epoch-log contract: recovery
  never loses a *sealed* epoch, and resuming after the fault reaches
  the uninterrupted verdict.  The supervised watch service restarts
  through injected faults to the same verdict.
"""

import os
import signal
import sys
import threading
import time

import pytest

from test_epochlog import build_log, make_history, stream_format
from test_parallel import composite_history  # noqa: F401  (re-export for helpers)
from test_scaleout import rt_cycle_history

from repro.adapters.base import (
    AdapterCapabilities,
    AdapterSession,
    DatabaseAdapter,
)
from repro.adapters.collector import Collector
from repro.adapters.sqlite import SQLiteAdapter
from repro.cli import main as repro_main
from repro.core.checker import MTChecker
from repro.core.incremental import stream_order
from repro.core.model import TransactionStatus
from repro.core.result import IsolationLevel
from repro.history.epochlog import EpochLog, EpochLogWriter
from repro.parallel import check_parallel
from repro.parallel import executor as executor_module
from repro.parallel.executor import shutdown_pool
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FAILPOINT_SITES,
    FailpointError,
    RetryPolicy,
    Supervisor,
)
from repro.resilience import failpoints
from repro.workloads.mt_generator import MTWorkloadGenerator
from repro.workloads.spec import TransactionSpec, Workload, planned_read, planned_write

SER = IsolationLevel.SERIALIZABILITY
SSER = IsolationLevel.STRICT_SERIALIZABILITY


@pytest.fixture(autouse=True)
def _disarm_failpoints():
    """Every test starts and ends with no plan armed and nothing exported."""
    failpoints.deactivate()
    os.environ.pop(failpoints.ENV_VAR, None)
    os.environ.pop(failpoints.ENV_SEED_VAR, None)
    yield
    failpoints.deactivate()
    os.environ.pop(failpoints.ENV_VAR, None)
    os.environ.pop(failpoints.ENV_SEED_VAR, None)


# ----------------------------------------------------------------------
# Failpoints: grammar, determinism, export
# ----------------------------------------------------------------------
class TestFailpointGrammar:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint site"):
            failpoints.configure("no.such.site=raise")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint action"):
            failpoints.configure("sqlite.commit=explode")

    def test_malformed_clause_rejected(self):
        with pytest.raises(ValueError, match="not SITE=RULE"):
            failpoints.configure("sqlite.commit")

    def test_probability_range_enforced(self):
        with pytest.raises(ValueError, match="not in"):
            failpoints.configure("sqlite.commit=raise@1.5")

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            failpoints.configure("sqlite.commit=0*raise")

    def test_count_limits_firing(self):
        with failpoints.scoped("sqlite.commit=2*raise"):
            for _ in range(2):
                with pytest.raises(FailpointError):
                    failpoints.fail_point("sqlite.commit")
            failpoints.fail_point("sqlite.commit")  # disarmed after 2
            assert failpoints.fired("sqlite.commit") == 2

    def test_multi_clause_spec(self):
        spec = "sqlite.commit=1*noop; collector.txn.attempt=noop"
        with failpoints.scoped(spec):
            assert failpoints.active_spec() == spec
            failpoints.fail_point("sqlite.commit")
            failpoints.fail_point("collector.txn.attempt")
            failpoints.fail_point("collector.txn.attempt")
            assert failpoints.fired("sqlite.commit") == 1
            assert failpoints.fired("collector.txn.attempt") == 2

    def test_raise_message_argument(self):
        with failpoints.scoped("sqlite.commit=raise(boom)"):
            with pytest.raises(FailpointError, match="boom"):
                failpoints.fail_point("sqlite.commit")

    def test_injected_error_is_an_oserror(self):
        # Injected faults must travel real IO recovery paths.
        assert issubclass(FailpointError, OSError)

    def _noop_pattern(self, seed, shots=40):
        pattern = []
        with failpoints.scoped("collector.txn.attempt=noop@0.5", seed=seed):
            before = 0
            for _ in range(shots):
                failpoints.fail_point("collector.txn.attempt")
                after = failpoints.fired("collector.txn.attempt")
                pattern.append(after > before)
                before = after
        return pattern

    def test_probabilistic_rules_replay_deterministically(self):
        assert self._noop_pattern(seed=7) == self._noop_pattern(seed=7)
        assert self._noop_pattern(seed=7) != self._noop_pattern(seed=8)
        assert any(self._noop_pattern(seed=7))  # p=0.5 over 40 shots fires

    def test_export_publishes_and_deactivate_retracts(self):
        failpoints.configure("sqlite.commit=1*raise", seed=3, export=True)
        assert os.environ[failpoints.ENV_VAR] == "sqlite.commit=1*raise"
        assert os.environ[failpoints.ENV_SEED_VAR] == "3"
        with pytest.raises(FailpointError):
            failpoints.fail_point("sqlite.commit")
        assert failpoints.fired("sqlite.commit") == 1
        # Re-arming from the env (what pool-worker initializers do) gets
        # a fresh plan with fresh fire counters.
        assert failpoints.activate_from_env()
        assert failpoints.fired("sqlite.commit") == 0
        failpoints.deactivate()
        assert failpoints.ENV_VAR not in os.environ
        assert failpoints.ENV_SEED_VAR not in os.environ
        assert not failpoints.activate_from_env()

    def test_every_registered_site_is_instrumented(self):
        """Each catalogued site appears in a real fail_point() call."""
        import repro

        src_root = os.path.dirname(repro.__file__)
        corpus = ""
        for dirpath, _dirs, files in os.walk(src_root):
            for name in files:
                if name.endswith(".py"):
                    with open(os.path.join(dirpath, name), encoding="utf-8") as fh:
                        corpus += fh.read()
        for site in FAILPOINT_SITES:
            assert f'fail_point("{site}"' in corpus, f"site {site} not wired"


class TestFailpointActions:
    def test_truncate_tears_file_then_raises(self, tmp_path):
        victim = tmp_path / "segment.bin"
        victim.write_bytes(b"x" * 100)
        with failpoints.scoped("columnar.segment.write=truncate(30)"):
            with pytest.raises(FailpointError, match="torn write"):
                failpoints.fail_point("columnar.segment.write", path=victim)
        assert victim.stat().st_size == 70

    def test_truncate_never_empties_below_zero(self, tmp_path):
        victim = tmp_path / "tiny.bin"
        victim.write_bytes(b"ab")
        with failpoints.scoped("columnar.segment.write=truncate(99)"):
            with pytest.raises(FailpointError):
                failpoints.fail_point("columnar.segment.write", path=victim)
        assert victim.stat().st_size == 0

    def test_truncate_without_file_still_raises(self, tmp_path):
        with failpoints.scoped("columnar.segment.write=truncate(5)"):
            with pytest.raises(FailpointError):
                failpoints.fail_point(
                    "columnar.segment.write", path=tmp_path / "missing"
                )

    def test_kill_exits_the_process(self):
        import subprocess

        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.resilience import failpoints\n"
                "failpoints.configure('sqlite.commit=kill')\n"
                "failpoints.fail_point('sqlite.commit')\n"
                "print('survived')",
            ],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 137
        assert "survived" not in proc.stdout

    def test_disarmed_fail_point_is_allocation_free(self):
        assert failpoints.active_spec() is None
        blocks = getattr(sys, "getallocatedblocks", None)
        if blocks is None:
            pytest.skip("sys.getallocatedblocks unavailable")

        def hot_loop():
            for _ in range(1000):
                failpoints.fail_point("epochlog.seal.fsync")
                failpoints.fail_point("columnar.segment.load")

        hot_loop()  # warm caches (bytecode, method lookups)
        before = blocks()
        hot_loop()
        delta = blocks() - before
        assert delta < 50, f"disarmed failpoints allocated {delta} blocks"


# ----------------------------------------------------------------------
# Policies: RetryPolicy / Deadline / CircuitBreaker
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delay_count_is_attempts_minus_one(self):
        policy = RetryPolicy(max_attempts=5, seed=0)
        assert len(list(policy.delays())) == 4
        assert list(RetryPolicy(max_attempts=1, seed=0).delays()) == []

    def test_deterministic_under_seed(self):
        policy = RetryPolicy(max_attempts=6, seed=None)
        assert list(policy.delays(seed=42)) == list(policy.delays(seed=42))
        assert list(policy.delays(seed=42)) != list(policy.delays(seed=43))

    def test_no_jitter_is_pure_exponential(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, max_delay=0.5, multiplier=2.0,
            jitter="none",
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5]

    def test_decorrelated_jitter_respects_bounds(self):
        policy = RetryPolicy(
            max_attempts=50, base_delay=0.01, max_delay=0.3, seed=1
        )
        delays = list(policy.delays())
        assert all(0.01 <= d <= 0.3 for d in delays)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter="lumpy")

    def test_run_retries_then_succeeds(self):
        sleeps = []
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "done"

        policy = RetryPolicy(max_attempts=4, jitter="none", base_delay=0.1)
        result = policy.run(flaky, retry_on=OSError, sleep=sleeps.append)
        assert result == "done"
        assert len(attempts) == 3
        assert sleeps == [0.1, 0.2]

    def test_run_exhausts_budget_and_raises_last_error(self):
        policy = RetryPolicy(max_attempts=3, jitter="none", base_delay=0.0)
        attempts = []

        def always_fails():
            attempts.append(1)
            raise OSError("permanent")

        with pytest.raises(OSError, match="permanent"):
            policy.run(always_fails, sleep=lambda _d: None)
        assert len(attempts) == 3

    def test_run_should_retry_veto_propagates_immediately(self):
        policy = RetryPolicy(max_attempts=5, jitter="none")
        attempts = []

        def fails():
            attempts.append(1)
            raise OSError("not worth retrying")

        with pytest.raises(OSError):
            policy.run(
                fails, should_retry=lambda _exc: False, sleep=lambda _d: None
            )
        assert len(attempts) == 1

    def test_run_stops_at_deadline(self):
        clock = [0.0]
        deadline = Deadline(0.15, clock=lambda: clock[0])
        policy = RetryPolicy(max_attempts=10, jitter="none", base_delay=0.1)
        attempts = []

        def fails():
            attempts.append(1)
            clock[0] += 0.05
            raise OSError("slow")

        with pytest.raises(OSError):
            policy.run(fails, deadline=deadline, sleep=lambda _d: None)
        # 0.1s backoff no longer fits the 0.15s budget after ~2 attempts.
        assert len(attempts) <= 3


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = [0.0]
        deadline = Deadline(10.0, clock=lambda: clock[0])
        assert deadline.remaining() == 10.0
        clock[0] = 4.0
        assert deadline.remaining() == 6.0
        assert not deadline.expired
        clock[0] = 11.0
        assert deadline.remaining() == 0.0
        assert deadline.expired
        with pytest.raises(DeadlineExceeded, match="ingest"):
            deadline.check("ingest")

    def test_bound_clips_timeouts(self):
        clock = [0.0]
        deadline = Deadline(1.0, clock=lambda: clock[0])
        assert deadline.bound(None) == 1.0
        assert deadline.bound(0.25) == 0.25
        clock[0] = 0.9
        assert deadline.bound(0.25) == pytest.approx(0.1)

    def test_requires_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestCircuitBreaker:
    def _breaker(self, clock):
        return CircuitBreaker(
            failure_threshold=3, reset_after=30.0, clock=lambda: clock[0]
        )

    def test_opens_after_threshold(self):
        clock = [0.0]
        breaker = self._breaker(clock)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_half_open_probe_after_reset_window(self):
        clock = [0.0]
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock[0] = 31.0
        assert breaker.allow()  # the single probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # no second concurrent probe
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        clock = [0.0]
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock[0] = 31.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock[0] = 60.0
        assert not breaker.allow()  # re-opened at t=31: window restarts
        clock[0] = 62.0
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        clock = [0.0]
        breaker = self._breaker(clock)
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_reset_force_closes(self):
        clock = [0.0]
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()


class TestSupervisor:
    def test_restarts_bounded_by_budget(self):
        sleeps = []
        supervisor = Supervisor("svc", max_restarts=2, sleep=sleeps.append)
        assert supervisor.fault(OSError("one"))
        assert supervisor.fault(OSError("two"))
        assert not supervisor.fault(OSError("three"))
        assert supervisor.restarts == 2
        assert len(sleeps) == 2
        assert str(supervisor.last_fault) == "three"

    def test_stop_request_wins_over_restart(self):
        supervisor = Supervisor("svc", max_restarts=5, sleep=lambda _d: None)
        supervisor.request_stop()
        assert not supervisor.fault(OSError("fault"))

    def test_degraded_tracks_breaker(self):
        supervisor = Supervisor("svc", max_restarts=10, sleep=lambda _d: None)
        assert not supervisor.degraded
        for _ in range(3):
            supervisor.fault(OSError("x"))
        assert supervisor.degraded
        supervisor.succeed()
        assert not supervisor.degraded

    def test_run_retries_body_until_success(self):
        supervisor = Supervisor("svc", max_restarts=3, sleep=lambda _d: None)
        calls = []

        def body(sup):
            calls.append(sup.restarts)
            if len(calls) < 3:
                raise OSError("flaky")
            return "verdict"

        assert supervisor.run(body) == "verdict"
        assert calls == [0, 1, 2]

    def test_run_surfaces_fault_when_budget_spent(self):
        supervisor = Supervisor("svc", max_restarts=1, sleep=lambda _d: None)

        def body(_sup):
            raise OSError("hard down")

        with pytest.raises(OSError, match="hard down"):
            supervisor.run(body)
        assert supervisor.restarts == 1

    def test_signal_handlers_install_and_restore(self):
        supervisor = Supervisor("svc")
        previous = signal.getsignal(signal.SIGTERM)
        supervisor.install_signal_handlers()
        try:
            assert signal.getsignal(signal.SIGTERM) == supervisor.request_stop
            os.kill(os.getpid(), signal.SIGTERM)
            assert supervisor.stop_requested
        finally:
            supervisor.restore_signal_handlers()
        assert signal.getsignal(signal.SIGTERM) == previous


# ----------------------------------------------------------------------
# Failpoint matrix: the epoch log never loses a sealed epoch
# ----------------------------------------------------------------------
WRITE_PATH_SITES = [
    "epochlog.seal.tmp_write",
    "epochlog.seal.fsync",
    "epochlog.seal.rename",
    "epochlog.manifest.commit",
    "columnar.segment.write",
]


@pytest.mark.parametrize("compress", [False, True], ids=["raw", "gzip"])
@pytest.mark.parametrize("action", ["raise", "truncate(9)"])
@pytest.mark.parametrize("site", WRITE_PATH_SITES)
class TestFailpointMatrix:
    def test_injected_fault_never_loses_a_sealed_epoch(
        self, tmp_path, site, action, compress
    ):
        history = make_history(5)
        clean = build_log(
            tmp_path / "clean.epochs", history, compress=compress
        )
        clean_verdict = stream_format(clean, SER)
        txns = list(stream_order(history))

        fault_dir = tmp_path / "fault.epochs"
        # The second seal faults (1*skip via count would need a skip rule;
        # instead let the very first firing hit, which is the hardest
        # case for tmp-file orphans), then the rule disarms.
        with failpoints.scoped(f"{site}=1*{action}"):
            try:
                with EpochLogWriter(
                    fault_dir, epoch_transactions=10, compress=compress
                ) as writer:
                    for txn in txns:
                        writer.append(txn)
            except OSError:
                pass  # the injected fault, surfacing exactly like real IO
            assert failpoints.fired(site) == 1

        # Recovery accepts only intact sealed epochs — a clean prefix of
        # the uninterrupted log — and sweeps any staged temp file.
        recovered = EpochLog.open(fault_dir)
        assert len(recovered) <= len(clean)
        assert [e.transactions for e in recovered.epochs] == [
            e.transactions for e in clean.epochs[: len(recovered)]
        ]
        assert not list(fault_dir.glob(".*.tmp"))

        # Resume from the durable prefix: append what recovery reports as
        # missing.  No sealed transaction is lost, none is duplicated, and
        # the stream verdict matches the uninterrupted run.
        done = sum(e.transactions for e in recovered.epochs)
        with EpochLogWriter(
            fault_dir, epoch_transactions=10, compress=compress
        ) as writer:
            for txn in txns[done:]:
                writer.append(txn)
        resumed = EpochLog.open(fault_dir)
        assert sum(e.transactions for e in resumed.epochs) == len(txns)
        assert stream_format(resumed, SER) == clean_verdict


# ----------------------------------------------------------------------
# Executor: killed workers and hung dispatches recover to serial verdicts
# ----------------------------------------------------------------------
class TestExecutorRecovery:
    def test_sigkilled_worker_recovers_to_serial_verdict(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_cpu_count", lambda: 2)
        monkeypatch.setattr(executor_module, "_MIN_POOL_TXNS", 0)
        history = rt_cycle_history(6)
        serial = check_parallel(history, SSER, workers=1).format()
        shutdown_pool()
        # Worker-only delay rule (exported, parent unarmed): keeps shard
        # tasks in flight long enough to SIGKILL a worker mid-dispatch.
        monkeypatch.setenv(
            failpoints.ENV_VAR, "executor.shard.task=delay(0.15)"
        )
        outcome = {}

        def run():
            outcome["result"] = check_parallel(history, SSER, workers=2)

        thread = threading.Thread(target=run)
        thread.start()
        victim = None
        deadline = time.monotonic() + 15.0
        while victim is None and time.monotonic() < deadline:
            pool = executor_module._POOL
            if pool is not None and pool._processes:
                victim = next(iter(pool._processes))
            time.sleep(0.005)
        try:
            if victim is not None:
                try:
                    os.kill(victim, signal.SIGKILL)
                except ProcessLookupError:
                    pass  # worker already finished: degenerate but valid
            thread.join(120)
            assert not thread.is_alive()
            assert outcome["result"].format() == serial
        finally:
            shutdown_pool()

    def test_worker_killed_by_failpoint_falls_back_inline(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_cpu_count", lambda: 2)
        monkeypatch.setattr(executor_module, "_MIN_POOL_TXNS", 0)
        history = rt_cycle_history(2)
        serial = check_parallel(history, SSER, workers=1).format()
        shutdown_pool()
        # Every worker process dies on its first shard task (fresh fire
        # counter per worker via the pool initializer); the parent stays
        # unarmed, so the inline completion path is clean.
        monkeypatch.setenv(failpoints.ENV_VAR, "executor.shard.task=1*kill")
        try:
            result = check_parallel(history, SSER, workers=2)
            assert result.format() == serial
        finally:
            shutdown_pool()

    def test_task_timeout_recovers_inline(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_cpu_count", lambda: 2)
        monkeypatch.setattr(executor_module, "_MIN_POOL_TXNS", 0)
        history = rt_cycle_history(2)
        serial = check_parallel(history, SSER, workers=1).format()
        shutdown_pool()
        monkeypatch.setenv(
            failpoints.ENV_VAR, "executor.shard.task=delay(1.0)"
        )
        try:
            started = time.monotonic()
            result = check_parallel(
                history, SSER, workers=2, task_timeout=0.1
            )
            assert result.format() == serial
            # Bounded: a few 0.1s timeouts plus inline work, never the
            # unbounded hang the timeout exists to prevent.
            assert time.monotonic() - started < 30.0
        finally:
            shutdown_pool()


# ----------------------------------------------------------------------
# Collector: injected commit failures and hung adapters
# ----------------------------------------------------------------------
class _HangingSession(AdapterSession):
    """Commits block on an event — a wedged server connection."""

    def __init__(self, release, hang):
        self._release = release
        self._hang = hang

    def begin(self):
        pass

    def read(self, key):
        return 0

    def write(self, key, value):
        pass

    def commit(self):
        if self._hang:
            self._release.wait(timeout=30.0)

    def abort(self):
        pass

    def close(self):
        pass


class _HangingAdapter(DatabaseAdapter):
    """Session 0 hangs at its first commit; other sessions are healthy."""

    def __init__(self, release):
        self._release = release

    def capabilities(self):
        return AdapterCapabilities(
            name="hanging", isolation_levels=("SER",), real_time=True
        )

    def session(self, session_id):
        return _HangingSession(self._release, hang=session_id == 0)

    def setup(self, keys, initial_value=0):
        pass

    def teardown(self):
        pass


class TestCollectorResilience:
    def _workload(self, sessions=2, txns=3):
        specs = [
            [
                TransactionSpec([planned_read("k"), planned_write("k")])
                for _ in range(txns)
            ]
            for _ in range(sessions)
        ]
        return Workload(sessions=specs, keys=["k"])

    def test_hung_adapter_surfaces_unknown_and_completes(self):
        release = threading.Event()
        try:
            collector = Collector(
                _HangingAdapter(release), txn_deadline=0.2, setup_keys=False
            )
            started = time.monotonic()
            result = collector.collect(self._workload())
            elapsed = time.monotonic() - started
        finally:
            release.set()  # unblock the abandoned daemon thread
        assert elapsed < 10.0  # the run completed; it did not block forever
        assert result.unknown == 1
        statuses = [
            txn.status
            for session in result.history.sessions
            for txn in session.transactions
        ]
        assert statuses.count(TransactionStatus.UNKNOWN) == 1
        # UNKNOWN outcomes are conservative: the checker runs and reasons
        # only about committed transactions, skipping the abandoned one.
        # (The fake adapter is not a coherent engine, so the *verdict* is
        # meaningless here — only the accounting is under test.)
        verdict = MTChecker().verify(result.history, SER)
        committed = statuses.count(TransactionStatus.COMMITTED)
        assert verdict.num_transactions == committed

    def test_unknown_transactions_never_retried_or_double_recorded(self):
        release = threading.Event()
        try:
            collector = Collector(
                _HangingAdapter(release),
                txn_deadline=0.2,
                setup_keys=False,
                max_retries=5,
            )
            result = collector.collect(self._workload(sessions=1, txns=4))
            # Give the abandoned thread a chance to misbehave before the
            # assertions (it must go silent instead).
            release.set()
            time.sleep(0.2)
        finally:
            release.set()
        txns = result.history.sessions[0].transactions
        assert [t.status for t in txns].count(TransactionStatus.UNKNOWN) == 1
        # The hung session recorded exactly one transaction (the UNKNOWN
        # one): nothing after it, no duplicate of it.
        assert len(txns) == 1

    def test_injected_sqlite_commit_failures_are_retried(self, tmp_path):
        workload = MTWorkloadGenerator(
            num_sessions=2, txns_per_session=6, num_objects=4, seed=3
        ).generate()
        adapter = SQLiteAdapter(str(tmp_path / "chaos.sqlite3"))
        with failpoints.scoped("sqlite.commit=3*raise"):
            with adapter:
                result = Collector(adapter, max_retries=4).collect(workload)
            assert failpoints.fired("sqlite.commit") == 3
        # Every injected abort was retried to a commit: nothing lost.
        assert result.stats.committed == workload.num_transactions
        assert result.stats.retries >= 3
        assert MTChecker().verify(result.history, SER).satisfied


# ----------------------------------------------------------------------
# Supervised watch service
# ----------------------------------------------------------------------
class TestSupervisedWatch:
    def _epochlog(self, tmp_path, seed=5):
        history = make_history(seed)
        directory = tmp_path / "watch.epochs"
        build_log(directory, history)
        return directory, stream_format(EpochLog.open(directory), SER)

    def test_supervised_watch_restarts_through_faults(self, tmp_path, capsys):
        directory, expected = self._epochlog(tmp_path)
        metrics = tmp_path / "watch.prom"
        with failpoints.scoped("columnar.segment.load=2*raise"):
            code = repro_main(
                [
                    "watch",
                    str(directory),
                    "--once",
                    "--supervise",
                    "--checkpoint-every",
                    "2",
                    "--max-restarts",
                    "4",
                    "--metrics-file",
                    str(metrics),
                ]
            )
            assert failpoints.fired("columnar.segment.load") == 2
        assert code == 0
        out = capsys.readouterr().out
        assert expected.splitlines()[0] in out
        assert out.count("restarting from the latest checkpoint") == 2
        text = metrics.read_text()
        assert 'repro_resilience_restarts_total{component="watch"} 2' in text
        assert (
            'repro_resilience_failpoints_fired_total'
            '{site="columnar.segment.load"} 2'
        ) in text

    def test_supervised_watch_gives_up_after_budget(self, tmp_path, capsys):
        directory, _expected = self._epochlog(tmp_path)
        with failpoints.scoped("columnar.segment.load=raise"):
            code = repro_main(
                [
                    "watch",
                    str(directory),
                    "--once",
                    "--supervise",
                    "--max-restarts",
                    "1",
                ]
            )
        assert code == 2
        assert "gave up after 1 restart(s)" in capsys.readouterr().out

    def test_supervise_rejected_for_jsonl_streams(self, tmp_path, capsys):
        stream = tmp_path / "history.jsonl"
        stream.write_text("")
        code = repro_main(["watch", str(stream), "--once", "--supervise"])
        assert code == 2
        assert "epoch log directories" in capsys.readouterr().out

    def test_unsupervised_watch_verdict_matches(self, tmp_path, capsys):
        # Control: the same log without faults, without --supervise.
        directory, expected = self._epochlog(tmp_path)
        code = repro_main(["watch", str(directory), "--once"])
        supervised_out = capsys.readouterr().out
        assert code == 0
        assert expected.splitlines()[0] in supervised_out
