"""Tests for the storage substrate: logical clock, MVCC store, lock manager."""

import pytest

from repro.storage import (
    LockConflict,
    LockManager,
    LogicalClock,
    SkewedClock,
    Version,
    VersionedStore,
)


class TestLogicalClock:
    def test_monotonic_ticks(self):
        clock = LogicalClock()
        values = [clock.tick() for _ in range(5)]
        assert values == sorted(values)
        assert clock.now() == values[-1]

    def test_custom_step_and_amount(self):
        clock = LogicalClock(start=10.0, step=2.0)
        assert clock.tick() == 12.0
        assert clock.tick(0.5) == 12.5

    def test_now_does_not_advance(self):
        clock = LogicalClock()
        assert clock.now() == clock.now()

    def test_skewed_clock_offsets_per_session(self):
        base = LogicalClock()
        skewed = SkewedClock(base, {1: 5.0})
        skewed.set_skew(2, -1.0)
        base.tick()
        assert skewed.now(1) == pytest.approx(6.0)
        assert skewed.now(2) == pytest.approx(0.0)
        assert skewed.now(0) == pytest.approx(1.0)

    def test_skewed_clock_tick_advances_base(self):
        base = LogicalClock()
        skewed = SkewedClock(base)
        assert skewed.tick(0) == pytest.approx(1.0)
        assert base.now() == pytest.approx(1.0)


class TestVersionedStore:
    def test_load_initial_and_latest(self):
        store = VersionedStore()
        store.load_initial(["x", "y"], value=0)
        assert store.latest("x") == Version(0, 0.0, -1)
        assert store.exists("y")
        assert not store.exists("z")
        assert store.keys() == ["x", "y"]

    def test_install_and_read_at_snapshot(self):
        store = VersionedStore()
        store.load_initial(["x"])
        store.install("x", 10, commit_ts=5.0, txn_id=1)
        store.install("x", 20, commit_ts=9.0, txn_id=2)
        assert store.read_at("x", 4.0).value == 0
        assert store.read_at("x", 5.0).value == 10
        assert store.read_at("x", 100.0).value == 20
        assert store.latest("x").value == 20

    def test_read_at_before_any_version(self):
        store = VersionedStore()
        store.install("x", 10, commit_ts=5.0, txn_id=1)
        assert store.read_at("x", 1.0) is None
        assert store.read_at("missing", 1.0) is None

    def test_versions_sorted_even_with_out_of_order_install(self):
        store = VersionedStore()
        store.install("x", 2, commit_ts=2.0, txn_id=2)
        store.install("x", 1, commit_ts=1.0, txn_id=1)
        assert [v.value for v in store.versions("x")] == [1, 2]

    def test_last_writer_after(self):
        store = VersionedStore()
        store.load_initial(["x"])
        store.install("x", 10, commit_ts=5.0, txn_id=1)
        assert store.last_writer_after("x", 0.0).value == 10
        assert store.last_writer_after("x", 5.0) is None
        assert store.last_writer_after("missing", 0.0) is None

    def test_len_counts_objects(self):
        store = VersionedStore()
        store.load_initial(["a", "b", "c"])
        assert len(store) == 3


class TestLockManager:
    def test_shared_locks_are_compatible(self):
        locks = LockManager()
        locks.acquire_shared("x", 1)
        locks.acquire_shared("x", 2)
        assert locks.locks_held(1) == 1
        assert locks.locks_held(2) == 1

    def test_exclusive_conflicts_with_shared(self):
        locks = LockManager()
        locks.acquire_shared("x", 1)
        with pytest.raises(LockConflict):
            locks.acquire_exclusive("x", 2)

    def test_exclusive_conflicts_with_exclusive(self):
        locks = LockManager()
        locks.acquire_exclusive("x", 1)
        with pytest.raises(LockConflict):
            locks.acquire_exclusive("x", 2)
        with pytest.raises(LockConflict):
            locks.acquire_shared("x", 2)

    def test_upgrade_own_shared_to_exclusive(self):
        locks = LockManager()
        locks.acquire_shared("x", 1)
        locks.acquire_exclusive("x", 1)
        assert locks.holds_exclusive("x", 1)

    def test_upgrade_blocked_by_other_reader(self):
        locks = LockManager()
        locks.acquire_shared("x", 1)
        locks.acquire_shared("x", 2)
        with pytest.raises(LockConflict):
            locks.acquire_exclusive("x", 1)

    def test_release_all_frees_everything(self):
        locks = LockManager()
        locks.acquire_exclusive("x", 1)
        locks.acquire_shared("y", 1)
        locks.release_all(1)
        assert locks.locks_held(1) == 0
        locks.acquire_exclusive("x", 2)  # no conflict anymore

    def test_reacquiring_own_exclusive_is_idempotent(self):
        locks = LockManager()
        locks.acquire_exclusive("x", 1)
        locks.acquire_exclusive("x", 1)
        assert locks.holds_exclusive("x", 1)

    def test_conflict_reports_holder(self):
        locks = LockManager()
        locks.acquire_exclusive("x", 7)
        with pytest.raises(LockConflict) as excinfo:
            locks.acquire_shared("x", 8)
        assert excinfo.value.holder == 7
        assert excinfo.value.key == "x"
