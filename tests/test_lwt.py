"""Tests for Algorithm 2 (VL-LWT): linearizability of LWT histories."""

import pytest

from repro.core.lwt import (
    LWTHistory,
    LWTKind,
    LWTOperation,
    check_linearizability,
    check_object_linearizability,
)
from repro.core.result import AnomalyKind


def insert(op_id, key, value, start, finish, session=0):
    return LWTOperation(op_id, LWTKind.INSERT, key, written=value, start_ts=start, finish_ts=finish, session_id=session)


def rw(op_id, key, expected, written, start, finish, session=0):
    return LWTOperation(
        op_id,
        LWTKind.READ_WRITE,
        key,
        expected=expected,
        written=written,
        start_ts=start,
        finish_ts=finish,
        session_id=session,
    )


class TestLWTOperation:
    def test_str_rendering(self):
        assert "INSERT" in str(insert(1, "x", 0, 0, 1))
        assert "R&W" in str(rw(2, "x", 0, 1, 1, 2))

    def test_history_helpers(self):
        history = LWTHistory([insert(1, "x", 0, 0, 1), rw(2, "y", 0, 1, 1, 2)])
        assert history.keys() == ["x", "y"]
        assert set(history.per_key()) == {"x", "y"}
        assert len(history) == 2


class TestSingleObjectAlgorithm:
    def test_sequential_chain_is_linearizable(self):
        ops = [insert(1, "x", 0, 0.0, 0.5)]
        for i in range(1, 5):
            ops.append(rw(i + 1, "x", i - 1, i, float(i), i + 0.5))
        assert check_object_linearizability(ops).satisfied

    def test_figure_4a_is_linearizable(self):
        ops = [
            rw(2, "x", 1, 2, 1.0, 4.0),
            rw(1, "x", 0, 1, 3.0, 6.0),
            rw(3, "x", 2, 3, 5.0, 8.0),
            insert(0, "x", 0, 0.0, 0.2),
        ]
        assert check_object_linearizability(ops).satisfied

    def test_figure_4b_is_not_linearizable(self):
        ops = [
            rw(2, "x", 1, 2, 1.0, 4.0),
            rw(1, "x", 0, 1, 6.0, 9.0),   # starts after O2 finished
            rw(3, "x", 2, 3, 5.0, 8.0),
            insert(0, "x", 0, 0.0, 0.2),
        ]
        result = check_object_linearizability(ops)
        assert not result.satisfied
        assert result.violation.kind is AnomalyKind.REAL_TIME_VIOLATION

    def test_missing_insert_is_malformed(self):
        result = check_object_linearizability([rw(1, "x", 0, 1, 0, 1)])
        assert not result.satisfied
        assert result.violation.kind is AnomalyKind.MALFORMED_HISTORY

    def test_two_inserts_are_malformed(self):
        ops = [insert(1, "x", 0, 0, 1), insert(2, "x", 5, 2, 3)]
        result = check_object_linearizability(ops)
        assert not result.satisfied
        assert result.violation.kind is AnomalyKind.MALFORMED_HISTORY

    def test_broken_chain_is_rejected(self):
        ops = [insert(1, "x", 0, 0, 1), rw(2, "x", 7, 8, 2, 3)]  # nobody wrote 7
        result = check_object_linearizability(ops)
        assert not result.satisfied
        assert result.violation.kind is AnomalyKind.NON_LINEARIZABLE

    def test_two_readers_of_the_same_value_are_rejected(self):
        ops = [
            insert(1, "x", 0, 0, 1),
            rw(2, "x", 0, 1, 2, 3),
            rw(3, "x", 0, 2, 2, 3),
        ]
        result = check_object_linearizability(ops)
        assert not result.satisfied
        assert result.violation.kind is AnomalyKind.LOST_UPDATE

    def test_overlapping_operations_are_linearizable(self):
        ops = [
            insert(1, "x", 0, 0.0, 10.0),
            rw(2, "x", 0, 1, 0.0, 10.0),
            rw(3, "x", 1, 2, 0.0, 10.0),
        ]
        assert check_object_linearizability(ops).satisfied

    def test_insert_only_history(self):
        assert check_object_linearizability([insert(1, "x", 0, 0, 1)]).satisfied


class TestMultiObjectLocality:
    def test_each_object_checked_independently(self):
        good = [insert(1, "x", 0, 0, 1), rw(2, "x", 0, 1, 2, 3)]
        bad = [insert(3, "y", 0, 0, 1), rw(4, "y", 9, 10, 2, 3)]
        history = LWTHistory(good + bad)
        result = check_linearizability(history)
        assert not result.satisfied
        assert all(v.key == "y" for v in result.violations)

    def test_all_objects_valid(self):
        history = LWTHistory(
            [
                insert(1, "x", 0, 0, 1),
                rw(2, "x", 0, 1, 2, 3),
                insert(3, "y", 100, 0, 1),
                rw(4, "y", 100, 101, 2, 3),
            ]
        )
        assert check_linearizability(history).satisfied

    def test_empty_history(self):
        assert check_linearizability(LWTHistory([])).satisfied


class TestGeneratorIntegration:
    def test_generated_valid_histories_pass(self):
        from repro.workloads import LWTHistoryGenerator

        for concurrent in (0.0, 0.5, 1.0):
            generator = LWTHistoryGenerator(
                num_sessions=6, txns_per_session=40, num_objects=3, concurrent_fraction=concurrent, seed=5
            )
            assert check_linearizability(generator.generate()).satisfied

    def test_generated_invalid_histories_fail(self):
        from repro.workloads import LWTHistoryGenerator

        generator = LWTHistoryGenerator(num_sessions=4, txns_per_session=30, num_objects=1, seed=9)
        assert not check_linearizability(generator.generate(valid=False)).satisfied
