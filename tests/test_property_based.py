"""Property-based tests (hypothesis) for the core invariants.

The central properties:

* **Cross-checker agreement** — on arbitrary mini-transaction histories
  (valid or not), the linear-time MTC checkers return exactly the same
  verdict as the solver-based baselines (Cobra for SER, PolySI for SI) and
  the search-based dbcop checker.  This exercises both soundness and
  completeness of Algorithm 1 far beyond the hand-written catalog.
* **Engine/checker consistency** — histories produced by a correct engine
  satisfy the engine's isolation level for arbitrary workload parameters.
* **Round-trips and order reductions** preserve verdicts and reachability.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import CobraChecker, DbcopChecker, PolySIChecker
from repro.core.checkers import check_ser, check_si
from repro.core.lwt import check_linearizability
from repro.core.mini import is_mt_history
from repro.core.model import (
    History,
    Transaction,
    interval_order_reduction,
    read,
    write,
)
from repro.db import Database
from repro.history import history_from_dict, history_to_dict
from repro.storage import VersionedStore
from repro.workloads import LWTHistoryGenerator, MTWorkloadGenerator, run_workload

KEYS = ("x", "y")

SLOW = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
FAST = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# Random mini-transaction histories
# ----------------------------------------------------------------------
@st.composite
def mt_histories(draw, max_txns=7):
    """Random MT histories with unique written values but arbitrary reads.

    Reads observe either the initial value or any value written somewhere in
    the history, so the strategy produces valid histories, lost updates,
    write skews, causality violations, stale reads, and the like.
    """
    num_txns = draw(st.integers(min_value=1, max_value=max_txns))
    num_sessions = draw(st.integers(min_value=1, max_value=3))

    # First pass: choose each transaction's shape (which keys it reads/writes).
    shapes = []
    value_counter = itertools.count(1)
    writes_per_key = {key: [0] for key in KEYS}  # values available to read
    for _ in range(num_txns):
        shape = draw(
            st.sampled_from(
                ["read_only_1", "read_only_2", "rmw_1", "rmw_2", "read_then_rmw"]
            )
        )
        keys = list(KEYS) if draw(st.booleans()) else list(reversed(KEYS))
        plan = []
        if shape == "read_only_1":
            plan = [("r", keys[0])]
        elif shape == "read_only_2":
            plan = [("r", keys[0]), ("r", keys[1])]
        elif shape == "rmw_1":
            plan = [("r", keys[0]), ("w", keys[0])]
        elif shape == "rmw_2":
            plan = [("r", keys[0]), ("r", keys[1]), ("w", keys[0]), ("w", keys[1])]
        else:
            plan = [("r", keys[0]), ("r", keys[1]), ("w", keys[1])]
        concrete = []
        for kind, key in plan:
            if kind == "w":
                value = next(value_counter)
                writes_per_key[key].append(value)
                concrete.append(("w", key, value))
            else:
                concrete.append(("r", key, None))
        shapes.append(concrete)

    # Second pass: pick the value every read observes.
    transactions = []
    for index, concrete in enumerate(shapes):
        ops = []
        for kind, key, value in concrete:
            if kind == "w":
                ops.append(write(key, value))
            else:
                observed = draw(st.sampled_from(writes_per_key[key]))
                ops.append(read(key, observed))
        transactions.append(Transaction(txn_id=index + 1, operations=ops))

    sessions = [[] for _ in range(num_sessions)]
    for index, txn in enumerate(transactions):
        sessions[index % num_sessions].append(txn)
    return History.from_transactions(sessions, initial_keys=list(KEYS))


class TestCrossCheckerAgreement:
    @SLOW
    @given(history=mt_histories())
    def test_mtc_ser_agrees_with_cobra(self, history):
        assert is_mt_history(history)
        assert check_ser(history).satisfied == CobraChecker().check(history).satisfied

    @SLOW
    @given(history=mt_histories())
    def test_mtc_ser_agrees_with_dbcop(self, history):
        assert check_ser(history).satisfied == DbcopChecker().check(history).satisfied

    @SLOW
    @given(history=mt_histories(max_txns=6))
    def test_mtc_si_agrees_with_polysi(self, history):
        assert check_si(history).satisfied == PolySIChecker().check(history).satisfied

    @SLOW
    @given(history=mt_histories())
    def test_ser_violation_implies_checked_by_transitive_variant_too(self, history):
        assert (
            check_ser(history, transitive_ww=True).satisfied
            == check_ser(history, transitive_ww=False).satisfied
        )

    @SLOW
    @given(history=mt_histories())
    def test_si_weaker_than_ser(self, history):
        # Any SI violation on an MT history must also be a SER violation.
        if not check_si(history).satisfied:
            assert not check_ser(history).satisfied


class TestEngineCheckerConsistency:
    @SLOW
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        sessions=st.integers(min_value=2, max_value=6),
        objects=st.integers(min_value=2, max_value=20),
    )
    def test_si_engine_histories_always_satisfy_si(self, seed, sessions, objects):
        generator = MTWorkloadGenerator(
            num_sessions=sessions, txns_per_session=10, num_objects=objects, seed=seed
        )
        workload = generator.generate()
        run = run_workload(Database("si", keys=workload.keys), workload, seed=seed)
        assert check_si(run.history).satisfied

    @SLOW
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        sessions=st.integers(min_value=2, max_value=6),
        objects=st.integers(min_value=2, max_value=20),
    )
    def test_serializable_engine_histories_always_satisfy_ser(self, seed, sessions, objects):
        generator = MTWorkloadGenerator(
            num_sessions=sessions, txns_per_session=10, num_objects=objects, seed=seed
        )
        workload = generator.generate()
        run = run_workload(Database("serializable", keys=workload.keys), workload, seed=seed)
        assert check_ser(run.history).satisfied

    @SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_lwt_generator_round_trip_verdicts(self, seed):
        generator = LWTHistoryGenerator(
            num_sessions=4, txns_per_session=15, num_objects=2, seed=seed
        )
        assert check_linearizability(generator.generate(valid=True)).satisfied
        assert not check_linearizability(generator.generate(valid=False)).satisfied


class TestStructuralProperties:
    @FAST
    @given(history=mt_histories())
    def test_serialization_round_trip_preserves_verdicts(self, history):
        restored = history_from_dict(history_to_dict(history))
        assert check_ser(restored).satisfied == check_ser(history).satisfied
        assert check_si(restored).satisfied == check_si(history).satisfied

    @FAST
    @given(
        intervals=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0.01, max_value=30, allow_nan=False),
            ),
            min_size=0,
            max_size=30,
        )
    )
    def test_interval_order_reduction_preserves_reachability(self, intervals):
        txns = [
            Transaction(i, [], start_ts=start, finish_ts=start + duration)
            for i, (start, duration) in enumerate(intervals)
        ]
        full = {
            (a.txn_id, b.txn_id)
            for a in txns
            for b in txns
            if a is not b and a.finish_ts < b.start_ts
        }
        reduced = {(a.txn_id, b.txn_id) for a, b in interval_order_reduction(txns)}
        assert reduced <= full
        # Closure of the reduction recovers the full relation.
        adjacency = {}
        for a, b in reduced:
            adjacency.setdefault(a, set()).add(b)
        closure = set()
        for node in {t.txn_id for t in txns}:
            stack = list(adjacency.get(node, ()))
            seen = set()
            while stack:
                nxt = stack.pop()
                if nxt in seen:
                    continue
                seen.add(nxt)
                closure.add((node, nxt))
                stack.extend(adjacency.get(nxt, ()))
        assert closure == full

    @FAST
    @given(
        commits=st.lists(
            st.tuples(st.integers(min_value=1, max_value=50), st.integers(min_value=0, max_value=1000)),
            min_size=1,
            max_size=30,
        ),
        probe=st.integers(min_value=0, max_value=60),
    )
    def test_versioned_store_read_at_returns_latest_visible(self, commits, probe):
        store = VersionedStore()
        for ts, value in commits:
            store.install("x", value, commit_ts=float(ts), txn_id=value)
        version = store.read_at("x", float(probe))
        visible = [(ts, value) for ts, value in commits if ts <= probe]
        if not visible:
            assert version is None
        else:
            expected_ts = max(ts for ts, _ in visible)
            assert version.commit_ts == float(expected_ts)

    @FAST
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        sessions=st.integers(min_value=1, max_value=5),
        txns=st.integers(min_value=1, max_value=15),
    )
    def test_mt_generator_always_emits_mini_transactions(self, seed, sessions, txns):
        generator = MTWorkloadGenerator(
            num_sessions=sessions, txns_per_session=txns, num_objects=5, seed=seed
        )
        workload = generator.generate()
        assert all(spec.is_mini() for spec in workload.all_specs())
