"""Tests for the Table I anomaly catalog."""

import pytest

from repro.core.anomalies import ANOMALY_NAMES, anomaly_catalog, anomaly_history
from repro.core.checkers import check_ser, check_si
from repro.core.intcheck import check_internal_consistency
from repro.core.mini import is_mt_history
from repro.core.result import AnomalyKind, IsolationLevel


class TestCatalogStructure:
    def test_catalog_has_all_14_anomalies(self):
        assert len(anomaly_catalog()) == 14
        assert len(ANOMALY_NAMES) == 14

    def test_catalog_names_match_kinds(self):
        for name, spec in anomaly_catalog().items():
            assert spec.kind.value == name

    def test_every_entry_has_description(self):
        assert all(spec.description for spec in anomaly_catalog().values())

    def test_anomaly_history_lookup(self):
        history = anomaly_history("WriteSkew")
        assert len(history) == 2

    def test_unknown_anomaly_raises(self):
        with pytest.raises(KeyError):
            anomaly_history("NotARealAnomaly")

    def test_histories_are_mt_histories(self):
        """Every Figure 5 anomaly is expressible as a valid MT history."""
        for name in ANOMALY_NAMES:
            assert is_mt_history(anomaly_history(name)), name

    def test_transactions_use_at_most_four_operations(self):
        """Four operations per MT are sufficient for all 14 anomalies."""
        for name in ANOMALY_NAMES:
            history = anomaly_history(name)
            for txn in history.transactions(include_initial=False):
                assert len(txn) <= 4, (name, txn)

    def test_violates_helper(self):
        catalog = anomaly_catalog()
        write_skew = catalog["WriteSkew"]
        assert write_skew.violates(IsolationLevel.SERIALIZABILITY)
        assert write_skew.violates(IsolationLevel.STRICT_SERIALIZABILITY)
        assert not write_skew.violates(IsolationLevel.SNAPSHOT_ISOLATION)
        assert not write_skew.violates(IsolationLevel.READ_COMMITTED)


class TestGroundTruth:
    def test_all_anomalies_violate_ser(self):
        for name, spec in anomaly_catalog().items():
            assert spec.violates_ser, name

    def test_only_write_skew_is_si_allowed(self):
        si_allowed = [name for name, spec in anomaly_catalog().items() if not spec.violates_si]
        assert si_allowed == ["WriteSkew"]

    def test_intra_transactional_split_matches_figure5(self):
        intra = {name for name, spec in anomaly_catalog().items() if spec.intra_transactional}
        assert intra == {
            "ThinAirRead",
            "AbortedRead",
            "FutureRead",
            "NotMyLastWrite",
            "NotMyOwnWrite",
            "IntermediateRead",
            "NonRepeatableReads",
        }


class TestDetection:
    @pytest.mark.parametrize("name", ANOMALY_NAMES)
    def test_checkers_reject_exactly_the_expected_levels(self, name):
        spec = anomaly_catalog()[name]
        history = spec.build()
        assert check_ser(history).satisfied != spec.violates_ser
        assert check_si(history).satisfied != spec.violates_si

    @pytest.mark.parametrize(
        "name",
        [
            "ThinAirRead",
            "AbortedRead",
            "FutureRead",
            "NotMyLastWrite",
            "NotMyOwnWrite",
            "IntermediateRead",
            "NonRepeatableReads",
        ],
    )
    def test_intra_transactional_anomalies_detected_by_int_pass(self, name):
        history = anomaly_history(name)
        kinds = {v.kind for v in check_internal_consistency(history)}
        assert AnomalyKind(name) in kinds

    def test_intra_anomaly_classification_is_exact(self):
        """The reported anomaly kind matches the catalog entry for INT anomalies."""
        for name, spec in anomaly_catalog().items():
            if not spec.intra_transactional:
                continue
            result = check_ser(spec.build())
            assert result.violation is not None
            assert result.violation.kind is spec.kind, name

    def test_lost_update_classified_under_si(self):
        result = check_si(anomaly_history("LostUpdate"))
        assert result.violation.kind is AnomalyKind.LOST_UPDATE

    def test_write_skew_classified_under_ser(self):
        result = check_ser(anomaly_history("WriteSkew"))
        assert result.violation.kind is AnomalyKind.WRITE_SKEW

    def test_long_fork_classified_under_ser(self):
        result = check_ser(anomaly_history("LongFork"))
        assert result.violation.kind is AnomalyKind.LONG_FORK
