"""Tests for the workload runner (history generation against the simulator)."""

from collections import Counter

import pytest

from repro.core.checkers import check_ser, check_si, check_sser
from repro.core.mini import is_mt_history
from repro.db import Database
from repro.workloads import GTWorkloadGenerator, MTWorkloadGenerator, WorkloadRunner, run_workload


def make_workload(**kwargs):
    defaults = dict(num_sessions=4, txns_per_session=30, num_objects=10, seed=2)
    defaults.update(kwargs)
    return MTWorkloadGenerator(**defaults).generate()


class TestRunWorkload:
    def test_produces_history_with_all_sessions(self):
        workload = make_workload()
        db = Database("si", keys=workload.keys)
        result = run_workload(db, workload, seed=1)
        assert len(result.history.sessions) == workload.num_sessions
        assert result.history.initial_transaction is not None

    def test_committed_count_matches_stats(self):
        workload = make_workload()
        db = Database("si", keys=workload.keys)
        result = run_workload(db, workload, seed=1)
        committed = result.history.committed_transactions(include_initial=False)
        assert len(committed) == result.stats.committed
        assert result.stats.committed + result.stats.aborted == db.stats.begun

    def test_mt_workload_yields_valid_mt_history(self):
        workload = make_workload()
        db = Database("si", keys=workload.keys)
        result = run_workload(db, workload, seed=1)
        assert is_mt_history(result.history)

    def test_unique_write_values_across_sessions(self):
        workload = make_workload(num_sessions=6, txns_per_session=40)
        db = Database("read-committed", keys=workload.keys)
        result = run_workload(db, workload, seed=3)
        written = Counter()
        for txn in result.history.transactions(include_initial=False):
            for op in txn.operations:
                if op.is_write:
                    written[(op.key, op.value)] += 1
        assert all(count == 1 for count in written.values())

    def test_transactions_have_timestamps(self):
        workload = make_workload()
        db = Database("si", keys=workload.keys)
        result = run_workload(db, workload, seed=1)
        for txn in result.history.committed_transactions(include_initial=False):
            assert txn.start_ts is not None and txn.finish_ts is not None
            assert txn.start_ts < txn.finish_ts

    def test_record_aborted_can_be_disabled(self):
        workload = make_workload(num_objects=3)
        db = Database("s2pl", keys=workload.keys)
        result = run_workload(db, workload, seed=1, record_aborted=False)
        statuses = {t.status.value for t in result.history.transactions(include_initial=False)}
        assert statuses == {"committed"}

    def test_retries_are_counted(self):
        workload = make_workload(num_objects=2, num_sessions=6, txns_per_session=40)
        db = Database("s2pl", keys=workload.keys)
        result = run_workload(db, workload, seed=1, max_retries=2)
        assert result.stats.retries > 0
        assert result.stats.aborted > 0

    def test_zero_retries_mean_no_retry_attempts(self):
        workload = make_workload(num_objects=2, num_sessions=6, txns_per_session=40)
        db = Database("s2pl", keys=workload.keys)
        result = run_workload(db, workload, seed=1, max_retries=0)
        assert result.stats.retries == 0

    def test_deterministic_interleaving_for_a_seed(self):
        workload = make_workload()
        run_a = run_workload(Database("si", keys=workload.keys), workload, seed=5)
        run_b = run_workload(Database("si", keys=workload.keys), workload, seed=5)
        ids_a = [t.txn_id for t in run_a.history.transactions(include_initial=False)]
        ids_b = [t.txn_id for t in run_b.history.transactions(include_initial=False)]
        assert ids_a == ids_b

    def test_stats_wall_time_and_logical_time_populated(self):
        workload = make_workload()
        db = Database("si", keys=workload.keys)
        result = run_workload(db, workload, seed=1)
        assert result.stats.wall_seconds > 0
        assert result.stats.logical_time > 0

    def test_runner_reusable_via_class_interface(self):
        workload = make_workload(num_sessions=2, txns_per_session=10)
        db = Database("si", keys=workload.keys)
        runner = WorkloadRunner(db, seed=4)
        result = runner.run(workload)
        assert result.stats.committed > 0


class TestGeneratedHistoriesSatisfyClaimedLevels:
    """The cornerstone integration property: a correct engine never produces
    a history that its claimed isolation level rejects (checker soundness +
    engine correctness together)."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_si_engine_histories_satisfy_si(self, seed):
        workload = make_workload(seed=seed, distribution="zipf")
        db = Database("si", keys=workload.keys)
        result = run_workload(db, workload, seed=seed + 10)
        assert check_si(result.history).satisfied

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_serializable_engine_histories_satisfy_ser(self, seed):
        workload = make_workload(seed=seed, distribution="zipf")
        db = Database("serializable", keys=workload.keys)
        result = run_workload(db, workload, seed=seed + 10)
        assert check_ser(result.history).satisfied

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_s2pl_engine_histories_satisfy_sser(self, seed):
        workload = make_workload(seed=seed, distribution="zipf")
        db = Database("s2pl", keys=workload.keys)
        result = run_workload(db, workload, seed=seed + 10)
        assert check_sser(result.history).satisfied

    def test_read_committed_engine_eventually_violates_strong_levels(self):
        workload = make_workload(num_sessions=6, txns_per_session=60, num_objects=5, distribution="zipf")
        db = Database("read-committed", keys=workload.keys)
        result = run_workload(db, workload, seed=11)
        assert not check_ser(result.history).satisfied

    def test_gt_workloads_abort_more_than_mt_workloads(self):
        mt = make_workload(num_sessions=6, txns_per_session=30, num_objects=15)
        gt = GTWorkloadGenerator(
            num_sessions=6, txns_per_session=30, num_objects=15, ops_per_txn=20, seed=2
        ).generate()
        mt_run = run_workload(Database("serializable", keys=mt.keys), mt, seed=3)
        gt_run = run_workload(Database("serializable", keys=gt.keys), gt, seed=3)
        assert gt_run.stats.abort_rate > mt_run.stats.abort_rate
