"""Tests for the database simulator and its isolation engines."""

import pytest

from repro.core.result import IsolationLevel
from repro.db import (
    Database,
    TransactionAborted,
    TransactionStateError,
    engine_for_level,
)


class TestDatabaseLifecycle:
    def test_begin_read_write_commit(self):
        db = Database("si", keys=["x"])
        txn = db.begin(session_id=3)
        assert db.read(txn, "x") == 0
        db.write(txn, "x", 42)
        commit_ts = db.commit(txn)
        assert commit_ts > txn.start_ts
        assert db.committed_value("x") == 42
        assert db.stats.committed == 1

    def test_read_own_write(self):
        db = Database("si", keys=["x"])
        txn = db.begin()
        db.write(txn, "x", 7)
        assert db.read(txn, "x") == 7

    def test_client_abort_discards_writes(self):
        db = Database("si", keys=["x"])
        txn = db.begin()
        db.write(txn, "x", 99)
        db.abort(txn)
        assert db.committed_value("x") == 0
        assert db.stats.aborted == 1

    def test_operations_after_commit_raise(self):
        db = Database("si", keys=["x"])
        txn = db.begin()
        db.commit(txn)
        with pytest.raises(TransactionStateError):
            db.read(txn, "x")
        with pytest.raises(TransactionStateError):
            db.write(txn, "x", 1)

    def test_abort_is_idempotent(self):
        db = Database("si", keys=["x"])
        txn = db.begin()
        db.abort(txn)
        db.abort(txn)
        assert db.stats.aborted == 1

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Database("totally-bogus")

    def test_engine_for_level_mapping(self):
        assert engine_for_level(IsolationLevel.SNAPSHOT_ISOLATION) == "si"
        assert engine_for_level(IsolationLevel.SERIALIZABILITY) == "serializable"
        assert engine_for_level(IsolationLevel.STRICT_SERIALIZABILITY) == "s2pl"

    def test_database_accepts_isolation_level_enum(self):
        db = Database(IsolationLevel.SERIALIZABILITY, keys=["x"])
        assert db.isolation_name == "serializable"

    def test_reading_missing_key_returns_none(self):
        db = Database("si")
        txn = db.begin()
        assert db.read(txn, "ghost") is None

    def test_stats_track_operations(self):
        db = Database("si", keys=["x"])
        txn = db.begin()
        db.read(txn, "x")
        db.write(txn, "x", 1)
        db.commit(txn)
        assert db.stats.reads == 1
        assert db.stats.writes == 1
        assert db.stats.abort_rate == 0.0


class TestSnapshotIsolationEngine:
    def test_reads_come_from_begin_snapshot(self):
        db = Database("si", keys=["x"])
        reader = db.begin()
        writer = db.begin()
        db.write(writer, "x", 5)
        db.commit(writer)
        # The reader's snapshot predates the writer's commit.
        assert db.read(reader, "x") == 0

    def test_first_committer_wins(self):
        db = Database("si", keys=["x"])
        t1 = db.begin()
        t2 = db.begin()
        db.read(t1, "x")
        db.read(t2, "x")
        db.write(t1, "x", 1)
        db.write(t2, "x", 2)
        db.commit(t1)
        with pytest.raises(TransactionAborted):
            db.commit(t2)
        assert db.committed_value("x") == 1

    def test_write_skew_is_allowed(self):
        db = Database("si", keys=["x", "y"])
        t1 = db.begin()
        t2 = db.begin()
        db.read(t1, "x"), db.read(t1, "y")
        db.read(t2, "x"), db.read(t2, "y")
        db.write(t1, "x", 1)
        db.write(t2, "y", 2)
        db.commit(t1)
        db.commit(t2)  # must not raise under SI

    def test_non_conflicting_writes_commit(self):
        db = Database("si", keys=["x", "y"])
        t1 = db.begin()
        t2 = db.begin()
        db.read(t1, "x")
        db.read(t2, "y")
        db.write(t1, "x", 1)
        db.write(t2, "y", 2)
        db.commit(t1)
        db.commit(t2)


class TestSerializableEngine:
    def test_stale_read_aborts_writer(self):
        db = Database("serializable", keys=["x", "y"])
        t1 = db.begin()
        db.read(t1, "x")
        # Someone else overwrites x while t1 is running.
        t2 = db.begin()
        db.read(t2, "x")
        db.write(t2, "x", 5)
        db.commit(t2)
        db.write(t1, "y", 6)
        with pytest.raises(TransactionAborted):
            db.commit(t1)

    def test_write_skew_is_prevented(self):
        db = Database("serializable", keys=["x", "y"])
        t1 = db.begin()
        t2 = db.begin()
        db.read(t1, "x"), db.read(t1, "y")
        db.read(t2, "x"), db.read(t2, "y")
        db.write(t1, "x", 1)
        db.write(t2, "y", 2)
        db.commit(t1)
        with pytest.raises(TransactionAborted):
            db.commit(t2)

    def test_read_only_transactions_commit(self):
        db = Database("serializable", keys=["x"])
        t1 = db.begin()
        db.read(t1, "x")
        writer = db.begin()
        db.read(writer, "x")
        db.write(writer, "x", 3)
        db.commit(writer)
        # A pure reader with a consistent snapshot still commits.
        db.commit(t1)


class TestStrictTwoPhaseLockingEngine:
    def test_conflicting_write_aborts_under_no_wait(self):
        db = Database("s2pl", keys=["x"])
        t1 = db.begin()
        t2 = db.begin()
        db.read(t1, "x")
        db.write(t1, "x", 1)
        with pytest.raises(TransactionAborted):
            db.write(t2, "x", 2)
        db.commit(t1)

    def test_shared_locks_allow_concurrent_reads(self):
        db = Database("s2pl", keys=["x"])
        t1 = db.begin()
        t2 = db.begin()
        assert db.read(t1, "x") == 0
        assert db.read(t2, "x") == 0
        db.commit(t1)
        db.commit(t2)

    def test_locks_released_after_commit(self):
        db = Database("s2pl", keys=["x"])
        t1 = db.begin()
        db.read(t1, "x")
        db.write(t1, "x", 1)
        db.commit(t1)
        t2 = db.begin()
        db.read(t2, "x")
        db.write(t2, "x", 2)
        db.commit(t2)
        assert db.committed_value("x") == 2

    def test_reads_observe_latest_committed_value(self):
        db = Database("s2pl", keys=["x"])
        t1 = db.begin()
        db.read(t1, "x")
        db.write(t1, "x", 9)
        db.commit(t1)
        t2 = db.begin()
        assert db.read(t2, "x") == 9


class TestReadCommittedEngine:
    def test_non_repeatable_reads_possible(self):
        db = Database("read-committed", keys=["x"])
        reader = db.begin()
        assert db.read(reader, "x") == 0
        writer = db.begin()
        db.read(writer, "x")
        db.write(writer, "x", 5)
        db.commit(writer)
        # Unlike SI, the second read sees the new value.
        assert db.read(reader, "x") == 5

    def test_lost_update_possible(self):
        db = Database("read-committed", keys=["x"])
        t1 = db.begin()
        t2 = db.begin()
        db.read(t1, "x"), db.read(t2, "x")
        db.write(t1, "x", 1)
        db.write(t2, "x", 2)
        db.commit(t1)
        db.commit(t2)  # no first-committer-wins: the update of t1 is lost
        assert db.committed_value("x") == 2
