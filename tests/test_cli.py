"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_check_defaults(self):
        args = build_parser().parse_args(["check", "history.json"])
        assert args.level == "ser"
        assert not args.strict_mt

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestGenerateAndCheck:
    def test_generate_then_check_valid_history(self, tmp_path, capsys):
        path = tmp_path / "history.json"
        code = main(
            [
                "generate",
                "--isolation",
                "si",
                "--sessions",
                "4",
                "--txns",
                "20",
                "--objects",
                "10",
                "--output",
                str(path),
            ]
        )
        assert code == 0
        assert path.exists()
        assert "committed" in capsys.readouterr().out

        code = main(["check", "--level", "si", str(path)])
        output = capsys.readouterr().out
        assert code == 0
        assert "SATISFIED" in output

    def test_generate_buggy_then_check_detects_violation(self, tmp_path, capsys):
        path = tmp_path / "buggy.json"
        code = main(
            [
                "generate",
                "--isolation",
                "si",
                "--fault",
                "lostupdate",
                "--fault-rate",
                "0.6",
                "--sessions",
                "6",
                "--txns",
                "40",
                "--objects",
                "6",
                "--distribution",
                "zipf",
                "--output",
                str(path),
            ]
        )
        assert code == 0
        assert "injected defects" in capsys.readouterr().out

        code = main(["check", "--level", "si", str(path)])
        output = capsys.readouterr().out
        assert code == 1
        assert "VIOLATED" in output

    def test_generated_file_is_valid_json(self, tmp_path):
        path = tmp_path / "history.json"
        main(["generate", "--sessions", "2", "--txns", "5", "--objects", "5", "--output", str(path)])
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-history-v1"


class TestAnomalyCommand:
    def test_list_all(self, capsys):
        assert main(["anomaly"]) == 0
        output = capsys.readouterr().out
        assert "LostUpdate" in output and "WriteSkew" in output

    def test_show_one(self, capsys):
        assert main(["anomaly", "LostUpdate"]) == 0
        output = capsys.readouterr().out
        assert "R(x,0)" in output

    def test_unknown_anomaly(self, capsys):
        assert main(["anomaly", "Bogus"]) == 2
        assert "unknown anomaly" in capsys.readouterr().out
