"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_check_defaults(self):
        args = build_parser().parse_args(["check", "history.json"])
        assert args.level == "ser"
        assert not args.strict_mt

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestGenerateAndCheck:
    def test_generate_then_check_valid_history(self, tmp_path, capsys):
        path = tmp_path / "history.json"
        code = main(
            [
                "generate",
                "--isolation",
                "si",
                "--sessions",
                "4",
                "--txns",
                "20",
                "--objects",
                "10",
                "--output",
                str(path),
            ]
        )
        assert code == 0
        assert path.exists()
        assert "committed" in capsys.readouterr().out

        code = main(["check", "--level", "si", str(path)])
        output = capsys.readouterr().out
        assert code == 0
        assert "SATISFIED" in output

    def test_generate_buggy_then_check_detects_violation(self, tmp_path, capsys):
        path = tmp_path / "buggy.json"
        code = main(
            [
                "generate",
                "--isolation",
                "si",
                "--fault",
                "lostupdate",
                "--fault-rate",
                "0.6",
                "--sessions",
                "6",
                "--txns",
                "40",
                "--objects",
                "6",
                "--distribution",
                "zipf",
                "--output",
                str(path),
            ]
        )
        assert code == 0
        assert "injected defects" in capsys.readouterr().out

        code = main(["check", "--level", "si", str(path)])
        output = capsys.readouterr().out
        assert code == 1
        assert "VIOLATED" in output

    def test_generated_file_is_valid_json(self, tmp_path):
        path = tmp_path / "history.json"
        main(["generate", "--sessions", "2", "--txns", "5", "--objects", "5", "--output", str(path)])
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-history-v1"


class TestStreamingCommands:
    def _generate(self, path, *extra):
        return main(
            [
                "generate",
                "--isolation",
                "si",
                "--sessions",
                "4",
                "--txns",
                "20",
                "--objects",
                "8",
                "--output",
                str(path),
                *extra,
            ]
        )

    def test_generate_jsonl_then_stream_check(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        assert self._generate(path) == 0
        first_line = path.read_text().splitlines()[0]
        assert json.loads(first_line)["format"] == "repro-history-stream-v1"

        code = main(["check", "--level", "si", str(path)])  # --stream implied
        output = capsys.readouterr().out
        assert code == 0
        assert "SATISFIED" in output

    def test_stream_check_reports_offending_transaction(self, tmp_path, capsys):
        path = tmp_path / "buggy.jsonl"
        assert (
            self._generate(path, "--fault", "lostupdate", "--fault-rate", "0.6") == 0
        )
        code = main(["check", "--stream", "--level", "si", str(path)])
        output = capsys.readouterr().out
        assert code == 1
        assert "[txn #" in output and "VIOLATED" in output

    def test_stream_check_works_on_plain_json_too(self, tmp_path, capsys):
        path = tmp_path / "history.json"
        assert self._generate(path) == 0
        code = main(["check", "--stream", "--level", "si", str(path)])
        assert code == 0
        assert "SATISFIED" in capsys.readouterr().out

    def test_watch_once_verifies_existing_stream(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        assert self._generate(path) == 0
        code = main(["watch", "--level", "si", "--once", str(path)])
        assert code == 0
        assert "SATISFIED" in capsys.readouterr().out

    def test_watch_once_flags_faulty_stream(self, tmp_path, capsys):
        path = tmp_path / "buggy.jsonl"
        assert (
            self._generate(path, "--fault", "lostupdate", "--fault-rate", "0.6") == 0
        )
        code = main(["watch", "--level", "si", "--once", "--window", "60", str(path)])
        output = capsys.readouterr().out
        assert code == 1
        assert "[txn #" in output

    def test_watch_rejects_non_stream_file(self, tmp_path, capsys):
        path = tmp_path / "history.json"
        assert self._generate(path) == 0
        code = main(["watch", "--once", str(path)])
        assert code == 2
        assert "not a" in capsys.readouterr().out

    def test_watch_tolerates_partially_written_last_line(self, tmp_path, capsys):
        # A producer caught mid-append leaves a line without its newline; the
        # watch must skip it with a warning instead of dying on a parse error.
        path = tmp_path / "history.jsonl"
        assert self._generate(path) == 0
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_bytes(path.read_bytes()[:-20])
        code = main(["watch", "--level", "si", "--once", str(truncated)])
        output = capsys.readouterr().out
        assert code == 0
        assert "incomplete trailing line" in output and "SATISFIED" in output

    def test_check_and_watch_agree_on_transaction_numbering(self, tmp_path, capsys):
        path = tmp_path / "buggy.jsonl"
        assert (
            self._generate(path, "--fault", "lostupdate", "--fault-rate", "0.6") == 0
        )
        main(["check", "--stream", "--level", "si", str(path)])
        check_tags = [l.split("]")[0] for l in capsys.readouterr().out.splitlines() if l.startswith("[txn #")]
        main(["watch", "--once", "--level", "si", str(path)])
        watch_tags = [l.split("]")[0] for l in capsys.readouterr().out.splitlines() if l.startswith("[txn #")]
        assert check_tags and check_tags == watch_tags


class TestSegmentAndConvertCommands:
    def _generate(self, path, *extra):
        return main(
            ["generate", "--isolation", "si", "--sessions", "4", "--txns", "20",
             "--objects", "8", "--output", str(path), *extra]
        )

    def test_generate_segment_then_check_batch_and_stream(self, tmp_path, capsys):
        path = tmp_path / "history.seg"
        assert self._generate(path) == 0
        assert path.read_bytes().startswith(b"REPROSEG1")
        assert main(["check", "--level", "si", str(path)]) == 0
        assert "SATISFIED" in capsys.readouterr().out
        assert main(["check", "--level", "si", "--stream", str(path)]) == 0
        assert "SATISFIED" in capsys.readouterr().out

    def test_check_segment_with_workers(self, tmp_path, capsys):
        path = tmp_path / "history.seg.gz"
        assert self._generate(path) == 0
        assert main(["check", "--level", "ser", "--workers", "2", str(path)]) == 0
        assert "SATISFIED" in capsys.readouterr().out

    def test_faulty_segment_is_detected(self, tmp_path, capsys):
        path = tmp_path / "buggy.seg"
        assert self._generate(path, "--fault", "lostupdate", "--fault-rate", "0.6") == 0
        assert main(["check", "--level", "si", str(path)]) == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_segment_stream_tags_match_jsonl_stream_tags(self, tmp_path, capsys):
        jsonl = tmp_path / "buggy.jsonl"
        assert self._generate(jsonl, "--fault", "lostupdate", "--fault-rate", "0.6") == 0
        capsys.readouterr()
        assert main(["convert", str(jsonl), str(tmp_path / "buggy.seg")]) == 0
        capsys.readouterr()
        main(["check", "--stream", "--level", "si", str(jsonl)])
        jsonl_tags = [
            l.split("]")[0] for l in capsys.readouterr().out.splitlines()
            if l.startswith("[txn #")
        ]
        main(["check", "--stream", "--level", "si", str(tmp_path / "buggy.seg")])
        seg_tags = [
            l.split("]")[0] for l in capsys.readouterr().out.splitlines()
            if l.startswith("[txn #")
        ]
        assert jsonl_tags and jsonl_tags == seg_tags

    def test_segment_stream_rejects_workers_before_loading(self, tmp_path, capsys):
        missing = tmp_path / "never-created.seg"
        missing.write_bytes(b"REPROSEG1\n{}")  # never parsed: flags fail first
        assert main(["check", "--stream", "--workers", "2", str(missing)]) == 2
        assert "--workers applies to batch" in capsys.readouterr().out

    def test_convert_round_trip_preserves_stream(self, tmp_path, capsys):
        jsonl = tmp_path / "h.jsonl"
        assert self._generate(jsonl) == 0
        assert main(["convert", str(jsonl), str(tmp_path / "h.seg")]) == 0
        assert main(["convert", str(tmp_path / "h.seg"), str(tmp_path / "back.jsonl.gz")]) == 0
        assert "converted" in capsys.readouterr().out

        from repro.history import iter_history_jsonl

        original = [(t.txn_id, t.status, str(t)) for t in iter_history_jsonl(jsonl)]
        restored = [
            (t.txn_id, t.status, str(t))
            for t in iter_history_jsonl(tmp_path / "back.jsonl.gz")
        ]
        assert original == restored

    def test_convert_to_json_document(self, tmp_path, capsys):
        seg = tmp_path / "h.seg"
        assert self._generate(seg) == 0
        doc = tmp_path / "h.json"
        assert main(["convert", str(seg), str(doc)]) == 0
        assert json.loads(doc.read_text())["format"] == "repro-history-v1"
        assert main(["check", "--level", "si", str(doc)]) == 0
        capsys.readouterr()

    def test_gzip_jsonl_checks_and_watches(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl.gz"
        assert self._generate(path) == 0
        assert main(["check", "--level", "si", str(path)]) == 0
        assert main(["watch", "--level", "si", "--once", str(path)]) == 0
        assert "SATISFIED" in capsys.readouterr().out

    def test_watch_rejects_segments(self, tmp_path, capsys):
        path = tmp_path / "history.seg"
        assert self._generate(path) == 0
        assert main(["watch", "--once", str(path)]) == 2
        assert "cannot be followed" in capsys.readouterr().out

    def test_collect_writes_segment(self, tmp_path, capsys):
        path = tmp_path / "collected.seg"
        code = main(
            ["collect", "--adapter", "simulated", "--isolation", "si", "--sessions", "2",
             "--txns", "10", "--objects", "6", "--output", str(path)]
        )
        assert code == 0
        assert main(["check", "--level", "ser", str(path)]) == 0
        capsys.readouterr()


class TestBenchIO:
    def test_bench_io_smoke_writes_json(self, tmp_path, capsys):
        code = main(["bench", "--suite", "io", "--smoke", "--output-dir", str(tmp_path)])
        assert code == 0
        payload = json.loads((tmp_path / "BENCH_io.json").read_text())
        assert payload["suite"] == "io"
        for row in payload["rows"]:
            assert row["verdicts_equal"] is True
            assert row["columnar_payload_bytes"] < row["legacy_payload_bytes"]
        capsys.readouterr()


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestCollectCommand:
    def test_collect_sqlite_check_ser(self, capsys):
        code = main(
            ["collect", "--adapter", "sqlite", "--sessions", "4", "--txns", "25",
             "--objects", "10", "--check", "SER"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "collected" in output and "SATISFIED" in output

    def test_collect_chaos_lost_write_reports_cycle(self, capsys):
        code = main(
            ["collect", "--adapter", "sqlite", "--sessions", "4", "--txns", "60",
             "--objects", "10", "--chaos", "lost-write", "--chaos-rate", "0.3",
             "--check", "ser"]
        )
        output = capsys.readouterr().out
        assert code == 1
        assert "injected chaos" in output
        assert "VIOLATED" in output and "cycle:" in output

    def test_collect_writes_jsonl_and_json(self, tmp_path, capsys):
        jsonl = tmp_path / "e2e.jsonl"
        code = main(
            ["collect", "--adapter", "simulated", "--isolation", "si", "--sessions", "2",
             "--txns", "10", "--objects", "6", "--output", str(jsonl)]
        )
        assert code == 0
        header = json.loads(jsonl.read_text().splitlines()[0])
        assert header["format"] == "repro-history-stream-v1"
        # The saved stream is checkable by the existing pipeline, workers included.
        assert main(["check", "--level", "ser", str(jsonl)]) == 0
        capsys.readouterr()

        doc = tmp_path / "e2e.json"
        assert main(
            ["collect", "--adapter", "sqlite", "--wal", "--mode", "deferred",
             "--sessions", "2", "--txns", "10", "--objects", "6", "--output", str(doc)]
        ) == 0
        assert json.loads(doc.read_text())["format"] == "repro-history-v1"

    def test_collect_gt_workload(self, capsys):
        code = main(
            ["collect", "--adapter", "sqlite", "--workload", "gt", "--sessions", "2",
             "--txns", "10", "--objects", "8", "--check", "ser"]
        )
        assert code == 0
        assert "SATISFIED" in capsys.readouterr().out

    def test_collect_check_with_workers(self, capsys):
        code = main(
            ["collect", "--adapter", "sqlite", "--sessions", "4", "--txns", "20",
             "--objects", "10", "--check", "ser", "--workers", "2"]
        )
        assert code == 0
        assert "SATISFIED" in capsys.readouterr().out

    def test_collect_requires_check_or_output(self, capsys):
        assert main(["collect", "--adapter", "sqlite"]) == 2
        assert "nothing to do" in capsys.readouterr().out

    def test_collect_rejects_unknown_level(self, capsys):
        assert main(["collect", "--check", "strongest"]) == 2
        assert "unknown isolation level" in capsys.readouterr().out

    def test_collect_rejects_workers_without_check(self, tmp_path, capsys):
        out = tmp_path / "h.json"
        assert main(["collect", "--workers", "4", "--output", str(out)]) == 2
        assert "--workers applies to verification" in capsys.readouterr().out


class TestBenchE2E:
    def test_bench_e2e_smoke_writes_json(self, tmp_path, capsys):
        code = main(
            ["bench", "--suite", "e2e", "--smoke", "--output-dir", str(tmp_path)]
        )
        assert code == 0
        payload = json.loads((tmp_path / "BENCH_e2e.json").read_text())
        assert payload["suite"] == "e2e"
        configs = {row["config"] for row in payload["rows"]}
        assert "sqlite-wal" in configs and "sqlite-chaos-lost-write" in configs
        assert all(row["collect_txn_per_s"] > 0 for row in payload["rows"])


class TestAnomalyCommand:
    def test_list_all(self, capsys):
        assert main(["anomaly"]) == 0
        output = capsys.readouterr().out
        assert "LostUpdate" in output and "WriteSkew" in output

    def test_show_one(self, capsys):
        assert main(["anomaly", "LostUpdate"]) == 0
        output = capsys.readouterr().out
        assert "R(x,0)" in output

    def test_unknown_anomaly(self, capsys):
        assert main(["anomaly", "Bogus"]) == 2
        assert "unknown anomaly" in capsys.readouterr().out


class TestWatchDisappearingStream:
    def _generate(self, path, *extra):
        return main(
            ["generate", "--isolation", "si", "--sessions", "4", "--txns", "20",
             "--objects", "8", "--output", str(path), *extra]
        )

    def test_watch_exits_cleanly_when_stream_is_deleted(self, tmp_path, capsys):
        # The open fd keeps a deleted file readable on POSIX, so a follower
        # would otherwise poll a ghost forever; it must notice the deletion
        # and stop with a diagnostic instead of hanging or crashing.
        import threading

        path = tmp_path / "vanishing.jsonl"
        assert self._generate(path) == 0
        capsys.readouterr()
        killer = threading.Timer(0.3, path.unlink)
        killer.start()
        try:
            code = main(
                ["watch", "--level", "si", "--interval", "0.05",
                 "--max-seconds", "30", str(path)]
            )
        finally:
            killer.cancel()
        output = capsys.readouterr().out
        assert code == 2
        assert "deleted while being followed" in output

    def test_watch_exits_cleanly_when_epoch_log_is_deleted(self, tmp_path, capsys):
        import shutil
        import threading

        path = tmp_path / "vanishing.epochs"
        assert self._generate(path) == 0
        capsys.readouterr()
        killer = threading.Timer(0.3, lambda: shutil.rmtree(path))
        killer.start()
        try:
            code = main(
                ["watch", "--level", "si", "--interval", "0.05",
                 "--max-seconds", "30", str(path)]
            )
        finally:
            killer.cancel()
        output = capsys.readouterr().out
        assert code == 2
        assert "disappeared while following" in output


class TestEpochLogCommands:
    def _generate(self, path, *extra):
        return main(
            ["generate", "--isolation", "si", "--sessions", "4", "--txns", "20",
             "--objects", "8", "--epoch-txns", "16", "--output", str(path), *extra]
        )

    def test_generate_then_check_batch_stream_and_workers(self, tmp_path, capsys):
        path = tmp_path / "history.epochs"
        assert self._generate(path) == 0
        assert (path / "MANIFEST.json").exists()
        assert sorted(path.glob("epoch-*.seg"))
        for extra in ([], ["--stream"], ["--workers", "2"]):
            assert main(["check", "--level", "si", *extra, str(path)]) == 0
            assert "SATISFIED" in capsys.readouterr().out

    def test_faulty_epoch_log_is_detected(self, tmp_path, capsys):
        path = tmp_path / "buggy.epochs"
        assert self._generate(path, "--fault", "lostupdate", "--fault-rate", "0.6") == 0
        assert main(["check", "--level", "si", str(path)]) == 1
        assert "VIOLATED" in capsys.readouterr().out
        assert main(["watch", "--once", "--level", "si", str(path)]) == 1
        assert "[txn #" in capsys.readouterr().out

    def test_watch_checkpoints_then_resumes(self, tmp_path, capsys):
        path = tmp_path / "history.epochs"
        assert self._generate(path) == 0
        assert main(
            ["watch", "--once", "--level", "si", "--checkpoint-every", "2", str(path)]
        ) == 0
        first = capsys.readouterr().out
        assert "resumed" not in first and "SATISFIED" in first
        assert sorted(path.glob("checkpoint-*.ckpt"))

        code = main(
            ["watch", "--once", "--level", "si", "--checkpoint-every", "2", str(path)]
        )
        second = capsys.readouterr().out
        assert code == 0
        assert "resumed from checkpoint" in second and "SATISFIED" in second

        # Different settings invalidate the snapshot: full replay, same verdict.
        code = main(["watch", "--once", "--level", "ser", str(path)])
        third = capsys.readouterr().out
        assert code == 0 and "resumed" not in third

    def test_watch_retires_epochs_behind_window(self, tmp_path, capsys):
        path = tmp_path / "history.epochs"
        assert self._generate(path) == 0
        before = len(list(path.glob("epoch-*.seg")))
        code = main(
            ["watch", "--once", "--level", "si", "--window", "24",
             "--checkpoint-every", "1", "--retire", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "retired" in out and (path / "RETIRED").exists()
        assert len(list(path.glob("epoch-*.seg"))) < before

        # Batch check can no longer see the whole history: clean refusal...
        assert main(["check", "--level", "si", str(path)]) == 2
        assert "retired by window GC" in capsys.readouterr().out
        # ...but the service resumes from its checkpoint past the watermark.
        code = main(
            ["watch", "--once", "--level", "si", "--window", "24",
             "--checkpoint-every", "1", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "resumed from checkpoint" in out and "SATISFIED" in out

    def test_retire_requires_window_and_checkpoints(self, tmp_path, capsys):
        path = tmp_path / "history.epochs"
        assert self._generate(path) == 0
        assert main(["watch", "--once", "--retire", str(path)]) == 2
        assert "--retire" in capsys.readouterr().out

    def test_checkpoint_flags_rejected_on_jsonl(self, tmp_path, capsys):
        path = tmp_path / "stream.jsonl"
        assert main(
            ["generate", "--isolation", "si", "--sessions", "2", "--txns", "10",
             "--objects", "6", "--output", str(path)]
        ) == 0
        assert main(["watch", "--once", "--checkpoint-every", "2", str(path)]) == 2
        assert "epoch log directories" in capsys.readouterr().out

    def test_convert_round_trips_through_epoch_log(self, tmp_path, capsys):
        jsonl = tmp_path / "h.jsonl"
        assert main(
            ["generate", "--isolation", "si", "--sessions", "4", "--txns", "20",
             "--objects", "8", "--output", str(jsonl)]
        ) == 0
        epochs = tmp_path / "h.epochs"
        assert main(["convert", str(jsonl), str(epochs), "--epoch-txns", "16"]) == 0
        back = tmp_path / "back.jsonl"
        assert main(["convert", str(epochs), str(back)]) == 0
        capsys.readouterr()

        from repro.history import iter_history_jsonl

        original = [(t.txn_id, t.status, str(t)) for t in iter_history_jsonl(jsonl)]
        restored = [(t.txn_id, t.status, str(t)) for t in iter_history_jsonl(back)]
        assert original == restored

    def test_check_missing_epoch_log_fails_cleanly(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "absent.epochs")]) == 2
        assert "not an epoch log directory" in capsys.readouterr().out


class TestBenchService:
    def test_bench_service_smoke_writes_json(self, tmp_path, capsys):
        code = main(
            ["bench", "--suite", "service", "--smoke", "--output-dir", str(tmp_path)]
        )
        assert code == 0
        payload = json.loads((tmp_path / "BENCH_service.json").read_text())
        assert payload["suite"] == "service"
        for row in payload["rows"]:
            assert row["verdicts_equal"] is True
            assert row["resume_s"] < row["full_replay_s"]
        capsys.readouterr()
