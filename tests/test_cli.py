"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_check_defaults(self):
        args = build_parser().parse_args(["check", "history.json"])
        assert args.level == "ser"
        assert not args.strict_mt

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestGenerateAndCheck:
    def test_generate_then_check_valid_history(self, tmp_path, capsys):
        path = tmp_path / "history.json"
        code = main(
            [
                "generate",
                "--isolation",
                "si",
                "--sessions",
                "4",
                "--txns",
                "20",
                "--objects",
                "10",
                "--output",
                str(path),
            ]
        )
        assert code == 0
        assert path.exists()
        assert "committed" in capsys.readouterr().out

        code = main(["check", "--level", "si", str(path)])
        output = capsys.readouterr().out
        assert code == 0
        assert "SATISFIED" in output

    def test_generate_buggy_then_check_detects_violation(self, tmp_path, capsys):
        path = tmp_path / "buggy.json"
        code = main(
            [
                "generate",
                "--isolation",
                "si",
                "--fault",
                "lostupdate",
                "--fault-rate",
                "0.6",
                "--sessions",
                "6",
                "--txns",
                "40",
                "--objects",
                "6",
                "--distribution",
                "zipf",
                "--output",
                str(path),
            ]
        )
        assert code == 0
        assert "injected defects" in capsys.readouterr().out

        code = main(["check", "--level", "si", str(path)])
        output = capsys.readouterr().out
        assert code == 1
        assert "VIOLATED" in output

    def test_generated_file_is_valid_json(self, tmp_path):
        path = tmp_path / "history.json"
        main(["generate", "--sessions", "2", "--txns", "5", "--objects", "5", "--output", str(path)])
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-history-v1"


class TestStreamingCommands:
    def _generate(self, path, *extra):
        return main(
            [
                "generate",
                "--isolation",
                "si",
                "--sessions",
                "4",
                "--txns",
                "20",
                "--objects",
                "8",
                "--output",
                str(path),
                *extra,
            ]
        )

    def test_generate_jsonl_then_stream_check(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        assert self._generate(path) == 0
        first_line = path.read_text().splitlines()[0]
        assert json.loads(first_line)["format"] == "repro-history-stream-v1"

        code = main(["check", "--level", "si", str(path)])  # --stream implied
        output = capsys.readouterr().out
        assert code == 0
        assert "SATISFIED" in output

    def test_stream_check_reports_offending_transaction(self, tmp_path, capsys):
        path = tmp_path / "buggy.jsonl"
        assert (
            self._generate(path, "--fault", "lostupdate", "--fault-rate", "0.6") == 0
        )
        code = main(["check", "--stream", "--level", "si", str(path)])
        output = capsys.readouterr().out
        assert code == 1
        assert "[txn #" in output and "VIOLATED" in output

    def test_stream_check_works_on_plain_json_too(self, tmp_path, capsys):
        path = tmp_path / "history.json"
        assert self._generate(path) == 0
        code = main(["check", "--stream", "--level", "si", str(path)])
        assert code == 0
        assert "SATISFIED" in capsys.readouterr().out

    def test_watch_once_verifies_existing_stream(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        assert self._generate(path) == 0
        code = main(["watch", "--level", "si", "--once", str(path)])
        assert code == 0
        assert "SATISFIED" in capsys.readouterr().out

    def test_watch_once_flags_faulty_stream(self, tmp_path, capsys):
        path = tmp_path / "buggy.jsonl"
        assert (
            self._generate(path, "--fault", "lostupdate", "--fault-rate", "0.6") == 0
        )
        code = main(["watch", "--level", "si", "--once", "--window", "60", str(path)])
        output = capsys.readouterr().out
        assert code == 1
        assert "[txn #" in output

    def test_watch_rejects_non_stream_file(self, tmp_path, capsys):
        path = tmp_path / "history.json"
        assert self._generate(path) == 0
        code = main(["watch", "--once", str(path)])
        assert code == 2
        assert "not a" in capsys.readouterr().out

    def test_watch_tolerates_partially_written_last_line(self, tmp_path, capsys):
        # A producer caught mid-append leaves a line without its newline; the
        # watch must skip it with a warning instead of dying on a parse error.
        path = tmp_path / "history.jsonl"
        assert self._generate(path) == 0
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_bytes(path.read_bytes()[:-20])
        code = main(["watch", "--level", "si", "--once", str(truncated)])
        output = capsys.readouterr().out
        assert code == 0
        assert "incomplete trailing line" in output and "SATISFIED" in output

    def test_check_and_watch_agree_on_transaction_numbering(self, tmp_path, capsys):
        path = tmp_path / "buggy.jsonl"
        assert (
            self._generate(path, "--fault", "lostupdate", "--fault-rate", "0.6") == 0
        )
        main(["check", "--stream", "--level", "si", str(path)])
        check_tags = [l.split("]")[0] for l in capsys.readouterr().out.splitlines() if l.startswith("[txn #")]
        main(["watch", "--once", "--level", "si", str(path)])
        watch_tags = [l.split("]")[0] for l in capsys.readouterr().out.splitlines() if l.startswith("[txn #")]
        assert check_tags and check_tags == watch_tags


class TestAnomalyCommand:
    def test_list_all(self, capsys):
        assert main(["anomaly"]) == 0
        output = capsys.readouterr().out
        assert "LostUpdate" in output and "WriteSkew" in output

    def test_show_one(self, capsys):
        assert main(["anomaly", "LostUpdate"]) == 0
        output = capsys.readouterr().out
        assert "R(x,0)" in output

    def test_unknown_anomaly(self, capsys):
        assert main(["anomaly", "Bogus"]) == 2
        assert "unknown anomaly" in capsys.readouterr().out
