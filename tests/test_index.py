"""Tests for the shared :class:`repro.core.index.HistoryIndex`."""

import pytest

from repro.core.anomalies import ANOMALY_NAMES, anomaly_history
from repro.core.checkers import check_ser, check_si, check_sser
from repro.core.checker import MTChecker
from repro.core.index import HistoryIndex
from repro.core.intcheck import build_write_index, check_internal_consistency
from repro.core.mini import validate_mt_history
from repro.core.model import (
    History,
    Transaction,
    TransactionStatus,
    read,
    write,
)
from repro.core.result import IsolationLevel
from repro.bench import generate_mt_history
from repro.db import FaultPlan


def history_of(*sessions, initial_keys=("x", "y")):
    return History.from_transactions(list(sessions), initial_keys=list(initial_keys))


def random_histories():
    for seed, faults in [
        (1, None),
        (2, FaultPlan.for_anomaly("lostupdate", rate=0.4, seed=2)),
        (3, FaultPlan.for_anomaly("abortedread", rate=0.4, seed=3)),
    ]:
        yield generate_mt_history(
            isolation="si",
            num_sessions=4,
            txns_per_session=25,
            num_objects=10,
            distribution="zipf",
            seed=seed,
            faults=faults,
        ).history


class TestInterning:
    def test_dense_ids_cover_every_transaction_and_key(self):
        t1 = Transaction(1, [read("x", 0), write("x", 1)])
        t2 = Transaction(2, [read("y", 0), write("y", 2)], session_id=1)
        index = HistoryIndex.build(history_of([t1], [t2]))
        assert sorted(index.txn_ids) == [-1, 1, 2]
        assert index.txn_dense[index.txn_ids[0]] == 0
        assert sorted(index.key_names) == ["x", "y"]
        assert index.keys_of(1) == ["x"]
        assert index.keys_of(-1) == ["x", "y"]

    def test_txn_keys_are_dense_and_sorted(self):
        for history in random_histories():
            index = HistoryIndex.build(history)
            for dense, key_ids in enumerate(index.txn_keys):
                assert key_ids == sorted(set(key_ids))
                txn = index.transactions[dense]
                assert {index.key_names[k] for k in key_ids} == txn.keys()


class TestWriteIndexParity:
    def test_final_and_intermediate_writers_match_write_index(self):
        for history in random_histories():
            index = HistoryIndex.build(history)
            legacy = build_write_index(history)
            for txn in history.transactions(include_initial=True):
                for op in txn.operations:
                    if not op.is_write:
                        continue
                    ours = index.final_writer(op.key, op.value)
                    theirs = legacy.final_writer(op.key, op.value)
                    assert (ours is None) == (theirs is None)
                    if ours is not None:
                        assert ours.txn_id == theirs.txn_id
                    inter_ours = index.intermediate_writer(op.key, op.value)
                    inter_theirs = legacy.intermediate_writer(op.key, op.value)
                    assert (inter_ours is None) == (inter_theirs is None)

    def test_external_reads_match_model(self):
        for history in random_histories():
            index = HistoryIndex.build(history)
            for txn in history.committed_transactions(include_initial=False):
                records = index.external_reads(txn.txn_id)
                assert {(r.key, r.value) for r in records} == set(
                    txn.external_reads().items()
                )
                for record in records:
                    assert record.writes_key == txn.writes_to(record.key)
                    if record.writes_key:
                        assert record.written_value == txn.final_write(record.key)

    def test_final_writes_match_model(self):
        for history in random_histories():
            index = HistoryIndex.build(history)
            for txn in history.transactions(include_initial=True):
                assert index.final_writes(txn.txn_id) == txn.final_writes()


class TestCachedPasses:
    def test_int_violations_equal_standalone_pass(self):
        for name in ANOMALY_NAMES:
            history = anomaly_history(name)
            index = HistoryIndex.build(history)
            ours = [(v.kind, tuple(v.txn_ids)) for v in index.int_violations()]
            theirs = [
                (v.kind, tuple(v.txn_ids))
                for v in check_internal_consistency(history)
            ]
            assert ours == theirs

    def test_caches_are_memoised(self):
        history = next(iter(random_histories()))
        index = HistoryIndex.build(history)
        assert index.int_violations() is index.int_violations()
        assert index.mt_problems() is index.mt_problems()
        assert index.session_order_pairs is index.session_order_pairs
        assert index.stream_order() is index.stream_order()

    def test_mt_problems_match_validate(self):
        history = next(iter(random_histories()))
        index = HistoryIndex.build(history)
        assert len(index.mt_problems()) == len(validate_mt_history(history))


class TestVersionChains:
    def test_chain_links_writer_readers_overwriters(self):
        t1 = Transaction(1, [read("x", 0), write("x", 1)])
        t2 = Transaction(2, [read("x", 1), write("x", 2)], session_id=1)
        t3 = Transaction(3, [read("x", 1)], session_id=2)
        index = HistoryIndex.build(history_of([t1], [t2], [t3]))
        chain = index.version_chains()["x"]
        by_value = {entry.value: entry for entry in chain}
        assert by_value[1].writer_id == 1
        assert set(by_value[1].reader_ids) == {2, 3}
        assert by_value[1].overwriter_ids == (2,)
        assert by_value[0].writer_id == -1  # the initial transaction

    def test_aborted_writers_anchor_no_version(self):
        t1 = Transaction(1, [read("x", 0), write("x", 1)], status=TransactionStatus.ABORTED)
        t2 = Transaction(2, [read("x", 1), write("x", 2)], session_id=1)
        index = HistoryIndex.build(history_of([t1], [t2]))
        values = [entry.value for entry in index.version_chains()["x"]]
        assert 1 not in values  # aborted write is not a version
        # ... but the write index still attributes it for AbortedRead.
        assert index.final_writer("x", 1).aborted


class TestSingleConstruction:
    """The acceptance invariant: one HistoryIndex per MTChecker.verify call."""

    @pytest.mark.parametrize(
        "level",
        [
            IsolationLevel.SERIALIZABILITY,
            IsolationLevel.SNAPSHOT_ISOLATION,
            IsolationLevel.STRICT_SERIALIZABILITY,
        ],
    )
    def test_verify_builds_exactly_one_index(self, level):
        history = generate_mt_history(
            isolation="serializable",
            num_sessions=3,
            txns_per_session=15,
            num_objects=8,
            seed=7,
        ).history
        checker = MTChecker(strict_mt=True)
        before = HistoryIndex.builds
        result = checker.verify(history, level)
        assert HistoryIndex.builds == before + 1
        assert result.satisfied

    def test_checkers_share_supplied_index(self):
        history = next(iter(random_histories()))
        index = HistoryIndex.build(history)
        before = HistoryIndex.builds
        check_ser(history, index=index)
        check_si(history, index=index)
        check_sser(history, index=index)
        assert HistoryIndex.builds == before

    def test_baselines_build_one_index_per_check(self):
        from repro.baselines import CobraChecker, PolySIChecker

        history = next(iter(random_histories()))
        for checker in (CobraChecker(), PolySIChecker()):
            before = HistoryIndex.builds
            checker.check(history)
            assert HistoryIndex.builds == before + 1
