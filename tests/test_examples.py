"""Smoke tests: every example script runs end-to-end without errors."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    # Examples with expensive comparison sections are still expected to finish
    # in well under a minute on laptop-scale defaults.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_there_are_at_least_three_examples():
    assert len(EXAMPLE_SCRIPTS) >= 3
    assert any(script.name == "quickstart.py" for script in EXAMPLE_SCRIPTS)
