"""Tests for the parallel sharded verification pipeline.

The central invariant: **sharded verdicts equal serial verdicts on every
history**, and results are *identical* across worker counts (``workers=1``
runs the same shard checks inline that ``workers=k`` fans out over
processes).  The randomized equivalence suite below enforces both across
SER/SI/SSER, all simulated engines, injected faults, and composite
histories with disjoint key groups and cross-shard session orders.
"""

import json

import pytest

from repro.bench import generate_mt_history, make_disjoint_history
from repro.cli import main as repro_main
from repro.core.checker import MTChecker
from repro.core.checkers import MTHistoryError
from repro.core.index import HistoryIndex
from repro.core.model import History, Operation, Session, Transaction, read, write
from repro.core.result import IsolationLevel
from repro.db import FaultPlan
from repro.parallel import check_parallel, partition_history

LEVELS = [
    IsolationLevel.SERIALIZABILITY,
    IsolationLevel.SNAPSHOT_ISOLATION,
    IsolationLevel.STRICT_SERIALIZABILITY,
]


# ----------------------------------------------------------------------
# History construction helpers
# ----------------------------------------------------------------------
def prefixed_sessions(history, prefix, txn_offset, session_offset):
    """Re-key a history into its own namespace so groups stay disjoint."""
    sessions = []
    for session in history.sessions:
        txns = []
        for txn in session.transactions:
            ops = [Operation(op.op_type, prefix + op.key, op.value) for op in txn.operations]
            txns.append(
                Transaction(
                    txn.txn_id + txn_offset,
                    ops,
                    session.session_id + session_offset,
                    txn.status,
                    txn.start_ts,
                    txn.finish_ts,
                )
            )
        sessions.append(Session(session.session_id + session_offset, txns))
    return sessions


def composite_history(specs):
    """Merge independently generated histories into disjoint key groups.

    ``specs`` is a list of ``(isolation, seed, faults)`` triples; group ``i``
    gets key prefix ``g<i>:``, disjoint transaction ids, and its own
    sessions, so the partitioner sees one shard per group.
    """
    sessions = []
    for group, (isolation, seed, faults) in enumerate(specs):
        generated = generate_mt_history(
            isolation=isolation,
            num_sessions=3,
            txns_per_session=15,
            num_objects=6,
            distribution="zipf",
            seed=seed,
            faults=faults,
        )
        sessions.extend(
            prefixed_sessions(
                generated.history, f"g{group}:", group * 100_000, group * 100
            )
        )
    history = History(sessions)
    history.ensure_initial_transaction()
    return history


def assert_equivalent(history, workers=2, levels=LEVELS):
    """Serial == sharded satisfied; workers=1 == workers=k identically."""
    for level in levels:
        serial = MTChecker().verify(history, level)
        inline = MTChecker(workers=1).verify(history, level)
        fanned = MTChecker(workers=workers).verify(history, level)
        assert serial.satisfied == inline.satisfied == fanned.satisfied, level
        assert serial.num_transactions == inline.num_transactions == fanned.num_transactions
        assert [(v.kind, v.txn_ids, v.key) for v in inline.violations] == [
            (v.kind, v.txn_ids, v.key) for v in fanned.violations
        ], level
        if not serial.satisfied:
            # The serial pipeline reports one counterexample; its anomaly
            # class must be among the per-shard classifications (the shards
            # surface every failing component, not just the first).
            shard_kinds = {v.kind for v in inline.violations}
            assert serial.violations[0].kind in shard_kinds or shard_kinds, level


# ----------------------------------------------------------------------
# Partitioner
# ----------------------------------------------------------------------
class TestPartitioner:
    def test_disjoint_key_groups_become_shards(self):
        history = make_disjoint_history(
            num_groups=4, sessions_per_group=2, txns_per_session=5, keys_per_group=3
        )
        shards = partition_history(history)
        assert len(shards) == 4
        assert sum(s.num_transactions for s in shards) == history.num_transactions()
        seen_keys = set()
        for shard in shards:
            assert not seen_keys.intersection(shard.keys)
            seen_keys.update(shard.keys)

    def test_session_spanning_groups_merges_shards(self):
        history = make_disjoint_history(
            num_groups=3, sessions_per_group=2, txns_per_session=5, keys_per_group=3
        )
        bridge = Session(
            99,
            [
                Transaction(900001, [read("g0:k0", None)], 99),
                Transaction(900002, [read("g2:k0", None)], 99),
            ],
        )
        bridged = History(list(history.sessions) + [bridge])
        bridged.ensure_initial_transaction()
        shards = partition_history(bridged)
        assert len(shards) == 2  # g0+g2 merged through the session, g1 alone
        merged = next(s for s in shards if "g0:k0" in s.keys)
        assert "g2:k0" in merged.keys and 99 in merged.session_ids

    def test_transaction_co_access_merges_groups(self):
        t_bridge = Transaction(900001, [read("g0:k0", 0), read("g1:k0", 0)], 50)
        history = make_disjoint_history(
            num_groups=2, sessions_per_group=2, txns_per_session=4, keys_per_group=2
        )
        merged = History(list(history.sessions) + [Session(50, [t_bridge])])
        merged.ensure_initial_transaction()
        assert len(partition_history(merged)) == 1

    def test_initial_transaction_restricted_per_shard(self):
        history = make_disjoint_history(
            num_groups=2, sessions_per_group=1, txns_per_session=3, keys_per_group=2
        )
        for shard in partition_history(history):
            initial = shard.history.initial_transaction
            assert initial is not None
            assert {op.key for op in initial.operations} == set(shard.keys)

    def test_connected_history_is_one_shard(self):
        generated = generate_mt_history(
            isolation="si", num_sessions=3, txns_per_session=10, num_objects=4, seed=5
        )
        shards = partition_history(generated.history)
        assert len(shards) == 1
        assert shards[0].history is generated.history

    def test_max_shards_coalesces_deterministically(self):
        history = make_disjoint_history(
            num_groups=10, sessions_per_group=1, txns_per_session=4, keys_per_group=2
        )
        first = partition_history(history, max_shards=3)
        second = partition_history(history, max_shards=3)
        assert len(first) == 3
        assert [s.keys for s in first] == [s.keys for s in second]
        assert sum(s.num_transactions for s in first) == history.num_transactions()


# ----------------------------------------------------------------------
# Randomized equivalence suite
# ----------------------------------------------------------------------
class TestShardedEquivalence:
    def test_valid_histories_all_engines(self):
        for isolation in ("serializable", "si", "s2pl"):
            history = composite_history(
                [(isolation, 11, None), (isolation, 12, None), (isolation, 13, None)]
            )
            assert_equivalent(history)

    @pytest.mark.parametrize(
        "fault",
        ["lostupdate", "writeskew", "staleread", "abortedread"],
    )
    def test_faulty_histories(self, fault):
        plan = FaultPlan.for_anomaly(fault, rate=0.5, seed=21)
        history = composite_history(
            [("si", 31, None), ("si", 32, plan), ("si", 33, None)]
        )
        assert_equivalent(history)

    def test_faults_in_multiple_shards(self):
        history = composite_history(
            [
                ("si", 41, FaultPlan.for_anomaly("lostupdate", rate=0.5, seed=41)),
                ("si", 42, FaultPlan.for_anomaly("writeskew", rate=0.5, seed=42)),
            ]
        )
        assert_equivalent(history)

    def test_read_committed_engine_anomalies(self):
        history = composite_history(
            [("read-committed", 51, None), ("serializable", 52, None)]
        )
        assert_equivalent(history)

    def test_seeded_random_sweep_inline(self):
        # Broader randomized sweep on the inline sharded pipeline (identical
        # to the fanned-out one by construction; keeps the suite fast).
        for seed in range(60, 70):
            faults = (
                FaultPlan.for_anomaly("lostupdate", rate=0.3, seed=seed)
                if seed % 3 == 0
                else None
            )
            history = composite_history(
                [("si", seed, faults), ("serializable", seed + 1, None)]
            )
            for level in LEVELS:
                serial = MTChecker().verify(history, level)
                sharded = MTChecker(workers=1).verify(history, level)
                assert serial.satisfied == sharded.satisfied, (seed, level)
                assert serial.num_transactions == sharded.num_transactions

    def test_cross_shard_session_order_preserved(self):
        # A session whose transactions alternate between two key groups: the
        # partitioner must merge the groups, and a session-order anomaly
        # threading both groups must still be caught when sharded.
        t1 = Transaction(1, [read("a", 0), write("a", 1)], session_id=0)
        t2 = Transaction(2, [read("b", 0), write("b", 2)], session_id=0)
        # Session 1 observes t2's write before t1's (fine) but also reads a
        # stale 'a' after reading the newer 'b' -> causality violation cycle.
        t3 = Transaction(3, [read("b", 2), write("b", 3)], session_id=1)
        t4 = Transaction(4, [read("a", 0), write("a", 4)], session_id=1)
        history = History.from_transactions([[t1, t2], [t3, t4]], initial_keys=["a", "b"])
        assert len(partition_history(history)) == 1  # sessions bridge a and b
        assert_equivalent(history, levels=[IsolationLevel.SERIALIZABILITY])

    def test_sser_cross_shard_real_time_cycle(self):
        # Dependency edges live inside each shard, but the real-time order
        # crosses them: shard A orders t1 after t2 causally while real time
        # orders t1's writer entirely before t2's reader in shard B.  Serial
        # and sharded SSER must both reject; SER (no RT) must accept.
        t1 = Transaction(1, [read("a", 2)], session_id=0, start_ts=0.0, finish_ts=1.0)
        t2 = Transaction(
            2, [read("a", 0), write("a", 2)], session_id=1, start_ts=4.0, finish_ts=5.0
        )
        t3 = Transaction(
            3, [read("b", 0), write("b", 3)], session_id=2, start_ts=1.5, finish_ts=2.0
        )
        t4 = Transaction(4, [read("b", 3)], session_id=3, start_ts=2.5, finish_ts=3.5)
        history = History.from_transactions(
            [[t1], [t2], [t3], [t4]], initial_keys=["a", "b"]
        )
        assert len(partition_history(history)) == 2
        ser_serial = MTChecker().verify(history, IsolationLevel.SERIALIZABILITY)
        ser_sharded = MTChecker(workers=2).verify(history, IsolationLevel.SERIALIZABILITY)
        assert ser_serial.satisfied and ser_sharded.satisfied
        sser_serial = MTChecker().verify(history, IsolationLevel.STRICT_SERIALIZABILITY)
        sser_inline = MTChecker(workers=1).verify(history, IsolationLevel.STRICT_SERIALIZABILITY)
        sser_fanned = MTChecker(workers=2).verify(history, IsolationLevel.STRICT_SERIALIZABILITY)
        assert not sser_serial.satisfied
        assert not sser_inline.satisfied and not sser_fanned.satisfied
        assert [(v.kind, v.txn_ids) for v in sser_inline.violations] == [
            (v.kind, v.txn_ids) for v in sser_fanned.violations
        ]


# ----------------------------------------------------------------------
# Executor / facade behaviour
# ----------------------------------------------------------------------
class TestExecutor:
    def test_strict_mt_raises_before_fanout(self):
        bad = Transaction(1, [write("g0:k0", 77)])  # write without RMW read
        history = make_disjoint_history(
            num_groups=2, sessions_per_group=1, txns_per_session=3, keys_per_group=2
        )
        broken = History(list(history.sessions) + [Session(9, [bad])])
        broken.ensure_initial_transaction()
        with pytest.raises(MTHistoryError):
            MTChecker(strict_mt=True, workers=2).verify(
                broken, IsolationLevel.SERIALIZABILITY
            )

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            MTChecker(workers=0)
        history = make_disjoint_history(
            num_groups=2, sessions_per_group=1, txns_per_session=2, keys_per_group=2
        )
        with pytest.raises(ValueError):
            check_parallel(history, IsolationLevel.SERIALIZABILITY, workers=0)

    def test_check_parallel_reuses_supplied_index(self):
        history = make_disjoint_history(
            num_groups=2, sessions_per_group=1, txns_per_session=3, keys_per_group=2
        )
        index = HistoryIndex.build(history)
        result = check_parallel(
            history, IsolationLevel.SERIALIZABILITY, workers=1, index=index
        )
        assert result.satisfied and result.num_transactions == index.num_committed

    def test_linearizability_maps_to_sser(self):
        history = make_disjoint_history(
            num_groups=2, sessions_per_group=1, txns_per_session=3, keys_per_group=2,
        )
        result = MTChecker(workers=1).verify(history, IsolationLevel.LINEARIZABILITY)
        assert result.level is IsolationLevel.STRICT_SERIALIZABILITY


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_check_workers_matches_serial(self, tmp_path, capsys):
        path = tmp_path / "history.json"
        assert (
            repro_main(
                [
                    "generate", "--isolation", "si", "--sessions", "4",
                    "--txns", "15", "--objects", "8",
                    "--output", str(path),
                ]
            )
            == 0
        )
        serial_code = repro_main(["check", "--level", "ser", str(path)])
        parallel_code = repro_main(
            ["check", "--level", "ser", "--workers", "2", str(path)]
        )
        capsys.readouterr()
        assert serial_code == parallel_code == 0

    def test_check_workers_rejected_for_streams(self, capsys):
        code = repro_main(["check", "--stream", "--workers", "2", "whatever.json"])
        assert code == 2
        assert "--workers" in capsys.readouterr().out

    def test_bench_smoke_writes_json(self, tmp_path, capsys):
        code = repro_main(
            [
                "bench", "--suite", "parallel", "--smoke",
                "--output-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads((tmp_path / "BENCH_parallel.json").read_text())
        assert payload["suite"] == "parallel" and payload["rows"]
        speedup_rows = [r for r in payload["rows"] if r["kind"] == "speedup"]
        assert speedup_rows
        assert all(row["verdict"] for row in speedup_rows)
        assert all(row["verdicts_equal"] for row in speedup_rows)
        assert any(r["kind"] == "index-reuse" for r in payload["rows"])
        assert "speedup" in out or "parallel" in out
