"""Tests for the Elle-style list-append workload and its execution harness."""

from repro.baselines import ElleChecker
from repro.core.result import IsolationLevel
from repro.db import Database, FaultPlan
from repro.workloads import ListAppendWorkloadGenerator, run_list_append_workload
from repro.workloads.list_append import AppendOp, ElleHistory, ElleTransaction, ReadListOp


class TestWorkloadGeneration:
    def test_plan_shape(self):
        generator = ListAppendWorkloadGenerator(
            num_sessions=3, txns_per_session=10, num_objects=4, max_txn_len=5, seed=1
        )
        plan = generator.generate()
        assert len(plan) == 3
        assert all(len(session) == 10 for session in plan)
        assert all(1 <= len(txn) <= 5 for session in plan for txn in session)
        assert generator.keys() == ["l0", "l1", "l2", "l3"]

    def test_plan_operations_use_known_kinds_and_keys(self):
        generator = ListAppendWorkloadGenerator(num_sessions=2, txns_per_session=20, num_objects=3, seed=2)
        plan = generator.generate()
        keys = set(generator.keys())
        for session in plan:
            for txn in session:
                for op in txn:
                    assert op.kind in ("append", "r")
                    assert op.key in keys

    def test_deterministic_for_seed(self):
        a = ListAppendWorkloadGenerator(num_sessions=2, txns_per_session=10, seed=3).generate()
        b = ListAppendWorkloadGenerator(num_sessions=2, txns_per_session=10, seed=3).generate()
        assert [[(op.kind, op.key) for txn in s for op in txn] for s in a] == [
            [(op.kind, op.key) for txn in s for op in txn] for s in b
        ]


class TestExecution:
    def _run(self, engine="serializable", faults=None, seed=4):
        generator = ListAppendWorkloadGenerator(
            num_sessions=3, txns_per_session=25, num_objects=4, max_txn_len=4, seed=seed
        )
        db = Database(engine, keys=generator.keys(), faults=faults)
        return run_list_append_workload(db, generator, seed=seed + 1)

    def test_history_contains_committed_and_aborted(self):
        history, stats = self._run()
        assert stats["committed"] > 0
        assert len(history.sessions) == 3
        committed = history.transactions(committed_only=True)
        assert len(committed) == int(stats["committed"])

    def test_reads_observe_growing_lists(self):
        history, _ = self._run()
        # Every observed list must contain distinct elements (appends are unique).
        for txn in history.transactions():
            for op in txn.reads():
                assert len(op.result) == len(set(op.result))

    def test_appended_values_are_globally_unique(self):
        history, _ = self._run()
        values = [op.value for txn in history.transactions(committed_only=False) for op in txn.appends()]
        assert len(values) == len(set(values))

    def test_valid_execution_passes_elle(self):
        history, _ = self._run(engine="serializable")
        checker = ElleChecker(IsolationLevel.SERIALIZABILITY)
        assert checker.check_list_append(history).satisfied

    def test_buggy_execution_fails_elle(self):
        history, _ = self._run(
            engine="si", faults=FaultPlan(lost_update_rate=0.7, seed=9), seed=6
        )
        checker = ElleChecker(IsolationLevel.SERIALIZABILITY)
        assert not checker.check_list_append(history).satisfied


class TestDataModel:
    def test_transaction_helpers(self):
        txn = ElleTransaction(
            txn_id=1,
            session_id=0,
            ops=[AppendOp("l0", 5), ReadListOp("l0", (5,))],
        )
        assert len(txn.appends()) == 1
        assert len(txn.reads()) == 1
        assert "append" in str(txn.appends()[0])
        assert "r(" in str(txn.reads()[0])

    def test_history_len_counts_all_transactions(self):
        history = ElleHistory(
            sessions=[[ElleTransaction(1, 0, committed=False)], [ElleTransaction(2, 1)]]
        )
        assert len(history) == 2
        assert len(history.transactions(committed_only=True)) == 1
