"""Tests for the fault-injection layer (buggy database variants)."""

import pytest

from repro.core.checkers import check_ser, check_si
from repro.core.result import AnomalyKind
from repro.db import Database, FaultPlan, TransactionAborted
from repro.workloads import MTWorkloadGenerator, MTWorkloadMix, run_workload


class TestFaultPlan:
    def test_disabled_by_default(self):
        assert not FaultPlan().any_enabled

    def test_any_enabled(self):
        assert FaultPlan(lost_update_rate=0.1).any_enabled
        assert FaultPlan(stale_read_rate=0.1).any_enabled

    def test_for_anomaly_mapping(self):
        assert FaultPlan.for_anomaly("LostUpdate").lost_update_rate > 0
        assert FaultPlan.for_anomaly("write_skew").write_skew_rate > 0
        assert FaultPlan.for_anomaly("CausalityViolation").stale_read_rate > 0
        assert FaultPlan.for_anomaly("aborted-read").dirty_install_rate > 0

    def test_for_anomaly_unknown(self):
        with pytest.raises(ValueError):
            FaultPlan.for_anomaly("NotAnAnomaly")

    def test_database_without_faults_reports_none(self):
        db = Database("si", keys=["x"])
        assert db.injected_anomalies == {}


class TestLostUpdateFault:
    def test_first_committer_wins_is_skipped(self):
        db = Database("si", keys=["x"], faults=FaultPlan(lost_update_rate=1.0, seed=1))
        t1 = db.begin()
        t2 = db.begin()
        db.read(t1, "x"), db.read(t2, "x")
        db.write(t1, "x", 1)
        db.write(t2, "x", 2)
        db.commit(t1)
        db.commit(t2)  # would abort on a correct SI engine
        assert db.injected_anomalies["lost_update"] == 1

    def test_detected_end_to_end_by_mtc_si(self):
        generator = MTWorkloadGenerator(
            num_sessions=6, txns_per_session=60, num_objects=8, distribution="zipf", seed=3
        )
        workload = generator.generate()
        db = Database("si", keys=workload.keys, faults=FaultPlan(lost_update_rate=0.5, seed=5))
        run = run_workload(db, workload, seed=7)
        result = check_si(run.history)
        assert not result.satisfied
        assert result.violation.kind is AnomalyKind.LOST_UPDATE


class TestWriteSkewFault:
    def test_read_validation_is_skipped(self):
        db = Database(
            "serializable", keys=["x", "y"], faults=FaultPlan(write_skew_rate=1.0, seed=1)
        )
        t1 = db.begin()
        t2 = db.begin()
        db.read(t1, "x"), db.read(t1, "y")
        db.read(t2, "x"), db.read(t2, "y")
        db.write(t1, "x", 1)
        db.write(t2, "y", 2)
        db.commit(t1)
        db.commit(t2)  # would abort on a correct serializable engine
        assert db.injected_anomalies["write_skew"] == 1

    def test_ww_conflicts_still_abort(self):
        # The write-skew defect must not hide genuine write-write conflicts.
        db = Database(
            "serializable", keys=["x"], faults=FaultPlan(write_skew_rate=1.0, seed=1)
        )
        t1 = db.begin()
        t2 = db.begin()
        db.read(t1, "x"), db.read(t2, "x")
        db.write(t1, "x", 1)
        db.write(t2, "x", 2)
        db.commit(t1)
        with pytest.raises(TransactionAborted):
            db.commit(t2)

    def test_detected_end_to_end_by_mtc_ser(self):
        mix = MTWorkloadMix(single_rmw=0.2, double_rmw=0.2, read_only=0.1, read_then_rmw=0.5)
        generator = MTWorkloadGenerator(
            num_sessions=8, txns_per_session=120, num_objects=5, mix=mix, seed=3
        )
        workload = generator.generate()
        db = Database(
            "serializable", keys=workload.keys, faults=FaultPlan(write_skew_rate=1.0, seed=5)
        )
        run = run_workload(db, workload, seed=9)
        result = check_ser(run.history)
        assert not result.satisfied


class TestDirtyInstallFault:
    def test_aborted_writes_become_visible(self):
        db = Database("si", keys=["x"], faults=FaultPlan(dirty_install_rate=1.0, seed=1))
        t1 = db.begin()
        db.read(t1, "x")
        db.write(t1, "x", 77)
        db.abort(t1)
        t2 = db.begin()
        assert db.read(t2, "x") == 77
        assert db.injected_anomalies["dirty_install"] == 1

    def test_detected_as_aborted_read(self):
        generator = MTWorkloadGenerator(
            num_sessions=6, txns_per_session=60, num_objects=8, distribution="zipf", seed=3
        )
        workload = generator.generate()
        db = Database("si", keys=workload.keys, faults=FaultPlan(dirty_install_rate=0.8, seed=5))
        run = run_workload(db, workload, seed=7)
        result = check_si(run.history)
        assert not result.satisfied
        kinds = {v.kind for v in result.violations}
        assert AnomalyKind.ABORTED_READ in kinds


class TestStaleReadFault:
    def test_stale_reads_are_injected(self):
        db = Database("si", keys=["x"], faults=FaultPlan(stale_read_rate=1.0, seed=1))
        # Build up two committed versions beyond the initial one.
        for value in (1, 2):
            txn = db.begin()
            db.read(txn, "x")
            db.write(txn, "x", value)
            db.commit(txn)
        reader = db.begin()
        observed = db.read(reader, "x")
        assert observed in (0, 1)  # an older version than the snapshot's latest
        assert db.injected_anomalies["stale_read"] >= 1

    def test_detected_end_to_end_under_si(self):
        generator = MTWorkloadGenerator(
            num_sessions=6, txns_per_session=80, num_objects=6, distribution="zipf", seed=3
        )
        workload = generator.generate()
        db = Database("si", keys=workload.keys, faults=FaultPlan(stale_read_rate=0.4, seed=5))
        run = run_workload(db, workload, seed=7)
        assert not check_si(run.history).satisfied
