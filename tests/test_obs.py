"""Tests for the telemetry subsystem (:mod:`repro.obs`).

Covers the registry wire format (merge associativity, worker snapshot
folding), the disabled-mode fast path (no allocation), the Prometheus
textfile writer (atomic under a concurrent reader), the JSONL trace
reader (torn-final-line tolerance), the ``stats=`` compatibility shim,
``verify(report=True)``, and the CLI surfaces (``--metrics-file``,
``--trace``, ``check -v``, and the checkpoint flush on an abnormal
watch exit).
"""

import json
import os
import sys
import threading
import time

import pytest

from repro import MTChecker, IsolationLevel, obs
from repro.cli import main
from repro.core.anomalies import anomaly_history
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.parallel import check_parallel


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Telemetry is process-global state: never leak across tests."""
    obs.disable()
    obs.stop_trace()
    yield
    obs.disable()
    obs.stop_trace()


def _sample_registry(seed: int) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("repro_executor_checks_total", seed)
    reg.inc("repro_index_cache_requests_total", seed + 1, outcome="hit")
    reg.set_gauge("repro_executor_shards", seed * 10)
    reg.observe("repro_phase_seconds", 0.01 * seed, phase="index_build")
    reg.observe("repro_phase_seconds", 3.0, phase="index_build")
    return reg


class TestRegistry:
    def test_counters_gauges_histograms_roundtrip(self):
        reg = _sample_registry(2)
        assert reg.value("repro_executor_checks_total") == 2
        assert reg.value("repro_index_cache_requests_total", outcome="hit") == 3
        assert reg.value("repro_executor_shards") == 20
        total, count = reg.histogram_stats("repro_phase_seconds", phase="index_build")
        assert count == 2 and total == pytest.approx(3.02)

    def test_merge_is_associative(self):
        snaps = [_sample_registry(s).snapshot() for s in (1, 2, 3)]

        left = MetricsRegistry()
        left.merge(snaps[0])
        left.merge(snaps[1])
        right = MetricsRegistry()
        right.merge(snaps[1])
        right.merge(snaps[2])

        ab_c = MetricsRegistry()
        ab_c.merge(left.snapshot())
        ab_c.merge(snaps[2])
        a_bc = MetricsRegistry()
        a_bc.merge(snaps[0])
        a_bc.merge(right.snapshot())

        assert ab_c.snapshot() == a_bc.snapshot()
        # ... and equals the flat fold.
        assert merge_snapshots(iter(snaps)) == ab_c.snapshot()

    def test_merge_semantics(self):
        reg = MetricsRegistry()
        reg.inc("repro_executor_checks_total", 5)
        reg.set_gauge("repro_executor_shards", 99)
        reg.merge(_sample_registry(1).snapshot())
        # Counters add; gauges are last-write-wins.
        assert reg.value("repro_executor_checks_total") == 6
        assert reg.value("repro_executor_shards") == 10

    def test_merge_rejects_foreign_snapshots(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="metrics snapshot"):
            reg.merge({"format": "somebody-elses-v9", "counters": {}})

    def test_merge_rejects_mismatched_histogram_bounds(self):
        a = MetricsRegistry()
        a.observe("repro_phase_seconds", 0.1, phase="x")
        b = MetricsRegistry()
        b.observe("repro_phase_seconds", 0.1, buckets=(1.0, 2.0), phase="x")
        a_snap = a.snapshot()
        with pytest.raises(ValueError, match="bucket bounds differ"):
            b.merge(a_snap)

    def test_scoped_folds_into_parent(self):
        parent = obs.enable(fresh=True)
        with obs.scoped() as child:
            obs.inc("repro_executor_checks_total")
            assert obs.registry() is child
        assert obs.registry() is parent
        assert parent.value("repro_executor_checks_total") == 1


class TestDisabledFastPath:
    def test_disabled_recording_is_allocation_free(self):
        assert not obs.enabled()
        blocks = getattr(sys, "getallocatedblocks", None)
        if blocks is None:
            pytest.skip("sys.getallocatedblocks unavailable")

        def hot_loop():
            for _ in range(1000):
                obs.inc("repro_collector_txns_total")
                obs.set_gauge("repro_watch_epoch_lag", 3)
                obs.observe("repro_phase_seconds", 0.1)
                with obs.phase("ingest"):
                    pass

        hot_loop()  # warm caches (bytecode, method lookups)
        before = blocks()
        hot_loop()
        delta = blocks() - before
        assert delta < 50, f"disabled-mode telemetry allocated {delta} blocks"

    def test_phase_returns_shared_null_context(self):
        assert obs.phase("a") is obs.phase("b")


class TestTextfile:
    def test_render_exposes_whole_catalog_with_zero_fill(self):
        text = obs.render(MetricsRegistry())
        for family, (kind, _help) in obs.METRIC_CATALOG.items():
            assert f"# TYPE {family} {kind}" in text
        parsed = obs.parse_textfile(text)
        assert parsed["repro_executor_checks_total"] == 0

    def test_histogram_expansion(self):
        reg = MetricsRegistry()
        reg.observe("repro_phase_seconds", 0.01, phase="merge")
        parsed = obs.parse_textfile(obs.render(reg))
        assert parsed['repro_phase_seconds_count{phase="merge"}'] == 1
        assert parsed['repro_phase_seconds_bucket{le="+Inf",phase="merge"}'] == 1
        # Cumulative: every bucket at or above 0.025 saw the sample.
        assert parsed['repro_phase_seconds_bucket{le="0.025",phase="merge"}'] == 1
        assert parsed['repro_phase_seconds_bucket{le="0.001",phase="merge"}'] == 0

    def test_atomic_rewrite_under_concurrent_reader(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        reg = MetricsRegistry()
        obs.write_textfile(path, reg)
        stop = threading.Event()
        failures = []

        def writer():
            n = 0
            while not stop.is_set():
                reg.inc("repro_executor_checks_total")
                reg.observe("repro_phase_seconds", 0.001, phase="x")
                obs.write_textfile(path, reg)
                n += 1
            return n

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        deadline = time.monotonic() + 1.0
        reads = 0
        try:
            while time.monotonic() < deadline:
                with open(path, encoding="utf-8") as fh:
                    text = fh.read()
                try:
                    parsed = obs.parse_textfile(text)
                except ValueError as exc:  # pragma: no cover - the failure mode
                    failures.append(str(exc))
                    break
                # A torn write would lose the tail families.
                if "repro_watch_heartbeats_total" not in parsed:
                    failures.append("scrape saw a partial file")
                    break
                reads += 1
        finally:
            stop.set()
            thread.join(timeout=5)
        assert not failures, failures[0]
        assert reads > 0


class TestTrace:
    def test_spans_nest_and_parent_per_thread(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        writer = obs.TraceWriter(path)
        with writer.span("outer"):
            with writer.span("inner", detail=7):
                pass
        writer.close()
        records = {r["name"]: r for r in obs.iter_trace(path)}
        assert records["outer"]["parent"] is None
        assert records["inner"]["parent"] == records["outer"]["id"]
        assert records["inner"]["detail"] == 7
        assert records["inner"]["dur"] >= 0

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = json.dumps({"name": "a", "id": 1, "parent": None, "ts": 0.0, "dur": 0.1})
        path.write_text(good + "\n" + '{"name": "torn", "id"')
        records = list(obs.iter_trace(str(path)))
        assert [r["name"] for r in records] == ["a"]

    def test_malformed_interior_line_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = json.dumps({"name": "a", "id": 1, "parent": None, "ts": 0.0, "dur": 0.1})
        path.write_text("not json at all\n" + good + "\n")
        with pytest.raises(ValueError, match="malformed trace record at line 1"):
            list(obs.iter_trace(str(path)))

    def test_error_field_recorded_on_exception(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        writer = obs.TraceWriter(path)
        with pytest.raises(RuntimeError):
            with writer.span("failing"):
                raise RuntimeError("boom")
        writer.close()
        (record,) = obs.iter_trace(path)
        assert record["error"] == "RuntimeError"


class TestWorkerMetrics:
    def _disjoint_history(self, shards=4, txns=6):
        from repro.bench.suites import make_disjoint_history

        return make_disjoint_history(
            num_groups=shards, sessions_per_group=2, txns_per_session=txns,
            keys_per_group=4,
        )

    def test_merged_registry_equals_sum_of_worker_snapshots(self):
        history = self._disjoint_history()
        committed = len(history.committed_transactions(include_initial=False))
        with obs.scoped() as reg:
            result = check_parallel(
                history, IsolationLevel.SERIALIZABILITY, workers=4
            )
        assert result.satisfied
        shards = int(reg.value("repro_executor_shards"))
        assert shards > 1
        # Every shard shipped a snapshot and the parent folded them all:
        # the merged counters are exactly the sums over the workers.
        assert reg.value("repro_executor_shard_checks_total") == shards
        assert reg.value("repro_executor_shard_txns_total") == committed

    def test_run_shard_ships_snapshot_only_when_asked(self):
        from repro.core.index import HistoryIndex
        from repro.parallel.executor import make_payload, _run_shard
        from repro.parallel.partition import partition_history

        history = self._disjoint_history(shards=2)
        shards = partition_history(history, index=HistoryIndex.build(history))
        plain = _run_shard(
            make_payload(shards[0], IsolationLevel.SERIALIZABILITY, False, True)
        )
        assert plain.metrics is None
        shipped = [
            _run_shard(
                make_payload(
                    shard, IsolationLevel.SERIALIZABILITY, False, True,
                    with_metrics=True,
                )
            )
            for shard in shards
        ]
        merged = MetricsRegistry()
        for outcome in shipped:
            assert outcome.metrics is not None
            merged.merge(outcome.metrics)
        assert merged.value("repro_executor_shard_checks_total") == len(shards)
        # Shipping metrics must not leave a registry active in the worker.
        assert not obs.enabled()

    def test_stats_shim_matches_registry(self):
        history = self._disjoint_history()
        stats = {}
        with obs.scoped() as reg:
            check_parallel(
                history, IsolationLevel.SERIALIZABILITY, workers=2, stats=stats
            )
        assert stats["workers_requested"] == 2
        assert stats["shards"] == int(reg.value("repro_executor_shards"))
        assert stats["inline"] == bool(reg.value("repro_executor_inline"))
        assert stats["payload_bytes"] == int(reg.value("repro_executor_payload_bytes"))
        assert stats["index_build_s"] == reg.value("repro_executor_index_build_seconds")

    def test_stats_shim_works_without_active_registry(self):
        history = self._disjoint_history(shards=2)
        stats = {}
        check_parallel(history, IsolationLevel.SERIALIZABILITY, workers=1, stats=stats)
        assert not obs.enabled()
        assert stats["workers_effective"] == 1
        assert "merge_s" not in stats  # SER: no SSER merge ran


class TestVerifyReport:
    def test_report_wraps_result_and_phases(self):
        report = MTChecker().verify(
            anomaly_history("LostUpdate"),
            IsolationLevel.SNAPSHOT_ISOLATION,
            report=True,
        )
        assert isinstance(report, obs.VerifyReport)
        assert not report.satisfied and not report
        assert report.level is IsolationLevel.SNAPSHOT_ISOLATION
        phases = report.phases()
        assert "index_build" in phases
        text = report.format()
        assert "VIOLATED" in text and "phases:" in text

    def test_report_false_returns_plain_result(self):
        result = MTChecker().verify(
            anomaly_history("LostUpdate"), IsolationLevel.SNAPSHOT_ISOLATION
        )
        assert not isinstance(result, obs.VerifyReport)

    def test_report_leaves_telemetry_disabled(self):
        MTChecker().verify(
            anomaly_history("WriteSkew"), IsolationLevel.SERIALIZABILITY, report=True
        )
        assert not obs.enabled()


class TestCLISurfaces:
    def _generate_epochs(self, path):
        return main(
            ["generate", "--isolation", "si", "--sessions", "4", "--txns", "20",
             "--objects", "8", "--epoch-txns", "16", "--output", str(path)]
        )

    def test_watch_metrics_file_scrape(self, tmp_path, capsys):
        path = tmp_path / "h.epochs"
        assert self._generate_epochs(path) == 0
        metrics = tmp_path / "metrics.prom"
        code = main(
            ["watch", "--once", "--level", "si", "--metrics-file", str(metrics),
             "--metrics-every", "0", str(path)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "[watch]" in captured.err and "verdict=ok" in captured.err
        parsed = obs.parse_textfile(metrics.read_text())
        # The scrape exposes the instrumented families end to end...
        assert parsed["repro_checker_txns_ingested"] > 0
        assert parsed["repro_epochlog_epochs_loaded_total"] > 0
        assert parsed["repro_watch_heartbeats_total"] > 0
        assert parsed["repro_executor_checks_total"] == 0  # zero-filled catalog
        assert "repro_collector_txns_total" in obs.render(MetricsRegistry())
        # ...and the follower fully drained the log.
        assert parsed["repro_watch_epoch_lag"] == 0
        assert not obs.enabled()

    def test_watch_jsonl_metrics_file(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        assert main(
            ["generate", "--isolation", "si", "--sessions", "2", "--txns", "10",
             "--objects", "6", "--output", str(path)]
        ) == 0
        metrics = tmp_path / "metrics.prom"
        code = main(
            ["watch", "--once", "--level", "si", "--metrics-file", str(metrics),
             str(path)]
        )
        assert code == 0
        capsys.readouterr()
        parsed = obs.parse_textfile(metrics.read_text())
        assert parsed["repro_watch_txns_ingested"] > 0
        assert parsed["repro_watch_epoch_lag"] == 0
        assert not obs.enabled()

    def test_watch_flushes_checkpoint_on_regressed_log(self, tmp_path, capsys):
        path = tmp_path / "h.epochs"
        assert self._generate_epochs(path) == 0
        capsys.readouterr()
        segs = sorted(path.glob("epoch-*.seg"))
        assert len(segs) > 1

        # Regress the log while the follower sleeps between polls: the next
        # refresh() raises, and the fix flushes the verified prefix first.
        killer = threading.Timer(0.3, lambda: segs[-1].unlink())
        killer.start()
        try:
            code = main(
                ["watch", "--level", "si", "--interval", "0.05",
                 "--max-seconds", "30", "--checkpoint-every", "100", str(path)]
            )
        finally:
            killer.cancel()
        out = capsys.readouterr().out
        assert code == 2
        assert "regressed" in out
        assert "flushed final checkpoint" in out
        assert sorted(path.glob("checkpoint-*.ckpt"))

    def test_check_verbose_prints_phase_report(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        assert main(
            ["generate", "--isolation", "si", "--sessions", "3", "--txns", "15",
             "--objects", "8", "--output", str(path)]
        ) == 0
        assert main(["check", "--level", "si", "-v", str(path)]) == 0
        out = capsys.readouterr().out
        assert "SATISFIED" in out and "phases:" in out and "index_build" in out

    def test_check_trace_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        assert main(
            ["generate", "--isolation", "si", "--sessions", "3", "--txns", "15",
             "--objects", "8", "--output", str(path)]
        ) == 0
        trace = tmp_path / "trace.jsonl"
        assert main(["check", "--level", "ser", "--trace", str(trace), str(path)]) == 0
        capsys.readouterr()
        records = list(obs.iter_trace(str(trace)))
        names = [r["name"] for r in records]
        assert "check" in names and "index_build" in names
        root = next(r for r in records if r["name"] == "check")
        assert root["parent"] is None
        assert all(
            r["parent"] == root["id"] for r in records if r["name"] != "check"
        )
        assert not obs.tracing()


class TestBenchEnvStamp:
    def test_environment_metadata_fields(self):
        from repro.bench.env import environment_metadata

        meta = environment_metadata()
        assert meta["cpu_count"] >= 1
        assert meta["python_version"]
        assert meta["platform"]

    def test_written_benchmarks_are_stamped(self, tmp_path):
        from repro.bench import write_benchmark_json

        path = tmp_path / "BENCH_x.json"
        write_benchmark_json({"suite": "x"}, str(path))
        payload = json.loads(path.read_text())
        assert payload["suite"] == "x"
        assert payload["env"]["python_version"]
