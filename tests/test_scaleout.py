"""Tests for the scale-out verification kernel (ISSUE 7).

Covers the three scale-out mechanisms end to end:

* **Tree-reduction SSER merge** — pairwise :func:`merge_csr_wires`
  reductions must produce *byte-identical* results (verdicts, labeled
  cycles, edge columns) for every reduction-tree shape: flat one-pass
  merge, serial left fold, and the executor's adjacent-pair tree,
  including odd shard counts and the single-shard degenerate tree.
* **Shipped/cached index** — ``HistoryIndex.to_wire``/``from_wire``
  round-trips, the CRC-stamped ``save_cache``/``load_cache`` sidecar, the
  epoch-log ``INDEX.cache``, and ``check_parallel(reuse_index=True)`` all
  skip index construction (the ``builds`` counter pins it) without
  changing any verdict.
* **Worker governance** — ``--workers`` clamps to the CPU count with a
  warning, small histories fall back inline, and the persistent pool path
  (exercised by monkeypatching the clamp/threshold) returns identical
  results to inline execution.

The legacy ``dense=False`` merge path is pinned to the dense one here as
well, since both now route through the same remap helpers.
"""

import warnings

import pytest

from test_parallel import assert_equivalent, composite_history

from repro.bench import make_disjoint_history
from repro.cli import main as repro_main
from repro.core.checker import MTChecker
from repro.core.checkers import check_sser
from repro.core.index import INDEX_WIRE_FORMAT, HistoryIndex
from repro.core.model import History, Transaction, read, write
from repro.core.result import IsolationLevel
from repro.db import FaultPlan
from repro.history.columnar import (
    ColumnarHistory,
    file_crc32,
    segment_token,
    write_history_segment,
)
from repro.history.epochlog import EpochLog, EpochLogWriter
from repro.parallel import check_parallel, partition_history
from repro.parallel import executor as executor_module
from repro.parallel.executor import make_payload, shutdown_pool
from repro.parallel.merge import (
    finalize_sser_wires,
    merge_csr_wires,
    merge_sser_csr,
    merge_sser_graphs,
    wire_from_edges,
)

SSER = IsolationLevel.STRICT_SERIALIZABILITY


def rt_cycle_history(extra_groups=0):
    """A history whose only SSER violation threads RT edges across shards.

    The four core transactions split into two key-connected shards, each
    internally acyclic; the cycle alternates dependency paths in one shard
    with real-time hops through the other (SER accepts, SSER rejects).
    ``extra_groups`` appends disjoint serial RMW groups so the partitioner
    yields more shards without adding violations.
    """
    t1 = Transaction(1, [read("a", 2)], session_id=0, start_ts=0.0, finish_ts=1.0)
    t2 = Transaction(
        2, [read("a", 0), write("a", 2)], session_id=1, start_ts=4.0, finish_ts=5.0
    )
    t3 = Transaction(
        3, [read("b", 0), write("b", 3)], session_id=2, start_ts=1.5, finish_ts=2.0
    )
    t4 = Transaction(4, [read("b", 3)], session_id=3, start_ts=2.5, finish_ts=3.5)
    chains = [[t1], [t2], [t3], [t4]]
    keys = ["a", "b"]
    txn_id = 5
    clock = 10.0
    for group in range(extra_groups):
        key = f"x{group}"
        keys.append(key)
        latest, chain = 0, []
        for _ in range(3):
            chain.append(
                Transaction(
                    txn_id,
                    [read(key, latest), write(key, txn_id)],
                    session_id=3 + txn_id,
                    start_ts=clock,
                    finish_ts=clock + 0.5,
                )
            )
            latest = txn_id
            txn_id += 1
            clock += 1.0
        chains.append(chain)
    return History.from_transactions(chains, initial_keys=keys)


def shard_wires(history):
    """Run the SSER shard stage inline and return (index, CSR wires)."""
    index = HistoryIndex.build(history)
    shards = partition_history(history, index=index)
    outcomes = [
        executor_module._run_shard(make_payload(shard, SSER, False, True))
        for shard in shards
    ]
    outcomes.sort(key=lambda o: o.shard_index)
    assert all(o.csr is not None for o in outcomes)
    return index, [o.csr for o in outcomes], sum(o.num_transactions for o in outcomes)


# ----------------------------------------------------------------------
# HistoryIndex wire format + cache
# ----------------------------------------------------------------------
class TestIndexWire:
    def test_round_trip_preserves_verdicts_without_rebuilding(self):
        history = make_disjoint_history(
            num_groups=3, sessions_per_group=2, txns_per_session=6, timestamps=True
        )
        index = HistoryIndex.build(history)
        wire = index.to_wire()
        assert wire["format"] == INDEX_WIRE_FORMAT

        builds = HistoryIndex.builds
        loads = HistoryIndex.wire_loads
        clone = HistoryIndex.from_wire(wire)
        assert HistoryIndex.builds == builds  # no reconstruction
        assert HistoryIndex.wire_loads == loads + 1

        assert clone.num_committed == index.num_committed
        assert list(clone.committed_txn_ids) == list(index.committed_txn_ids)
        assert clone.key_names == index.key_names
        assert list(clone.session_order_id_pairs()) == list(index.session_order_id_pairs())
        assert list(clone.real_time_id_pairs(reduced=True)) == list(
            index.real_time_id_pairs(reduced=True)
        )
        original = check_sser(None, index=index)
        rehydrated = check_sser(None, index=clone)
        assert original.format() == rehydrated.format()

    def test_round_trip_columnar_keeps_row_order(self):
        history = make_disjoint_history(
            num_groups=3, sessions_per_group=2, txns_per_session=6, timestamps=True
        )
        columns = ColumnarHistory.from_history(history)
        index = HistoryIndex.from_columns(columns)
        clone = HistoryIndex.from_wire(index.to_wire(), columns=columns)
        # Row order survives, so the rehydrated index can still drive the
        # columnar partitioner (segref payloads slice by row number).
        serial = check_parallel(None, SSER, columns=columns, index=index)
        reused = check_parallel(None, SSER, columns=columns, index=clone)
        assert serial.format() == reused.format()

    def test_round_trip_columnar_preserves_counterexamples(self):
        # A violated history: the rehydrated index must reproduce the full
        # labeled counterexample (it materialises transactions from the
        # backing columns through the preserved row order).
        columns = ColumnarHistory.from_history(rt_cycle_history(1))
        index = HistoryIndex.from_columns(columns)
        clone = HistoryIndex.from_wire(index.to_wire(), columns=columns)
        original = check_sser(None, index=index)
        rehydrated = check_sser(None, index=clone)
        assert not original.satisfied and not rehydrated.satisfied
        assert original.format() == rehydrated.format()

    def test_object_wire_rejects_columns(self):
        history = composite_history([("ser", 7, None)])
        wire = HistoryIndex.build(history).to_wire()
        columns = ColumnarHistory.from_history(history)
        with pytest.raises(ValueError):
            HistoryIndex.from_wire(wire, columns=columns)

    def test_cache_round_trip_and_invalidation(self, tmp_path):
        history = composite_history([("si", 8, None)])
        columns = ColumnarHistory.from_history(history)
        index = HistoryIndex.from_columns(columns)
        path = tmp_path / "seg.idx"
        fingerprint = {"crc32": 12345, "size": 678}
        index.save_cache(path, fingerprint=fingerprint)

        loaded = HistoryIndex.load_cache(path, fingerprint=fingerprint, columns=columns)
        assert loaded is not None
        assert check_sser(None, index=loaded).format() == check_sser(None, index=index).format()

        # Any fingerprint drift (segment rewritten) invalidates silently.
        stale = HistoryIndex.load_cache(
            path, fingerprint={"crc32": 999, "size": 678}, columns=columns
        )
        assert stale is None
        # As does corruption anywhere in the payload.
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert HistoryIndex.load_cache(path, fingerprint=fingerprint, columns=columns) is None
        assert HistoryIndex.load_cache(tmp_path / "absent.idx", fingerprint=fingerprint) is None


# ----------------------------------------------------------------------
# Tree-reduction merge
# ----------------------------------------------------------------------
def _fold_left(wires):
    merged = wires[0]
    for wire in wires[1:]:
        merged = merge_csr_wires(merged, wire)
    return [merged]


def _tree(wires):
    return executor_module._reduce_wires(list(wires), workers=1)


class TestTreeReduction:
    @pytest.mark.parametrize("num_groups", [2, 3, 5, 8, 16])
    def test_every_tree_shape_is_byte_identical_on_accept(self, num_groups):
        history = make_disjoint_history(
            num_groups=num_groups,
            sessions_per_group=2,
            txns_per_session=4,
            keys_per_group=3,
            timestamps=True,
        )
        index, wires, num_txns = shard_wires(history)
        assert len(wires) == num_groups
        results = [
            finalize_sser_wires(shape, index, num_transactions=num_txns)
            for shape in (wires, _fold_left(wires), _tree(wires))
        ]
        assert all(r.satisfied for r in results)
        assert results[0].format() == results[1].format() == results[2].format()

    @pytest.mark.parametrize("extra_groups", [0, 1, 3, 6, 14])
    def test_every_tree_shape_reports_the_same_labeled_cycle(self, extra_groups):
        history = rt_cycle_history(extra_groups)
        index, wires, num_txns = shard_wires(history)
        assert len(wires) == 2 + extra_groups
        results = [
            finalize_sser_wires(shape, index, num_transactions=num_txns)
            for shape in (wires, _fold_left(wires), _tree(wires))
        ]
        assert all(not r.satisfied for r in results)
        # Byte-identical counterexamples: same anomaly, same labeled cycle.
        assert results[0].format() == results[1].format() == results[2].format()
        cycles = {tuple(r.violations[0].cycle) for r in results}
        assert len(cycles) == 1

    def test_single_shard_degenerate_tree(self):
        history = make_disjoint_history(
            num_groups=1, sessions_per_group=2, txns_per_session=4, timestamps=True
        )
        index, wires, num_txns = shard_wires(history)
        assert len(wires) == 1
        assert _tree(wires) == wires
        result = finalize_sser_wires(wires, index, num_transactions=num_txns)
        serial = MTChecker().verify(history, SSER)
        assert result.satisfied == serial.satisfied


# ----------------------------------------------------------------------
# Randomized sharded-vs-serial equivalence (2..16 shards, all levels)
# ----------------------------------------------------------------------
class TestRandomizedEquivalence:
    @pytest.mark.parametrize("num_groups", [2, 3, 7, 16])
    def test_clean_composites(self, num_groups):
        specs = [("si" if g % 2 else "ser", 100 + g, None) for g in range(num_groups)]
        history = composite_history(specs)
        assert len(partition_history(history)) == num_groups
        assert_equivalent(history, workers=2)

    @pytest.mark.parametrize("num_groups", [3, 5])
    def test_faulty_composites(self, num_groups):
        specs = [
            (
                "ser",
                200 + g,
                FaultPlan(lost_update_rate=0.6, seed=g) if g == 1 else None,
            )
            for g in range(num_groups)
        ]
        history = composite_history(specs)
        assert_equivalent(history, workers=2)

    @pytest.mark.parametrize("extra_groups", [0, 2, 9])
    def test_cross_shard_rt_violations(self, extra_groups):
        history = rt_cycle_history(extra_groups)
        serial = MTChecker().verify(history, SSER)
        sharded = MTChecker(workers=2).verify(history, SSER)
        assert not serial.satisfied and not sharded.satisfied
        assert {v.kind for v in serial.violations} == {
            v.kind for v in sharded.violations
        }
        # SER ignores RT and must accept every shape.
        assert MTChecker(workers=2).verify(
            history, IsolationLevel.SERIALIZABILITY
        ).satisfied


# ----------------------------------------------------------------------
# Legacy (dense=False) merge pinned to the dense path
# ----------------------------------------------------------------------
class TestLegacyDensePin:
    @pytest.mark.parametrize("extra_groups", [0, 3])
    def test_legacy_equals_dense_on_violation(self, extra_groups):
        history = rt_cycle_history(extra_groups)
        index = HistoryIndex.build(history)
        shards = partition_history(history, index=index)
        dense_outcomes = [
            executor_module._run_shard(make_payload(s, SSER, False, True)) for s in shards
        ]
        legacy_outcomes = [
            executor_module._run_shard(make_payload(s, SSER, False, False)) for s in shards
        ]
        dense = merge_sser_csr(dense_outcomes, index)
        legacy = merge_sser_graphs(legacy_outcomes, index)
        assert dense.satisfied == legacy.satisfied == False  # noqa: E712
        assert [(v.kind, v.txn_ids) for v in dense.violations] == [
            (v.kind, v.txn_ids) for v in legacy.violations
        ]

    def test_legacy_equals_dense_on_accept(self):
        history = make_disjoint_history(
            num_groups=4, sessions_per_group=2, txns_per_session=5, timestamps=True
        )
        dense = check_parallel(history, SSER, workers=1, dense=True)
        legacy = check_parallel(history, SSER, workers=1, dense=False)
        assert dense.satisfied and legacy.satisfied
        assert dense.num_transactions == legacy.num_transactions

    def test_wire_from_edges_round_trips_labels(self):
        edges = [(1, 2, "WR", "a"), (2, 3, "WW", "a"), (3, 1, "RT", None)]
        wire = wire_from_edges([1, 2, 3], edges)
        node_ids, key_names = wire[0], wire[1]
        assert list(node_ids) == [1, 2, 3]
        assert key_names == ["a"]


# ----------------------------------------------------------------------
# Worker governance: clamp, inline threshold, persistent pool
# ----------------------------------------------------------------------
class TestWorkerGovernance:
    def test_workers_clamped_to_cpu_count_with_warning(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_cpu_count", lambda: 2)
        history = composite_history([("ser", 30, None), ("si", 31, None)])
        stats = {}
        with pytest.warns(RuntimeWarning, match="clamping to 2"):
            result = check_parallel(history, SSER, workers=8, stats=stats)
        assert stats["workers_requested"] == 8
        assert result.satisfied == MTChecker().verify(history, SSER).satisfied

    def test_no_warning_within_cpu_budget(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_cpu_count", lambda: 4)
        history = composite_history([("ser", 32, None)])
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            check_parallel(history, SSER, workers=2)

    def test_small_history_falls_back_inline(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_cpu_count", lambda: 4)
        history = composite_history([("ser", 33, None), ("ser", 34, None)])
        stats = {}
        check_parallel(history, SSER, workers=4, stats=stats)
        assert stats["inline"] is True
        assert stats["workers_effective"] == 1
        assert stats["shards"] == 2

    def test_pool_path_matches_inline(self, monkeypatch):
        # Force the real pool on a small history: drop the inline threshold
        # and let two workers through the clamp regardless of the machine.
        monkeypatch.setattr(executor_module, "_cpu_count", lambda: 2)
        monkeypatch.setattr(executor_module, "_MIN_POOL_TXNS", 0)
        history = rt_cycle_history(2)
        try:
            stats = {}
            fanned = check_parallel(history, SSER, workers=2, stats=stats)
            inline = check_parallel(history, SSER, workers=1)
            assert stats["workers_effective"] == 2
            assert fanned.format() == inline.format()
            # Second call reuses the persistent pool (warm worker caches).
            again = check_parallel(history, SSER, workers=2)
            assert again.format() == inline.format()
        finally:
            shutdown_pool()


# ----------------------------------------------------------------------
# Index reuse: segment sidecar + epoch-log cache
# ----------------------------------------------------------------------
class TestIndexReuse:
    def _segment(self, tmp_path, timestamps=True):
        history = make_disjoint_history(
            num_groups=3, sessions_per_group=2, txns_per_session=6, timestamps=timestamps
        )
        path = tmp_path / "history.seg"
        write_history_segment(history, path)
        return path, ColumnarHistory.load(path, mmap=True)

    def test_reuse_index_sidecar_skips_rebuild(self, tmp_path):
        path, columns = self._segment(tmp_path)
        cold_stats = {}
        cold = check_parallel(
            None, SSER, columns=columns, source_path=path,
            reuse_index=True, stats=cold_stats,
        )
        sidecar = tmp_path / "history.seg.idx"
        assert sidecar.exists()
        assert "index_build_s" in cold_stats

        builds = HistoryIndex.builds
        warm_stats = {}
        warm = check_parallel(
            None, SSER, columns=columns, source_path=path,
            reuse_index=True, stats=warm_stats,
        )
        assert HistoryIndex.builds == builds  # rehydrated, not rebuilt
        assert "index_reuse_s" in warm_stats
        assert warm.format() == cold.format()

    def test_sidecar_invalidated_when_segment_changes(self, tmp_path):
        path, columns = self._segment(tmp_path)
        check_parallel(None, SSER, columns=columns, source_path=path, reuse_index=True)
        token = segment_token(path)
        # Rewrite the segment with different content: same sidecar path,
        # different CRC — the stale cache must be ignored and replaced.
        history = make_disjoint_history(
            num_groups=2, sessions_per_group=2, txns_per_session=5, timestamps=True
        )
        write_history_segment(history, path)
        assert segment_token(path) != token or file_crc32(path) is not None
        new_columns = ColumnarHistory.load(path, mmap=True)
        result = check_parallel(
            None, SSER, columns=new_columns, source_path=path, reuse_index=True
        )
        serial = MTChecker().verify(new_columns, SSER)
        assert result.satisfied == serial.satisfied
        assert result.num_transactions == serial.num_transactions

    def test_epochlog_cache_round_trip_and_append_invalidation(self, tmp_path):
        history = make_disjoint_history(
            num_groups=2, sessions_per_group=2, txns_per_session=8, timestamps=True
        )
        log_dir = tmp_path / "log.epochs"
        from repro.core.incremental import stream_order

        with EpochLogWriter(log_dir, epoch_transactions=16) as writer:
            for txn in stream_order(history):
                writer.append(txn)
        log = EpochLog.open(log_dir)
        columns = log.to_columns()
        assert log.cached_index(columns) is None  # nothing cached yet

        index = HistoryIndex.from_columns(columns)
        assert log.cache_index(index) is not None
        assert (log_dir / "INDEX.cache").exists()

        builds = HistoryIndex.builds
        cached = log.cached_index(columns)
        assert cached is not None and HistoryIndex.builds == builds
        assert check_sser(None, index=cached).format() == check_sser(None, index=index).format()

        # Appending an epoch changes the manifest fingerprint: stale cache
        # must be refused.
        extra = Transaction(
            10_000,
            [read("g0:k0", None), write("g0:k0", 10_000)],
            session_id=99,
            start_ts=1e9,
            finish_ts=1e9 + 1,
        )
        with EpochLogWriter(log_dir, epoch_transactions=4) as writer:
            writer.append(extra)
        grown = EpochLog.open(log_dir)
        assert grown.cached_index(grown.to_columns()) is None

    def test_cli_epochlog_check_writes_and_reuses_cache(self, tmp_path, capsys):
        history = make_disjoint_history(
            num_groups=2, sessions_per_group=2, txns_per_session=6, timestamps=True
        )
        log_dir = tmp_path / "log.epochs"
        from repro.core.incremental import stream_order

        with EpochLogWriter(log_dir, epoch_transactions=32) as writer:
            for txn in stream_order(history):
                writer.append(txn)

        before_first = HistoryIndex.builds
        assert repro_main(["check", str(log_dir), "--level", "sser"]) == 0
        assert (log_dir / "INDEX.cache").exists()
        first = capsys.readouterr().out
        first_builds = HistoryIndex.builds - before_first

        before_second = HistoryIndex.builds
        loads = HistoryIndex.wire_loads
        assert repro_main(["check", str(log_dir), "--level", "sser"]) == 0
        # The second check rehydrates the batch index from INDEX.cache:
        # exactly one build fewer than the cold run (per-shard index builds
        # still happen inline), and one wire load more.
        assert HistoryIndex.builds - before_second == first_builds - 1
        assert HistoryIndex.wire_loads == loads + 1
        assert capsys.readouterr().out == first
