"""Tests for internal-consistency checking and read-provenance anomalies."""

from repro.core.intcheck import WriteIndex, build_write_index, check_internal_consistency
from repro.core.model import History, Transaction, TransactionStatus, read, write
from repro.core.result import AnomalyKind


def txn(txn_id, *ops, status=TransactionStatus.COMMITTED):
    return Transaction(txn_id, list(ops), status=status)


def history_of(*session_lists, keys=("x",)):
    return History.from_transactions(list(session_lists), initial_keys=list(keys))


def kinds(history):
    return {v.kind for v in check_internal_consistency(history)}


class TestWriteIndex:
    def test_final_and_intermediate_writers(self):
        index = WriteIndex()
        t = txn(1, read("x", 0), write("x", 1), write("x", 2))
        index.add_transaction(t)
        assert index.final_writer("x", 2) is t
        assert index.final_writer("x", 1) is None
        assert index.intermediate_writer("x", 1) is t

    def test_build_write_index_includes_initial_and_aborted(self):
        aborted = txn(1, read("x", 0), write("x", 5), status=TransactionStatus.ABORTED)
        history = history_of([aborted])
        index = build_write_index(history)
        assert index.final_writer("x", 5) is aborted
        assert index.final_writer("x", 0).is_initial


class TestValidHistories:
    def test_clean_chain_has_no_violations(self):
        t1 = txn(1, read("x", 0), write("x", 1))
        t2 = txn(2, read("x", 1), write("x", 2))
        assert kinds(history_of([t1], [t2])) == set()

    def test_read_own_write_is_consistent(self):
        t1 = txn(1, read("x", 0), write("x", 1), read("x", 1))
        assert kinds(history_of([t1])) == set()

    def test_repeated_identical_reads_are_consistent(self):
        t1 = txn(1, read("x", 0), read("x", 0))
        assert kinds(history_of([t1])) == set()

    def test_aborted_transactions_are_not_themselves_checked(self):
        bad = txn(1, read("x", 99), status=TransactionStatus.ABORTED)
        assert kinds(history_of([bad])) == set()


class TestAnomalies:
    def test_thin_air_read(self):
        t1 = txn(1, read("x", 42))
        assert kinds(history_of([t1])) == {AnomalyKind.THIN_AIR_READ}

    def test_aborted_read(self):
        writer = txn(1, read("x", 0), write("x", 5), status=TransactionStatus.ABORTED)
        reader = txn(2, read("x", 5))
        assert kinds(history_of([writer], [reader])) == {AnomalyKind.ABORTED_READ}

    def test_future_read(self):
        t1 = txn(1, read("x", 9), write("x", 9))
        assert kinds(history_of([t1])) == {AnomalyKind.FUTURE_READ}

    def test_not_my_last_write(self):
        t1 = txn(1, read("x", 0), write("x", 1), write("x", 2), read("x", 1))
        assert kinds(history_of([t1])) == {AnomalyKind.NOT_MY_LAST_WRITE}

    def test_not_my_own_write(self):
        t1 = txn(1, read("x", 0), write("x", 2), read("x", 1))
        t2 = txn(2, read("x", 0), write("x", 1))
        assert AnomalyKind.NOT_MY_OWN_WRITE in kinds(history_of([t1], [t2]))

    def test_intermediate_read(self):
        t1 = txn(1, read("x", 1))
        t2 = txn(2, read("x", 0), write("x", 1), write("x", 2))
        assert kinds(history_of([t1], [t2])) == {AnomalyKind.INTERMEDIATE_READ}

    def test_non_repeatable_reads(self):
        t1 = txn(1, read("x", 0), read("x", 1))
        t2 = txn(2, read("x", 0), write("x", 1))
        assert AnomalyKind.NON_REPEATABLE_READS in kinds(history_of([t1], [t2]))

    def test_violation_reports_transaction_and_key(self):
        t1 = txn(7, read("x", 42))
        violations = check_internal_consistency(history_of([t1]))
        assert violations[0].txn_ids == [7]
        assert violations[0].key == "x"

    def test_multiple_violations_all_reported(self):
        t1 = txn(1, read("x", 42))
        t2 = txn(2, read("x", 0), read("x", 99))
        violations = check_internal_consistency(history_of([t1], [t2]))
        assert len(violations) >= 2

    def test_reusing_a_prebuilt_index(self):
        t1 = txn(1, read("x", 42))
        history = history_of([t1])
        index = build_write_index(history)
        violations = check_internal_consistency(history, write_index=index)
        assert violations and violations[0].kind is AnomalyKind.THIN_AIR_READ
