"""Setup shim for environments without PEP 660 editable-install support.

The project is configured through ``pyproject.toml``; this file only exists
so that ``pip install -e . --no-use-pep517`` (legacy develop mode) works on
machines without the ``wheel`` package or network access.
"""

from setuptools import setup

setup()
