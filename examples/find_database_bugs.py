"""Rediscovering real-world isolation bugs on buggy databases (Table II).

The paper rediscovers six isolation bugs in five production databases.  This
example reproduces each failure mode with the simulator's fault-injection
engines, stresses the buggy database with a mini-transaction workload, and
lets MTC report the violation with a compact counterexample — exactly the
black-box workflow used against the real systems.

Run with:  python examples/find_database_bugs.py
"""

from repro import Database, FaultPlan, MTWorkloadGenerator, run_workload
from repro.core.checkers import check_ser, check_si, check_sser
from repro.workloads import MTWorkloadMix

#: The simulated counterparts of the Table II bugs.
BUGGY_DATABASES = (
    ("MariaDB Galera 10.7.3 (claimed SI)", "si", FaultPlan(lost_update_rate=0.5, seed=1), check_si),
    ("MongoDB 4.2.6 (claimed SI)", "si", FaultPlan(dirty_install_rate=0.5, seed=2), check_si),
    ("Dgraph 1.1.1 (claimed SI)", "si", FaultPlan(stale_read_rate=0.3, seed=3), check_si),
    ("PostgreSQL 12.3 (claimed SER)", "serializable", FaultPlan(write_skew_rate=0.9, seed=4), check_ser),
    ("Cassandra 2.0.1 (claimed SSER)", "s2pl", FaultPlan(dirty_install_rate=0.5, seed=5), check_sser),
)

#: Mini-transaction mix that also produces write-skew-prone shapes.
MIX = MTWorkloadMix(single_rmw=0.35, double_rmw=0.2, read_only=0.1, read_then_rmw=0.35)


def main() -> None:
    for label, engine, faults, checker in BUGGY_DATABASES:
        generator = MTWorkloadGenerator(
            num_sessions=6,
            txns_per_session=80,
            num_objects=10,
            distribution="exp",
            mix=MIX,
            seed=faults.seed,
        )
        workload = generator.generate()
        database = Database(engine, keys=workload.keys, faults=faults)
        run = run_workload(database, workload, seed=faults.seed + 1)
        result = checker(run.history)

        print(f"=== {label} ===")
        print(
            f"committed={run.stats.committed}  aborted={run.stats.aborted}  "
            f"defects injected={database.injected_anomalies}"
        )
        if result.satisfied:
            print("no violation detected (try a larger workload or higher fault rate)")
        else:
            print(f"VIOLATION of {result.level.short_name} "
                  f"(verification took {result.elapsed_seconds:.3f}s):")
            print("  " + result.violation.format().replace("\n", "\n  "))
        print()


if __name__ == "__main__":
    main()
