"""End-to-end black-box isolation checking (the Figure 2 workflow).

The example runs the complete pipeline the paper describes:

1. generate a randomized mini-transaction workload;
2. execute it against the in-memory transactional database simulator under
   a chosen isolation engine, recording the client-visible history;
3. verify the history against SER, SI, and SSER with the MTC checkers;
4. repeat with a deliberately weaker engine (read committed) to show how the
   checkers expose the missing guarantees.

Run with:  python examples/end_to_end_checking.py
"""

from repro import Database, MTChecker, MTWorkloadGenerator, run_workload
from repro.history import save_history


def check_engine(engine: str, *, sessions: int = 8, txns: int = 100, objects: int = 30) -> None:
    generator = MTWorkloadGenerator(
        num_sessions=sessions,
        txns_per_session=txns,
        num_objects=objects,
        distribution="zipf",
        seed=42,
    )
    workload = generator.generate()
    database = Database(engine, keys=workload.keys)
    run = run_workload(database, workload, seed=7)
    history = run.history

    checker = MTChecker()
    ser = checker.check_ser(history)
    si = checker.check_si(history)
    sser = checker.check_sser(history)

    print(f"--- engine: {engine} ---")
    print(
        f"committed={run.stats.committed}  aborted={run.stats.aborted}  "
        f"abort_rate={run.stats.abort_rate:.1%}  generation={run.stats.wall_seconds:.3f}s"
    )
    for result in (ser, si, sser):
        status = "satisfied" if result.satisfied else "VIOLATED"
        print(f"  {result.level.short_name:5s}: {status}  ({result.elapsed_seconds:.3f}s)")
        if result.violation is not None:
            print("    " + result.violation.format().splitlines()[0])
    print()


def main() -> None:
    # A database that provides strict serializability: everything passes.
    check_engine("s2pl")
    # Snapshot isolation: SER/SSER may be violated (write skew), SI holds.
    check_engine("si")
    # Read committed: all three strong levels are violated.
    check_engine("read-committed")

    # Histories can be persisted and re-verified later.
    generator = MTWorkloadGenerator(num_sessions=4, txns_per_session=25, num_objects=10, seed=1)
    workload = generator.generate()
    database = Database("si", keys=workload.keys)
    run = run_workload(database, workload, seed=3)
    save_history(run.history, "/tmp/repro_quickstart_history.json")
    print("saved a reusable history to /tmp/repro_quickstart_history.json")


if __name__ == "__main__":
    main()
