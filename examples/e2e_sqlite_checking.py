"""End-to-end isolation checking against a real database (SQLite).

Everything before this example checks histories from the in-process
simulator.  Here the full end-to-end loop of the paper runs against a real
engine instead: four client threads execute a mini-transaction workload
over stdlib ``sqlite3``, the collector records what each client observed
(unique write values, real-time begin/commit intervals), and ``MTChecker``
verifies the recorded history — first from a healthy database, then from
the same database with protocol-level chaos injected between the clients
and the engine, which the checker must catch from the history alone.

Run with: ``python examples/e2e_sqlite_checking.py``
"""

from repro import Collector, IsolationLevel, MTChecker, make_adapter
from repro.workloads.mt_generator import MTWorkloadGenerator


def main() -> None:
    workload = MTWorkloadGenerator(
        num_sessions=4,
        txns_per_session=50,
        num_objects=12,
        distribution="zipf",
        seed=7,
    ).generate()
    checker = MTChecker()

    # ------------------------------------------------------------------
    # 1. A healthy SQLite: collected histories satisfy SER (and SSER —
    #    SQLite serializes writers and the collector stamps real time).
    # ------------------------------------------------------------------
    with make_adapter("sqlite", wal=True) as adapter:
        result = Collector(adapter).collect(workload)
    stats = result.stats
    print(
        f"[healthy] collected {stats.committed} committed transactions from "
        f"{result.adapter_name} with 4 concurrent sessions "
        f"in {stats.wall_seconds:.2f}s"
    )
    for level in (IsolationLevel.SERIALIZABILITY, IsolationLevel.STRICT_SERIALIZABILITY):
        verdict = checker.verify(result.history, level)
        print(f"[healthy] {level.short_name}: {'SATISFIED' if verdict.satisfied else 'VIOLATED'}")
        assert verdict.satisfied

    # ------------------------------------------------------------------
    # 2. The same healthy engine, but clients occasionally have their
    #    commits dropped (acknowledged, then rolled back underneath).
    #    The engine is fine; the *system* is not — and the checker proves
    #    it end-to-end, with a counterexample cycle.
    # ------------------------------------------------------------------
    with make_adapter("sqlite", wal=True, chaos="lost-write", chaos_rate=0.25, seed=7) as adapter:
        result = Collector(adapter).collect(workload)
        fired = adapter.injections["lost_write"]
    print(f"[chaos] dropped {fired} acknowledged commits behind the clients' backs")
    verdict = checker.verify(result.history, IsolationLevel.SERIALIZABILITY)
    assert not verdict.satisfied, "lost writes must be detected"
    print("[chaos] SER: VIOLATED — counterexample:")
    print(verdict.violation.format())


if __name__ == "__main__":
    main()
