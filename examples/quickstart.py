"""Quickstart: build a small mini-transaction history by hand and check it.

This example mirrors the paper's running examples: it constructs the
LOSTUPDATE history of Figure 3 / Figure 5m and the WRITESKEW history of
Figure 5n directly from operations, then verifies them against
serializability and snapshot isolation with the MTC checkers and prints the
counterexamples.

Run with:  python examples/quickstart.py
"""

from repro import IsolationLevel, MTChecker, Transaction, read, write
from repro.core.model import History


def lost_update_history() -> History:
    """T1 and T2 both read x=0 from the initial state and overwrite it."""
    t1 = Transaction(txn_id=1, operations=[read("x", 0), write("x", 1)])
    t2 = Transaction(txn_id=2, operations=[read("x", 0), write("x", 2)])
    t3 = Transaction(txn_id=3, operations=[read("x", 2)])
    return History.from_transactions([[t1], [t2], [t3]], initial_keys=["x"])


def write_skew_history() -> History:
    """T1 and T2 read both x and y, then write one object each."""
    t1 = Transaction(txn_id=1, operations=[read("x", 0), read("y", 0), write("x", 1)])
    t2 = Transaction(txn_id=2, operations=[read("x", 0), read("y", 0), write("y", 1)])
    return History.from_transactions([[t1], [t2]], initial_keys=["x", "y"])


def main() -> None:
    checker = MTChecker()

    print("=== Lost update (Figure 5m) ===")
    history = lost_update_history()
    for level in (IsolationLevel.SERIALIZABILITY, IsolationLevel.SNAPSHOT_ISOLATION):
        result = checker.verify(history, level)
        print(f"{level.short_name}: {'satisfied' if result.satisfied else 'VIOLATED'}")
        if result.violation is not None:
            print("  " + result.violation.format().replace("\n", "\n  "))
    print()

    print("=== Write skew (Figure 5n) ===")
    history = write_skew_history()
    for level in (IsolationLevel.SERIALIZABILITY, IsolationLevel.SNAPSHOT_ISOLATION):
        result = checker.verify(history, level)
        print(f"{level.short_name}: {'satisfied' if result.satisfied else 'VIOLATED'}")
        if result.violation is not None:
            print("  " + result.violation.format().replace("\n", "\n  "))
    print()
    print("Write skew is the classic anomaly allowed by SI but forbidden by SER.")


if __name__ == "__main__":
    main()
