"""Checking linearizability of lightweight-transaction (CAS) histories.

Databases such as Cassandra, ScyllaDB, and etcd expose lightweight
transactions — single-object compare-and-set operations.  For histories of
such operations, strict serializability degenerates to linearizability and
MTC verifies it in linear time (Algorithm 2 in the paper).  This example

1. generates a valid highly concurrent R&W history and verifies it with both
   MTC-SSER and the Porcupine-style search baseline, comparing their cost;
2. perturbs the history to introduce a real-time violation (Figure 4b) and
   shows both checkers rejecting it.

Run with:  python examples/lwt_linearizability.py
"""

import time

from repro.baselines import PorcupineChecker
from repro.core.lwt import LWTHistory, LWTKind, LWTOperation, check_linearizability
from repro.workloads import LWTHistoryGenerator


def figure4_histories() -> None:
    """The two hand-written histories of Figure 4."""
    linearizable = LWTHistory(
        operations=[
            LWTOperation(1, LWTKind.INSERT, "x", written=0, start_ts=0.0, finish_ts=0.5),
            LWTOperation(2, LWTKind.READ_WRITE, "x", expected=1, written=2, start_ts=1.0, finish_ts=4.0),
            LWTOperation(3, LWTKind.READ_WRITE, "x", expected=0, written=1, start_ts=3.0, finish_ts=6.0),
            LWTOperation(4, LWTKind.READ_WRITE, "x", expected=2, written=3, start_ts=5.0, finish_ts=8.0),
        ]
    )
    non_linearizable = LWTHistory(
        operations=[
            LWTOperation(1, LWTKind.INSERT, "x", written=0, start_ts=0.0, finish_ts=0.5),
            LWTOperation(2, LWTKind.READ_WRITE, "x", expected=1, written=2, start_ts=1.0, finish_ts=4.0),
            LWTOperation(3, LWTKind.READ_WRITE, "x", expected=0, written=1, start_ts=6.0, finish_ts=9.0),
            LWTOperation(4, LWTKind.READ_WRITE, "x", expected=2, written=3, start_ts=5.0, finish_ts=8.0),
        ]
    )
    print("Figure 4a (linearizable):   ", check_linearizability(linearizable).satisfied)
    result = check_linearizability(non_linearizable)
    print("Figure 4b (non-linearizable):", result.satisfied)
    print("  " + result.violation.format().splitlines()[0])
    print()


def generated_histories() -> None:
    generator = LWTHistoryGenerator(
        num_sessions=10, txns_per_session=80, num_objects=2, concurrent_fraction=1.0, seed=11
    )
    history = generator.generate()

    started = time.perf_counter()
    mtc = check_linearizability(history)
    mtc_seconds = time.perf_counter() - started

    porcupine = PorcupineChecker()
    started = time.perf_counter()
    baseline = porcupine.check(history)
    porcupine_seconds = time.perf_counter() - started

    print(f"valid history of {len(history)} R&W operations:")
    print(f"  MTC-SSER : {mtc.satisfied}  in {mtc_seconds * 1000:.1f} ms")
    print(f"  Porcupine: {baseline.satisfied}  in {porcupine_seconds * 1000:.1f} ms")
    print(f"  speedup  : {porcupine_seconds / max(mtc_seconds, 1e-9):.0f}x")
    print()

    broken = generator.generate(valid=False)
    print("after injecting a real-time violation:")
    print(f"  MTC-SSER : {check_linearizability(broken).satisfied}")
    print(f"  Porcupine: {porcupine.check(broken).satisfied}")


def main() -> None:
    figure4_histories()
    generated_histories()


if __name__ == "__main__":
    main()
