"""Parallel sharded verification with ``MTChecker(workers=N)``.

Large histories recorded from sharded or multi-tenant databases usually
decompose into groups of keys that no transaction ever links: each tenant
(or partition) touches its own key range.  The key-connectivity partitioner
exploits exactly that — it splits the history into independently checkable
shards, fans the shard checks out over worker processes, and merges the
verdicts, with the guarantee that the sharded verdict equals the serial
one on *every* history.

This example:

1. builds a disjoint-key history (4 key groups, a few thousand
   transactions) and shows the partitioner finding the 4 shards;
2. verifies it serially and with ``workers=2``, asserting the verdicts
   agree and printing both timings (on a single-core machine the parallel
   run merely timeshares — the point is the identical verdict);
3. corrupts one key group with a lost-update anomaly and shows the sharded
   check pinpointing the violation without touching the healthy shards.

Run with:  python examples/parallel_checking.py
"""

import time

from repro import History, IsolationLevel, MTChecker, Transaction, read, write
from repro.bench import make_disjoint_history
from repro.core.model import Session
from repro.parallel import partition_history


def timed_verify(checker: MTChecker, history, level):
    started = time.perf_counter()
    result = checker.verify(history, level)
    return result, time.perf_counter() - started


def main() -> None:
    history = make_disjoint_history(
        num_groups=4, sessions_per_group=3, txns_per_session=150, keys_per_group=8
    )
    shards = partition_history(history)
    print(f"history: {history.num_transactions()} transactions, "
          f"{len(shards)} key-connected shards")
    for shard in shards:
        print(f"  shard {shard.index}: {shard.num_transactions} txns over "
              f"{len(shard.keys)} keys (e.g. {shard.keys[0]})")

    serial, serial_s = timed_verify(MTChecker(), history, IsolationLevel.SERIALIZABILITY)
    sharded, sharded_s = timed_verify(
        MTChecker(workers=2), history, IsolationLevel.SERIALIZABILITY
    )
    assert serial.satisfied == sharded.satisfied
    print(f"\nSER serial:  {serial.format().splitlines()[0]}  ({serial_s:.3f}s)")
    print(f"SER sharded: {sharded.format().splitlines()[0]}  ({sharded_s:.3f}s)")

    # Inject a lost update into group 2: two transactions read the same
    # version of g2:k0 and both overwrite it.
    t_a = Transaction(900001, [read("g2:k0", 0), write("g2:k0", 900001)], 90)
    t_b = Transaction(900002, [read("g2:k0", 0), write("g2:k0", 900002)], 91)
    corrupted = History(
        list(history.sessions) + [Session(90, [t_a]), Session(91, [t_b])],
        initial_transaction=history.initial_transaction,
    )
    verdict = MTChecker(workers=2).verify(corrupted, IsolationLevel.SNAPSHOT_ISOLATION)
    assert not verdict.satisfied
    print("\nwith a corrupted shard:")
    print(verdict.format())
    culprit_keys = {v.key for v in verdict.violations}
    print(f"violations confined to the corrupted shard's keys: {sorted(culprit_keys)}")


if __name__ == "__main__":
    main()
