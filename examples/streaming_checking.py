"""Streaming verification: check a workload live, while it executes.

The batch workflow (``examples/end_to_end_checking.py``) records a complete
history and verifies it afterwards.  This example plugs a
``CheckerSession`` into the workload runner's ``on_transaction`` hook so
every transaction is verified the moment it commits:

1. a correct SI engine runs a workload under live SI checking — the stream
   stays clean all the way through;
2. a database with an injected lost-update defect runs under the same
   monitor — the violation is reported at the exact transaction that
   completes the anomaly, not at the end of the run;
3. the same faulty run is repeated with a bounded window, showing that the
   monitor holds only a fixed-size suffix of the graph in memory.

Run with:  python examples/streaming_checking.py
"""

from repro import Database, IsolationLevel, MTChecker, run_workload
from repro.db.faults import FaultPlan
from repro.workloads.mt_generator import MTWorkloadGenerator


def make_workload(seed: int):
    generator = MTWorkloadGenerator(
        num_sessions=6,
        txns_per_session=50,
        num_objects=10,
        distribution="zipf",
        seed=seed,
    )
    return generator.generate()


def live_check(database: Database, workload, *, window=None, seed: int = 1):
    """Run ``workload`` with a live SI monitor; return (session, run)."""
    checker = MTChecker()
    session = checker.session(
        IsolationLevel.SNAPSHOT_ISOLATION,
        initial_keys=workload.keys,
        window=window,
    )
    first_violation = []

    def on_transaction(txn):
        violations = session.ingest(txn)
        if violations and not first_violation:
            first_violation.append((session.num_ingested, violations[0]))

    run = run_workload(database, workload, seed=seed, on_transaction=on_transaction)
    return session, run, first_violation


def main() -> None:
    workload = make_workload(seed=7)

    print("=== 1. Correct SI engine under a live SI monitor ===")
    session, run, first = live_check(Database("si", keys=workload.keys), workload)
    result = session.result()
    print(
        f"{run.stats.committed} committed transactions streamed; "
        f"verdict: {'satisfied' if result.satisfied else 'VIOLATED'}"
    )
    assert result.satisfied and not first

    print()
    print("=== 2. Lost-update defect caught mid-stream ===")
    faulty = Database(
        "si",
        keys=workload.keys,
        faults=FaultPlan.for_anomaly("lostupdate", rate=0.5, seed=7),
    )
    session, run, first = live_check(faulty, workload)
    assert first, "the injected defect should surface during the run"
    at_txn, violation = first[0]
    print(f"violation surfaced after ingesting {at_txn} transactions:")
    print("  " + violation.format().replace("\n", "\n  "))
    print(f"final verdict over {session.num_ingested} transactions: "
          f"{'satisfied' if session.satisfied else 'VIOLATED'}")

    print()
    print("=== 3. Same stream with a bounded window (memory-capped) ===")
    faulty = Database(
        "si",
        keys=workload.keys,
        faults=FaultPlan.for_anomaly("lostupdate", rate=0.5, seed=7),
    )
    session, run, first = live_check(faulty, workload, window=60)
    checker = session.checker
    print(
        f"window=60: verdict {'satisfied' if session.satisfied else 'VIOLATED'}, "
        f"graph holds {checker.graph.num_nodes()} nodes "
        f"({checker.evicted_count} garbage-collected, "
        f"{checker.stale_reads} stale reads)"
    )
    assert not session.satisfied
    assert checker.graph.num_nodes() <= 62


if __name__ == "__main__":
    main()
