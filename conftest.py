"""Pytest bootstrap: make ``src/`` importable even without installation.

Installing the package (``pip install -e .``) is the normal route; this
fallback lets the test and benchmark suites run directly from a source
checkout (e.g. on machines without network access for build tooling).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
