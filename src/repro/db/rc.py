"""Read-committed engine (weak isolation, used as a lower bound).

Every read observes the latest committed version at the time of the read
(no stable snapshot), writes are buffered, and commit never validates.
Committed histories therefore exhibit NONREPEATABLEREADS, LOSTUPDATE,
FRACTUREDREAD, and most of the other anomalies — useful for exercising the
checkers against a database that genuinely does not provide a strong level.
"""

from __future__ import annotations

from typing import Optional

from .engine import IsolationEngine
from .transaction import TransactionContext

__all__ = ["ReadCommittedEngine"]


class ReadCommittedEngine(IsolationEngine):
    """Reads the latest committed version; never aborts on conflicts."""

    name = "read-committed"

    def read(self, ctx: TransactionContext, key: str) -> Optional[int]:
        own = self._read_own_write(ctx, key)
        if own is not None:
            return own
        version = self.store.latest(key)
        if version is None:
            return None
        ctx.record_read(key, version.value, version.commit_ts)
        return version.value

    def write(self, ctx: TransactionContext, key: str, value: int) -> None:
        ctx.record_write(key, value)

    def prepare_commit(self, ctx: TransactionContext) -> None:
        return None
