"""Serializable engine: snapshot reads with commit-time read validation.

This engine models optimistic serializable concurrency control (the style
the paper refers to as OCC, Section I): transactions read from a begin-time
snapshot, buffer writes, and validate at commit that

* no object in the write set was overwritten since the snapshot
  (first-committer-wins, as under SI), and
* no object in the read set was overwritten since the snapshot
  (backward validation).

A transaction that passes both checks behaves as if it executed atomically
at its commit point, so committed histories are (strictly) serializable.
Read validation makes long transactions abort considerably more often than
under SI — the abort-rate gap the paper measures in Figure 11.
"""

from __future__ import annotations

from typing import Optional

from .errors import TransactionAborted
from .si import SnapshotIsolationEngine
from .transaction import TransactionContext

__all__ = ["SerializableEngine"]


class SerializableEngine(SnapshotIsolationEngine):
    """Optimistic serializable concurrency control (snapshot + read validation)."""

    name = "serializable"

    def prepare_commit(self, ctx: TransactionContext) -> None:
        super().prepare_commit(ctx)
        if ctx.is_read_only:
            # A read-only transaction saw a consistent snapshot and can be
            # serialised at its snapshot point; no validation needed.
            return
        for key, (_, version_ts) in ctx.read_set.items():
            latest = self.store.latest(key)
            if latest is not None and latest.commit_ts > ctx.snapshot_ts and latest.commit_ts != version_ts:
                raise TransactionAborted(
                    ctx.txn_id,
                    f"read-write conflict on {key}: the version read at "
                    f"{version_ts} was overwritten at {latest.commit_ts}",
                )
