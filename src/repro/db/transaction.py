"""Server-side transaction context used by the isolation engines."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

__all__ = ["TxnState", "TransactionContext"]


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class TransactionContext:
    """The database-internal state of one in-flight transaction.

    Attributes:
        txn_id: database-assigned transaction identifier.
        session_id: issuing client session.
        snapshot_ts: logical timestamp of the snapshot the transaction reads
            from (snapshot-based engines).
        start_ts / commit_ts: logical start and commit timestamps.
        read_set: ``key -> (value, version_commit_ts)`` of versions read.
        write_set: ``key -> value`` of buffered, uncommitted writes.
    """

    txn_id: int
    session_id: int
    snapshot_ts: float = 0.0
    start_ts: float = 0.0
    commit_ts: Optional[float] = None
    state: TxnState = TxnState.ACTIVE
    read_set: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    write_set: Dict[str, int] = field(default_factory=dict)
    keys_locked: Set[str] = field(default_factory=set)

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    @property
    def is_read_only(self) -> bool:
        return not self.write_set

    def record_read(self, key: str, value: int, version_ts: float) -> None:
        # Only the first (external) read of a key matters for validation.
        self.read_set.setdefault(key, (value, version_ts))

    def record_write(self, key: str, value: int) -> None:
        self.write_set[key] = value
