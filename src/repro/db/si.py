"""Snapshot isolation engine (MVCC with first-committer-wins).

Reads observe the snapshot taken when the transaction begins; writes are
buffered and validated at commit with the *first-committer-wins* rule: if
any object in the write set has a version committed after the transaction's
snapshot, the transaction aborts.  This prevents LOSTUPDATE (and therefore
the DIVERGENCE pattern) but allows WRITESKEW — exactly the behaviour
PostgreSQL's REPEATABLE READ (SI) level exhibits in the paper's experiments.
"""

from __future__ import annotations

from typing import Optional

from .engine import IsolationEngine
from .errors import TransactionAborted
from .transaction import TransactionContext

__all__ = ["SnapshotIsolationEngine"]


class SnapshotIsolationEngine(IsolationEngine):
    """Multi-version snapshot isolation with first-committer-wins validation."""

    name = "si"

    def read(self, ctx: TransactionContext, key: str) -> Optional[int]:
        own = self._read_own_write(ctx, key)
        if own is not None:
            return own
        version = self.store.read_at(key, ctx.snapshot_ts)
        if version is None:
            return None
        ctx.record_read(key, version.value, version.commit_ts)
        return version.value

    def write(self, ctx: TransactionContext, key: str, value: int) -> None:
        ctx.record_write(key, value)

    def prepare_commit(self, ctx: TransactionContext) -> None:
        for key in ctx.write_set:
            latest = self.store.latest(key)
            if latest is not None and latest.commit_ts > ctx.snapshot_ts:
                raise TransactionAborted(
                    ctx.txn_id,
                    f"write-write conflict on {key}: version committed at "
                    f"{latest.commit_ts} is newer than snapshot {ctx.snapshot_ts}",
                )
