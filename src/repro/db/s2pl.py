"""Strict two-phase locking engine (pessimistic, strictly serializable).

Reads take shared locks and writes take exclusive locks; all locks are held
until the transaction finishes, which makes committed executions strictly
serializable (the commit point of each transaction orders it consistently
with real time).  The simulator is single-threaded, so lock *waiting* is
modelled with a no-wait policy: a conflicting request aborts the requester,
and the workload runner retries it later.  This keeps the pessimistic cost
model of the paper — long transactions hold more locks for longer, so they
conflict, abort, and retry more.
"""

from __future__ import annotations

from typing import Optional

from ..storage.locks import LockConflict
from .engine import IsolationEngine
from .errors import TransactionAborted
from .transaction import TransactionContext

__all__ = ["StrictTwoPhaseLockingEngine"]


class StrictTwoPhaseLockingEngine(IsolationEngine):
    """Strict 2PL over the latest committed versions."""

    name = "s2pl"

    def read(self, ctx: TransactionContext, key: str) -> Optional[int]:
        own = self._read_own_write(ctx, key)
        if own is not None:
            return own
        try:
            self.locks.acquire_shared(key, ctx.txn_id)
        except LockConflict as conflict:
            raise TransactionAborted(ctx.txn_id, str(conflict)) from conflict
        ctx.keys_locked.add(key)
        version = self.store.latest(key)
        if version is None:
            return None
        ctx.record_read(key, version.value, version.commit_ts)
        return version.value

    def write(self, ctx: TransactionContext, key: str, value: int) -> None:
        try:
            self.locks.acquire_exclusive(key, ctx.txn_id)
        except LockConflict as conflict:
            raise TransactionAborted(ctx.txn_id, str(conflict)) from conflict
        ctx.keys_locked.add(key)
        ctx.record_write(key, value)

    def prepare_commit(self, ctx: TransactionContext) -> None:
        # All conflicts were resolved at lock-acquisition time; nothing to do.
        return None
