"""The transactional key-value database simulator.

This is the "black box" the workload runners stress: an in-memory,
single-process database with pluggable isolation engines (snapshot
isolation, optimistic serializable, strict two-phase locking, read
committed) and optional fault injection.  Clients interact through the
usual ``begin`` / ``read`` / ``write`` / ``commit`` / ``abort`` interface
and only observe operation results and abort errors — exactly the
information that ends up in a recorded history.

The simulator is single-threaded; concurrency comes from the workload
runner interleaving the sessions' operations.  A logical clock advances on
every database call, and transaction begin/commit times are expressed in
that clock, providing the real-time order needed for SSER checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from ..core.result import IsolationLevel
from ..storage.clock import LogicalClock
from ..storage.locks import LockManager
from ..storage.mvcc import VersionedStore
from .engine import IsolationEngine
from .errors import TransactionAborted, TransactionStateError
from .faults import FaultPlan, FaultyEngine
from .rc import ReadCommittedEngine
from .s2pl import StrictTwoPhaseLockingEngine
from .ser import SerializableEngine
from .si import SnapshotIsolationEngine
from .transaction import TransactionContext, TxnState

__all__ = ["Database", "DatabaseStats", "ENGINE_REGISTRY", "engine_for_level"]


#: Registry of engine names to engine classes.
ENGINE_REGISTRY = {
    "si": SnapshotIsolationEngine,
    "snapshot-isolation": SnapshotIsolationEngine,
    "serializable": SerializableEngine,
    "ser": SerializableEngine,
    "occ": SerializableEngine,
    "s2pl": StrictTwoPhaseLockingEngine,
    "sser": StrictTwoPhaseLockingEngine,
    "read-committed": ReadCommittedEngine,
    "rc": ReadCommittedEngine,
}


def engine_for_level(level: IsolationLevel) -> str:
    """Default engine name for an isolation level."""
    return {
        IsolationLevel.READ_COMMITTED: "read-committed",
        IsolationLevel.SNAPSHOT_ISOLATION: "si",
        IsolationLevel.SERIALIZABILITY: "serializable",
        IsolationLevel.STRICT_SERIALIZABILITY: "s2pl",
        IsolationLevel.LINEARIZABILITY: "s2pl",
    }[level]


@dataclass
class DatabaseStats:
    """Counters the experiments report on (abort rates, operation counts)."""

    begun: int = 0
    committed: int = 0
    aborted: int = 0
    reads: int = 0
    writes: int = 0
    injected_anomalies: Dict[str, int] = field(default_factory=dict)

    @property
    def abort_rate(self) -> float:
        """Fraction of finished transactions that aborted."""
        finished = self.committed + self.aborted
        return self.aborted / finished if finished else 0.0


class Database:
    """An in-memory transactional KV store with a pluggable isolation engine.

    Args:
        isolation: engine name (see :data:`ENGINE_REGISTRY`) or an
            :class:`~repro.core.result.IsolationLevel`.
        keys: objects to pre-populate with ``initial_value`` (the ``⊥T``
            writes); objects may also be created lazily by writes.
        initial_value: value installed for each pre-populated object.
        faults: optional :class:`~repro.db.faults.FaultPlan` turning the
            database into a buggy one.
        operation_cost: logical-clock ticks consumed by each operation;
            commit consumes one extra tick.
    """

    def __init__(
        self,
        isolation: Union[str, IsolationLevel] = "si",
        *,
        keys: Optional[Iterable[str]] = None,
        initial_value: int = 0,
        faults: Optional[FaultPlan] = None,
        operation_cost: float = 1.0,
    ) -> None:
        if isinstance(isolation, IsolationLevel):
            isolation = engine_for_level(isolation)
        if isolation not in ENGINE_REGISTRY:
            raise ValueError(
                f"unknown isolation engine {isolation!r}; known: {sorted(ENGINE_REGISTRY)}"
            )
        self.isolation_name = isolation
        self.clock = LogicalClock()
        self.store = VersionedStore()
        self.locks = LockManager()
        engine: IsolationEngine = ENGINE_REGISTRY[isolation](self.store, self.clock, self.locks)
        if faults is not None and faults.any_enabled:
            engine = FaultyEngine(engine, faults)
        self.engine = engine
        self.operation_cost = operation_cost
        self.stats = DatabaseStats()
        self._next_txn_id = 1
        self._active: Dict[int, TransactionContext] = {}
        if keys is not None:
            self.store.load_initial(keys, value=initial_value)

    # ------------------------------------------------------------------
    # Client interface
    # ------------------------------------------------------------------
    def begin(self, session_id: int = 0) -> TransactionContext:
        """Start a new transaction on behalf of ``session_id``."""
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        start_ts = self.clock.tick(self.operation_cost)
        ctx = TransactionContext(txn_id=txn_id, session_id=session_id, start_ts=start_ts)
        self.engine.begin(ctx)
        self._active[txn_id] = ctx
        self.stats.begun += 1
        return ctx

    def read(self, ctx: TransactionContext, key: str) -> Optional[int]:
        """Read ``key``; returns ``None`` when the object does not exist."""
        self._require_active(ctx)
        self.clock.tick(self.operation_cost)
        self.stats.reads += 1
        try:
            return self.engine.read(ctx, key)
        except TransactionAborted:
            self._finish_abort(ctx)
            raise

    def write(self, ctx: TransactionContext, key: str, value: int) -> None:
        """Buffer a write of ``value`` to ``key``."""
        self._require_active(ctx)
        self.clock.tick(self.operation_cost)
        self.stats.writes += 1
        try:
            self.engine.write(ctx, key, value)
        except TransactionAborted:
            self._finish_abort(ctx)
            raise

    def commit(self, ctx: TransactionContext) -> float:
        """Commit the transaction; returns the commit timestamp.

        Raises :class:`TransactionAborted` when validation fails, in which
        case the transaction is rolled back.
        """
        self._require_active(ctx)
        try:
            self.engine.prepare_commit(ctx)
        except TransactionAborted:
            self._finish_abort(ctx)
            raise
        commit_ts = self.clock.tick(self.operation_cost)
        ctx.commit_ts = commit_ts
        self.engine.apply_commit(ctx, commit_ts)
        self.engine.cleanup(ctx)
        ctx.state = TxnState.COMMITTED
        self._active.pop(ctx.txn_id, None)
        self.stats.committed += 1
        return commit_ts

    def abort(self, ctx: TransactionContext) -> None:
        """Abort the transaction at the client's request."""
        if not ctx.is_active:
            return
        self._finish_abort(ctx)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def committed_value(self, key: str) -> Optional[int]:
        """The latest committed value of ``key`` (for tests and examples)."""
        version = self.store.latest(key)
        return version.value if version else None

    def now(self) -> float:
        return self.clock.now()

    @property
    def injected_anomalies(self) -> Dict[str, int]:
        """Defects the fault injector actually fired (empty for a correct DB)."""
        if isinstance(self.engine, FaultyEngine):
            return dict(self.engine.injections)
        return {}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_active(self, ctx: TransactionContext) -> None:
        if not ctx.is_active:
            raise TransactionStateError(
                f"transaction T{ctx.txn_id} is {ctx.state.value}; expected active"
            )

    def _finish_abort(self, ctx: TransactionContext) -> None:
        abort_ts = self.clock.tick(self.operation_cost)
        if isinstance(self.engine, FaultyEngine):
            self.engine.apply_abort(ctx, abort_ts)
        self.engine.cleanup(ctx)
        ctx.state = TxnState.ABORTED
        self._active.pop(ctx.txn_id, None)
        self.stats.aborted += 1
        self.stats.injected_anomalies = self.injected_anomalies
