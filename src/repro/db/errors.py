"""Exceptions raised by the transactional database simulator.

:class:`TransactionAborted` doubles as the *retryable-abort* contract shared
with the real-database adapters (:mod:`repro.adapters`): any engine —
simulated or real — signals "this transaction lost a conflict, retry it with
fresh values" by raising it (or a subclass), and both the serial
:class:`~repro.workloads.runner.WorkloadRunner` and the concurrent
:class:`~repro.adapters.collector.Collector` handle it identically.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "DatabaseError",
    "TransactionAborted",
    "TransactionStateError",
    "SQLITE_RETRYABLE_MARKERS",
    "retryable_sqlite_abort",
]


class DatabaseError(Exception):
    """Base class for simulator errors."""


class TransactionAborted(DatabaseError):
    """The database aborted the transaction (conflict, lock conflict, ...).

    Mirrors the serialization-failure / deadlock errors a production database
    returns to the client, which the workload runner handles by retrying.
    """

    #: Whether the client should retry the transaction (with fresh unique
    #: write values).  Conflict aborts are retryable by definition; subclasses
    #: may override for permanent failures.
    retryable = True

    def __init__(self, txn_id: int, reason: str) -> None:
        super().__init__(f"transaction T{txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class TransactionStateError(DatabaseError):
    """An operation was issued on a transaction in the wrong state
    (e.g. reading after commit)."""


#: Substrings of ``sqlite3.OperationalError`` messages that signal lock /
#: busy contention — transient conflicts a client resolves by retrying, the
#: exact counterpart of the simulator's conflict aborts.  State errors
#: ("cannot start a transaction within a transaction", ...) are deliberately
#: absent: retrying cannot fix a protocol bug, so they must propagate.
SQLITE_RETRYABLE_MARKERS = (
    "database is locked",
    "database table is locked",
    "database is busy",
    "busy",
)


def retryable_sqlite_abort(exc: BaseException, txn_id: int = -1) -> Optional[TransactionAborted]:
    """Map a SQLite busy/locked error onto the retryable-abort path.

    Returns a :class:`TransactionAborted` carrying the original message when
    ``exc`` is a lock-contention ``sqlite3.OperationalError`` (so collector
    retries mirror simulator abort handling), or ``None`` for errors that
    must propagate (corruption, misuse, syntax, ...).
    """
    import sqlite3  # stdlib; imported lazily to keep the simulator sqlite-free

    if not isinstance(exc, sqlite3.OperationalError):
        return None
    message = str(exc).lower()
    if any(marker in message for marker in SQLITE_RETRYABLE_MARKERS):
        abort = TransactionAborted(txn_id, f"sqlite: {exc}")
        abort.__cause__ = exc
        return abort
    return None
