"""Exceptions raised by the transactional database simulator."""

from __future__ import annotations

__all__ = ["DatabaseError", "TransactionAborted", "TransactionStateError"]


class DatabaseError(Exception):
    """Base class for simulator errors."""


class TransactionAborted(DatabaseError):
    """The database aborted the transaction (conflict, lock conflict, ...).

    Mirrors the serialization-failure / deadlock errors a production database
    returns to the client, which the workload runner handles by retrying.
    """

    def __init__(self, txn_id: int, reason: str) -> None:
        super().__init__(f"transaction T{txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class TransactionStateError(DatabaseError):
    """An operation was issued on a transaction in the wrong state
    (e.g. reading after commit)."""
