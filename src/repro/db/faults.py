"""Fault injection: buggy engine variants that produce real-world anomalies.

The paper's Q4 experiments (Table II, Figures 12, 13, 14, 18) detect
isolation bugs in production databases — lost update in MariaDB Galera,
write skew and long fork in PostgreSQL, aborted reads in MongoDB and
Cassandra, a causality violation in Dgraph.  We cannot ship those databases,
so this module reproduces the *failure modes*: a :class:`FaultyEngine` wraps
any base engine and, with configurable probabilities, injects the defect
that causes each anomaly class:

* ``lost_update_rate`` — skip first-committer-wins validation, so two
  concurrent RMWs on the same object both commit (MariaDB Galera bug).
* ``write_skew_rate`` — skip read-set validation in a serializable engine,
  letting write-skew (and long-fork) patterns commit (PostgreSQL bugs).
* ``stale_read_rate`` — serve a read from an older committed version than
  the snapshot requires, producing causality violations, fractured reads,
  non-monotonic reads, and session-guarantee violations (Dgraph bug).
* ``dirty_install_rate`` — install the writes of an aborted transaction, so
  later transactions read from an aborted transaction (MongoDB/Cassandra
  bugs).

The injected defect only changes what the database *does*; detection still
happens end-to-end through the recorded history and the checkers, exactly
as in the paper's black-box setting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from .engine import IsolationEngine
from .errors import TransactionAborted
from .transaction import TransactionContext

__all__ = ["FaultPlan", "FaultyEngine"]


@dataclass(frozen=True)
class FaultPlan:
    """Probabilities of each injected defect (0.0 disables a defect)."""

    lost_update_rate: float = 0.0
    write_skew_rate: float = 0.0
    stale_read_rate: float = 0.0
    dirty_install_rate: float = 0.0
    seed: int = 0

    @classmethod
    def for_anomaly(cls, anomaly: str, rate: float = 0.2, seed: int = 0) -> "FaultPlan":
        """A plan that injects the defect behind a named anomaly class."""
        anomaly = anomaly.lower().replace("_", "").replace("-", "")
        if anomaly in {"lostupdate", "divergence"}:
            return cls(lost_update_rate=rate, seed=seed)
        if anomaly in {"writeskew", "longfork"}:
            return cls(write_skew_rate=rate, lost_update_rate=0.0, seed=seed)
        if anomaly in {
            "causalityviolation",
            "fracturedread",
            "nonmonotonicread",
            "sessionguaranteeviolation",
            "staleread",
        }:
            return cls(stale_read_rate=rate, seed=seed)
        if anomaly in {"abortedread", "readuncommitted", "dirtyread"}:
            return cls(dirty_install_rate=rate, seed=seed)
        raise ValueError(f"no fault plan known for anomaly {anomaly!r}")

    @property
    def any_enabled(self) -> bool:
        return any(
            rate > 0.0
            for rate in (
                self.lost_update_rate,
                self.write_skew_rate,
                self.stale_read_rate,
                self.dirty_install_rate,
            )
        )


class FaultyEngine(IsolationEngine):
    """Wraps a base engine and injects the defects of a :class:`FaultPlan`."""

    def __init__(self, inner: IsolationEngine, plan: FaultPlan) -> None:
        super().__init__(inner.store, inner.clock, inner.locks)
        self.inner = inner
        self.plan = plan
        self.name = f"faulty-{inner.name}"
        self._rng = random.Random(plan.seed)
        #: Number of times each defect actually fired (for experiment logs).
        self.injections = {
            "lost_update": 0,
            "write_skew": 0,
            "stale_read": 0,
            "dirty_install": 0,
        }

    # ------------------------------------------------------------------
    # Engine interface, delegating to the wrapped engine
    # ------------------------------------------------------------------
    def begin(self, ctx: TransactionContext) -> None:
        self.inner.begin(ctx)

    def read(self, ctx: TransactionContext, key: str) -> Optional[int]:
        if (
            self.plan.stale_read_rate > 0.0
            and self._rng.random() < self.plan.stale_read_rate
            and ctx.write_set.get(key) is None
        ):
            stale = self._stale_version(ctx, key)
            if stale is not None:
                self.injections["stale_read"] += 1
                ctx.record_read(key, stale[0], stale[1])
                return stale[0]
        return self.inner.read(ctx, key)

    def write(self, ctx: TransactionContext, key: str, value: int) -> None:
        self.inner.write(ctx, key, value)

    def prepare_commit(self, ctx: TransactionContext) -> None:
        try:
            self.inner.prepare_commit(ctx)
        except TransactionAborted as abort:
            if "write-write conflict" in abort.reason and (
                self._rng.random() < self.plan.lost_update_rate
            ):
                self.injections["lost_update"] += 1
                return
            if "read-write conflict" in abort.reason and (
                self._rng.random() < self.plan.write_skew_rate
            ):
                self.injections["write_skew"] += 1
                return
            raise

    def apply_commit(self, ctx: TransactionContext, commit_ts: float) -> None:
        self.inner.apply_commit(ctx, commit_ts)

    def apply_abort(self, ctx: TransactionContext, abort_ts: float) -> bool:
        """Hook called by the database when a transaction aborts.

        Returns ``True`` when the aborted transaction's writes were (wrongly)
        installed, which is the dirty-install defect.
        """
        if (
            ctx.write_set
            and self.plan.dirty_install_rate > 0.0
            and self._rng.random() < self.plan.dirty_install_rate
        ):
            self.injections["dirty_install"] += 1
            self.inner.apply_commit(ctx, abort_ts)
            return True
        return False

    def cleanup(self, ctx: TransactionContext) -> None:
        self.inner.cleanup(ctx)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _stale_version(self, ctx: TransactionContext, key: str):
        """Pick a committed version older than the one the snapshot would see."""
        versions = self.store.versions(key)
        if len(versions) < 2:
            return None
        visible = [v for v in versions if v.commit_ts <= ctx.snapshot_ts]
        if len(visible) < 2:
            return None
        stale = self._rng.choice(visible[:-1])
        return stale.value, stale.commit_ts
