"""The in-memory transactional database simulator: the "black box" that the
workload generators stress and from which histories are recorded."""

from .database import Database, DatabaseStats, ENGINE_REGISTRY, engine_for_level
from .errors import DatabaseError, TransactionAborted, TransactionStateError
from .faults import FaultPlan, FaultyEngine
from .rc import ReadCommittedEngine
from .s2pl import StrictTwoPhaseLockingEngine
from .ser import SerializableEngine
from .si import SnapshotIsolationEngine
from .transaction import TransactionContext, TxnState

__all__ = [
    "Database",
    "DatabaseError",
    "DatabaseStats",
    "ENGINE_REGISTRY",
    "FaultPlan",
    "FaultyEngine",
    "ReadCommittedEngine",
    "SerializableEngine",
    "SnapshotIsolationEngine",
    "StrictTwoPhaseLockingEngine",
    "TransactionAborted",
    "TransactionContext",
    "TransactionStateError",
    "TxnState",
    "engine_for_level",
]
