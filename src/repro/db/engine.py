"""Abstract isolation engine interface for the database simulator.

Every isolation level supported by :class:`repro.db.Database` is implemented
as an engine exposing ``begin`` / ``read`` / ``write`` / ``commit`` /
``abort``.  Engines share the versioned store and logical clock owned by the
database; they differ in which version a read observes and in the validation
performed at commit time.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..storage.clock import LogicalClock
from ..storage.locks import LockManager
from ..storage.mvcc import VersionedStore
from .transaction import TransactionContext

__all__ = ["IsolationEngine"]


class IsolationEngine(abc.ABC):
    """Base class of the pluggable concurrency-control engines."""

    #: Human-readable engine name used in statistics and error messages.
    name: str = "abstract"

    def __init__(self, store: VersionedStore, clock: LogicalClock, locks: LockManager) -> None:
        self.store = store
        self.clock = clock
        self.locks = locks

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def begin(self, ctx: TransactionContext) -> None:
        """Initialise engine-specific state for a new transaction."""
        ctx.snapshot_ts = self.clock.now()

    @abc.abstractmethod
    def read(self, ctx: TransactionContext, key: str) -> Optional[int]:
        """Read ``key`` on behalf of ``ctx``; may raise ``TransactionAborted``."""

    @abc.abstractmethod
    def write(self, ctx: TransactionContext, key: str, value: int) -> None:
        """Buffer a write of ``key`` on behalf of ``ctx``."""

    @abc.abstractmethod
    def prepare_commit(self, ctx: TransactionContext) -> None:
        """Validate the transaction; raise ``TransactionAborted`` to reject it."""

    def apply_commit(self, ctx: TransactionContext, commit_ts: float) -> None:
        """Install the transaction's writes at ``commit_ts``."""
        for key, value in ctx.write_set.items():
            self.store.install(key, value, commit_ts, ctx.txn_id)

    def cleanup(self, ctx: TransactionContext) -> None:
        """Release engine resources after commit or abort."""
        self.locks.release_all(ctx.txn_id)

    # ------------------------------------------------------------------
    # Helpers shared by snapshot-based engines
    # ------------------------------------------------------------------
    def _read_own_write(self, ctx: TransactionContext, key: str) -> Optional[int]:
        """Return the transaction's own buffered write for ``key``, if any."""
        return ctx.write_set.get(key)
