"""A multi-version key-value store.

Each object keeps a list of committed versions ordered by commit timestamp.
Snapshot-based engines read the latest version with a commit timestamp not
exceeding their snapshot; lock-based engines simply use the latest version.
Uncommitted writes never enter the store — engines buffer them in the
transaction's write set and install them atomically at commit.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

__all__ = ["Version", "VersionedStore"]


@dataclass(frozen=True)
class Version:
    """One committed version of an object."""

    value: int
    commit_ts: float
    txn_id: int


class VersionedStore:
    """Versioned storage for a set of objects."""

    def __init__(self) -> None:
        self._versions: Dict[str, List[Version]] = {}

    # ------------------------------------------------------------------
    # Loading / installing
    # ------------------------------------------------------------------
    def load_initial(self, keys: Iterable[str], value: int = 0, txn_id: int = -1) -> None:
        """Install the initial version of each object (the ``⊥T`` writes)."""
        for key in keys:
            self._versions.setdefault(key, []).insert(0, Version(value, 0.0, txn_id))

    def install(self, key: str, value: int, commit_ts: float, txn_id: int) -> None:
        """Install a committed version of ``key``.

        Versions are kept sorted by commit timestamp; in the simulator commit
        timestamps are strictly increasing, so this is an append in practice.
        """
        versions = self._versions.setdefault(key, [])
        version = Version(value, commit_ts, txn_id)
        if not versions or versions[-1].commit_ts <= commit_ts:
            versions.append(version)
        else:
            index = bisect.bisect_right([v.commit_ts for v in versions], commit_ts)
            versions.insert(index, version)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def exists(self, key: str) -> bool:
        return bool(self._versions.get(key))

    def latest(self, key: str) -> Optional[Version]:
        """The most recently committed version of ``key``, or ``None``."""
        versions = self._versions.get(key)
        return versions[-1] if versions else None

    def read_at(self, key: str, snapshot_ts: float) -> Optional[Version]:
        """The latest version with ``commit_ts <= snapshot_ts``, or ``None``."""
        versions = self._versions.get(key)
        if not versions:
            return None
        index = bisect.bisect_right([v.commit_ts for v in versions], snapshot_ts)
        if index == 0:
            return None
        return versions[index - 1]

    def versions(self, key: str) -> List[Version]:
        """All committed versions of ``key``, oldest first."""
        return list(self._versions.get(key, ()))

    def last_writer_after(self, key: str, timestamp: float) -> Optional[Version]:
        """The earliest version of ``key`` committed strictly after ``timestamp``."""
        versions = self._versions.get(key)
        if not versions:
            return None
        index = bisect.bisect_right([v.commit_ts for v in versions], timestamp)
        if index >= len(versions):
            return None
        return versions[index]

    def keys(self) -> List[str]:
        return sorted(self._versions)

    def __len__(self) -> int:
        return len(self._versions)
