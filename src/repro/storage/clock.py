"""Logical clocks for the database simulator.

The simulator interleaves client sessions deterministically, so it cannot
use wall-clock time to order transactions.  Instead it advances a
:class:`LogicalClock` on every operation; transaction start/finish
timestamps, version commit timestamps, and the real-time order of recorded
histories are all expressed in this logical time.

:class:`SkewedClock` adds per-session clock skew, modelling the imperfect
wall-clock timestamps a real strict-serializability checker has to cope
with (paper, Section VII).
"""

from __future__ import annotations

from typing import Dict

__all__ = ["LogicalClock", "SkewedClock"]


class LogicalClock:
    """A strictly monotonically increasing logical clock."""

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self._now = float(start)
        self._step = float(step)

    def now(self) -> float:
        """The current time, without advancing the clock."""
        return self._now

    def tick(self, amount: float = None) -> float:
        """Advance the clock and return the new time."""
        self._now += self._step if amount is None else float(amount)
        return self._now

    def __repr__(self) -> str:
        return f"LogicalClock(now={self._now})"


class SkewedClock:
    """A view of a :class:`LogicalClock` with a per-session constant offset.

    Used to inject bounded clock skew into recorded start/finish timestamps
    so that SSER checking can be exercised with imperfect clocks.
    """

    def __init__(self, base: LogicalClock, skew_per_session: Dict[int, float] = None) -> None:
        self._base = base
        self._skew: Dict[int, float] = dict(skew_per_session or {})

    def set_skew(self, session_id: int, skew: float) -> None:
        self._skew[session_id] = float(skew)

    def now(self, session_id: int = 0) -> float:
        """The session-local current time (base time plus the session's skew)."""
        return self._base.now() + self._skew.get(session_id, 0.0)

    def tick(self, session_id: int = 0, amount: float = None) -> float:
        """Advance the underlying clock and return the session-local time."""
        self._base.tick(amount)
        return self.now(session_id)
