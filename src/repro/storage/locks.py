"""A simple shared/exclusive lock manager with a no-wait conflict policy.

The strict two-phase locking engine (:mod:`repro.db.s2pl`) acquires shared
locks for reads and exclusive locks for writes, holding them until commit.
Because the simulator interleaves sessions in a single thread, blocking is
modelled with a *no-wait* policy: a conflicting acquisition raises
:class:`LockConflict` and the engine aborts (and the workload runner
retries) the transaction.  This matches the pessimistic-concurrency-control
cost model of the paper: longer transactions hold more locks for longer and
therefore abort/retry more often.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Dict, Set

__all__ = ["LockKind", "LockConflict", "LockManager"]


class LockKind(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class LockConflict(Exception):
    """Raised when a lock cannot be granted under the no-wait policy."""

    def __init__(self, key: str, requested: LockKind, holder: int) -> None:
        super().__init__(f"lock conflict on {key}: {requested.value} blocked by T{holder}")
        self.key = key
        self.requested = requested
        self.holder = holder


class LockManager:
    """Tracks shared and exclusive locks per object."""

    def __init__(self) -> None:
        self._shared: Dict[str, Set[int]] = defaultdict(set)
        self._exclusive: Dict[str, int] = {}

    def acquire_shared(self, key: str, txn_id: int) -> None:
        """Grant a shared lock, or raise :class:`LockConflict`."""
        holder = self._exclusive.get(key)
        if holder is not None and holder != txn_id:
            raise LockConflict(key, LockKind.SHARED, holder)
        self._shared[key].add(txn_id)

    def acquire_exclusive(self, key: str, txn_id: int) -> None:
        """Grant (or upgrade to) an exclusive lock, or raise :class:`LockConflict`."""
        holder = self._exclusive.get(key)
        if holder is not None and holder != txn_id:
            raise LockConflict(key, LockKind.EXCLUSIVE, holder)
        readers = self._shared.get(key, set())
        other_readers = readers - {txn_id}
        if other_readers:
            raise LockConflict(key, LockKind.EXCLUSIVE, next(iter(other_readers)))
        self._exclusive[key] = txn_id

    def holds_exclusive(self, key: str, txn_id: int) -> bool:
        return self._exclusive.get(key) == txn_id

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` (called at commit/abort)."""
        for readers in self._shared.values():
            readers.discard(txn_id)
        for key in [k for k, holder in self._exclusive.items() if holder == txn_id]:
            del self._exclusive[key]

    def locks_held(self, txn_id: int) -> int:
        """Number of locks currently held by ``txn_id`` (for statistics)."""
        shared = sum(1 for readers in self._shared.values() if txn_id in readers)
        exclusive = sum(1 for holder in self._exclusive.values() if holder == txn_id)
        return shared + exclusive
