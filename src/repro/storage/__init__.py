"""Storage primitives for the in-memory transactional database simulator:
a logical clock, a multi-version key-value store, and a lock manager."""

from .clock import LogicalClock, SkewedClock
from .locks import LockKind, LockManager, LockConflict
from .mvcc import Version, VersionedStore

__all__ = [
    "LockConflict",
    "LockKind",
    "LockManager",
    "LogicalClock",
    "SkewedClock",
    "Version",
    "VersionedStore",
]
