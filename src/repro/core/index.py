"""The shared :class:`HistoryIndex`: one scan, many consumers.

Historically every layer of the pipeline re-derived the same per-history
structures from the raw :class:`~repro.core.model.History`: the INT pre-pass
built a write index, ``CHECKSI`` built another for the DIVERGENCE scan,
``BUILDDEPENDENCY`` a third, and each solver baseline a fourth — plus as
many full passes over every transaction's operations.  The checkers are
linear-time on paper, but the constant factor was "number of consumers".

:class:`HistoryIndex` is built **once** per history and is the sole
history-scanning entry point for the batch pipeline:

* transaction ids and object keys are interned to dense integers
  (``txn_ids`` / ``key_names`` and their reverse maps), which is what the
  shard partitioner (:mod:`repro.parallel.partition`) and the dependency
  graph's integer fast path operate on;
* the write index — ``(key, value) -> final/intermediate writer`` — is
  API-compatible with :class:`~repro.core.intcheck.WriteIndex`, so the
  read-provenance classification runs against the shared index;
* every committed transaction's external reads are resolved to
  :class:`ReadRecord` entries (writer transaction, RMW flag, value written
  back), which is all ``BUILDDEPENDENCY``, the DIVERGENCE scan, and the
  polygraph encoders need;
* session order, real-time order, per-key version chains, the INT verdict,
  and the MT-validation verdict are computed once and cached.

The intended usage is one :meth:`build` per ``MTChecker.verify`` call,
threaded down through :func:`~repro.core.checkers.check_ser` /
``check_si`` / ``check_sser`` via their ``index=`` parameter; every checker
also accepts a bare history and builds the index itself, so standalone use
keeps working.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Set, Tuple

from .model import History, Transaction

__all__ = ["ReadRecord", "VersionEntry", "HistoryIndex"]


class ReadRecord(NamedTuple):
    """One resolved external read of a committed transaction.

    Attributes:
        key: the object read.
        value: the value observed.
        writer: the transaction whose *final* write produced ``value`` on
            ``key``, or ``None`` (thin-air / intermediate / own value).
        writes_key: whether the reader also writes ``key`` (the RMW pattern
            that turns the WR edge into a WW edge).
        written_value: the reader's final write on ``key`` (``None`` unless
            ``writes_key``); used by the DIVERGENCE scan.
    """

    key: str
    value: Optional[int]
    writer: Optional[Transaction]
    writes_key: bool
    written_value: Optional[int]


class VersionEntry(NamedTuple):
    """One version of an object: its writer plus the observers of the version."""

    value: Optional[int]
    writer_id: int
    reader_ids: Tuple[int, ...]
    overwriter_ids: Tuple[int, ...]


class HistoryIndex:
    """Per-history shared index: dense interning + resolved provenance.

    Build with :meth:`build`; the class-level :attr:`builds` counter exists
    so tests can assert the "one construction per verify call" invariant.

    Example:
        >>> from repro.core.model import History, Transaction, read, write
        >>> t1 = Transaction(1, [read("x", 0), write("x", 1)])
        >>> index = HistoryIndex.build(
        ...     History.from_transactions([[t1]], initial_keys=["x"]))
        >>> index.key_names, index.num_committed
        (['x'], 1)
        >>> index.final_writer("x", 1).txn_id
        1
    """

    #: Total number of indexes constructed (test instrumentation).
    builds = 0

    def __init__(self, history: History) -> None:
        type(self).builds += 1
        self.history = history

        #: Every transaction, including ``⊥T`` and aborted ones (scan order).
        self.transactions: List[Transaction] = history.transactions(include_initial=True)
        #: Dense id per transaction: ``txn_ids[dense] == txn_id``.
        self.txn_ids: List[int] = []
        self.txn_dense: Dict[int, int] = {}
        #: Dense id per object key: ``key_names[dense] == key``.
        self.key_names: List[str] = []
        self.key_dense: Dict[str, int] = {}
        #: Per dense transaction: sorted dense key ids it touches.
        self.txn_keys: List[List[int]] = []

        self.committed: List[Transaction] = []
        self.committed_non_initial: List[Transaction] = []
        self.committed_ids: Set[int] = set()

        self._final: Dict[Tuple[str, Optional[int]], Transaction] = {}
        self._intermediate: Dict[Tuple[str, Optional[int]], Transaction] = {}
        self._final_writes: Dict[int, Dict[str, int]] = {}
        self._raw_reads: Dict[int, List[Tuple[str, Optional[int], bool, Optional[int]]]] = {}
        self._reads: Dict[int, List[ReadRecord]] = {}

        # Lazy caches.
        self._session_pairs: Optional[List[Tuple[Transaction, Transaction]]] = None
        self._rt_pairs: Dict[bool, List[Tuple[Transaction, Transaction]]] = {}
        self._int_violations: Optional[list] = None
        self._mt_problems: Optional[list] = None
        self._versions: Optional[Dict[str, List[VersionEntry]]] = None
        self._stream: Optional[List[Transaction]] = None

        self._scan()
        self._resolve_reads()

    @classmethod
    def build(cls, history: History) -> "HistoryIndex":
        """Construct the index for ``history`` (one linear scan)."""
        return cls(history)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _scan(self) -> None:
        """Single pass: intern ids/keys, index writes, collect raw reads."""
        for txn in self.transactions:
            dense = len(self.txn_ids)
            self.txn_ids.append(txn.txn_id)
            self.txn_dense[txn.txn_id] = dense
            if txn.committed:
                self.committed.append(txn)
                self.committed_ids.add(txn.txn_id)
                if not txn.is_initial:
                    self.committed_non_initial.append(txn)

            keys_here: Set[int] = set()
            finals: Dict[str, int] = {}
            last_write: Dict[str, Optional[int]] = {}
            written: Set[str] = set()
            reads: List[Tuple[str, Optional[int]]] = []
            read_keys: Set[str] = set()
            for op in txn.operations:
                kid = self.key_dense.get(op.key)
                if kid is None:
                    kid = len(self.key_names)
                    self.key_dense[op.key] = kid
                    self.key_names.append(op.key)
                keys_here.add(kid)
                if op.is_write:
                    if op.key in last_write:
                        self._intermediate[(op.key, last_write[op.key])] = txn
                    last_write[op.key] = op.value
                    written.add(op.key)
                    if op.value is not None:
                        finals[op.key] = op.value
                elif (
                    op.key not in written
                    and op.key not in read_keys
                    and op.value is not None
                ):
                    # Mirrors Transaction.external_reads(): the first read of
                    # a key before any own write on it.
                    read_keys.add(op.key)
                    reads.append((op.key, op.value))
            for key, value in last_write.items():
                self._final[(key, value)] = txn
            self._final_writes[txn.txn_id] = finals
            if txn.committed and not txn.is_initial:
                self._raw_reads[txn.txn_id] = [
                    (key, value, key in written, last_write.get(key))
                    for key, value in reads
                ]
            self.txn_keys.append(sorted(keys_here))

    def _resolve_reads(self) -> None:
        """Second pass: attribute every external read to its writer."""
        for txn in self.committed_non_initial:
            records = [
                ReadRecord(
                    key=key,
                    value=value,
                    writer=self._final.get((key, value)),
                    writes_key=writes_key,
                    written_value=written_value,
                )
                for key, value, writes_key, written_value in self._raw_reads.get(
                    txn.txn_id, ()
                )
            ]
            self._reads[txn.txn_id] = records
        # The raw tuples are fully superseded by the resolved records.
        self._raw_reads.clear()

    # ------------------------------------------------------------------
    # Write index (API-compatible with intcheck.WriteIndex)
    # ------------------------------------------------------------------
    def final_writer(self, key: str, value: Optional[int]) -> Optional[Transaction]:
        """The transaction whose final write on ``key`` has ``value``."""
        return self._final.get((key, value))

    def intermediate_writer(self, key: str, value: Optional[int]) -> Optional[Transaction]:
        """The transaction that wrote ``value`` to ``key`` as a non-final write."""
        return self._intermediate.get((key, value))

    # ------------------------------------------------------------------
    # Resolved provenance and version chains
    # ------------------------------------------------------------------
    def external_reads(self, txn_id: int) -> List[ReadRecord]:
        """The resolved external reads of a committed transaction."""
        return self._reads.get(txn_id, [])

    def final_writes(self, txn_id: int) -> Dict[str, int]:
        """The final ``{key: value}`` writes of a transaction."""
        return self._final_writes.get(txn_id, {})

    def iter_read_records(self) -> Iterator[Tuple[Transaction, ReadRecord]]:
        """All resolved reads in (transaction, program) scan order."""
        for txn in self.committed_non_initial:
            for record in self._reads.get(txn.txn_id, ()):
                yield txn, record

    def version_chains(self) -> Dict[str, List[VersionEntry]]:
        """Per-key version chains: writer plus readers/overwriters per version.

        Versions appear in the order their committed writers were scanned;
        only committed writers anchor a version (reads of aborted or unborn
        values are provenance anomalies, not versions).
        """
        if self._versions is None:
            readers: Dict[Tuple[str, Optional[int]], List[int]] = {}
            overwriters: Dict[Tuple[str, Optional[int]], List[int]] = {}
            for txn, record in self.iter_read_records():
                writer = record.writer
                if writer is None or not writer.committed or writer.txn_id == txn.txn_id:
                    continue
                slot = (record.key, record.value)
                readers.setdefault(slot, []).append(txn.txn_id)
                if record.writes_key:
                    overwriters.setdefault(slot, []).append(txn.txn_id)
            chains: Dict[str, List[VersionEntry]] = {}
            for txn in self.committed:
                for key, value in self._final_writes.get(txn.txn_id, {}).items():
                    chains.setdefault(key, []).append(
                        VersionEntry(
                            value=value,
                            writer_id=txn.txn_id,
                            reader_ids=tuple(readers.get((key, value), ())),
                            overwriter_ids=tuple(overwriters.get((key, value), ())),
                        )
                    )
            self._versions = chains
        return self._versions

    # ------------------------------------------------------------------
    # Orders
    # ------------------------------------------------------------------
    @property
    def session_order_pairs(self) -> List[Tuple[Transaction, Transaction]]:
        """Adjacent committed session-order pairs (cached)."""
        if self._session_pairs is None:
            self._session_pairs = self.history.session_order()
        return self._session_pairs

    def real_time_pairs(self, reduced: bool = True) -> List[Tuple[Transaction, Transaction]]:
        """Committed real-time order pairs (cached per ``reduced`` flag)."""
        if reduced not in self._rt_pairs:
            self._rt_pairs[reduced] = self.history.real_time_order(reduced=reduced)
        return self._rt_pairs[reduced]

    def stream_order(self) -> List[Transaction]:
        """The canonical streaming arrival order (cached).

        Same contract as :func:`repro.core.incremental.stream_order`: ``⊥T``
        first, sessions merged by finish timestamp with a round-robin
        fallback, per-session order preserved.
        """
        if self._stream is None:
            from .incremental import stream_order  # local import: no cycle at module load

            self._stream = list(stream_order(self.history))
        return self._stream

    # ------------------------------------------------------------------
    # Cached verdict pre-passes
    # ------------------------------------------------------------------
    def int_violations(self) -> list:
        """The INT/read-provenance pre-pass verdict (cached)."""
        if self._int_violations is None:
            from .intcheck import check_internal_consistency

            self._int_violations = check_internal_consistency(self.history, index=self)
        return self._int_violations

    def mt_problems(self) -> list:
        """The MT-history validation verdict (cached)."""
        if self._mt_problems is None:
            from .mini import validate_mt_history

            self._mt_problems = validate_mt_history(self.history)
        return self._mt_problems

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    @property
    def num_committed(self) -> int:
        """Committed transactions excluding ``⊥T``."""
        return len(self.committed_non_initial)

    def transaction(self, txn_id: int) -> Transaction:
        return self.transactions[self.txn_dense[txn_id]]

    def keys_of(self, txn_id: int) -> List[str]:
        """The object keys a transaction touches (via the dense interning)."""
        return [self.key_names[k] for k in self.txn_keys[self.txn_dense[txn_id]]]

    def __repr__(self) -> str:
        return (
            f"HistoryIndex(transactions={len(self.transactions)}, "
            f"keys={len(self.key_names)}, committed={self.num_committed})"
        )
