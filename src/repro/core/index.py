"""The shared :class:`HistoryIndex`: one scan, many consumers.

Historically every layer of the pipeline re-derived the same per-history
structures from the raw :class:`~repro.core.model.History`: the INT pre-pass
built a write index, ``CHECKSI`` built another for the DIVERGENCE scan,
``BUILDDEPENDENCY`` a third, and each solver baseline a fourth — plus as
many full passes over every transaction's operations.  The checkers are
linear-time on paper, but the constant factor was "number of consumers".

:class:`HistoryIndex` is built **once** per history and is the sole
history-scanning entry point for the batch pipeline:

* transaction ids and object keys are interned to dense integers
  (``txn_ids`` / ``key_names`` and their reverse maps), which is what the
  shard partitioner (:mod:`repro.parallel.partition`) and the dependency
  graph's integer fast path operate on;
* the write index — ``(key, value) -> final/intermediate writer`` — is
  API-compatible with :class:`~repro.core.intcheck.WriteIndex`, so the
  read-provenance classification runs against the shared index;
* every committed transaction's external reads are resolved to writer /
  RMW-flag / written-value tuples, which is all ``BUILDDEPENDENCY``, the
  DIVERGENCE scan, and the polygraph encoders need;
* session order, real-time order, per-key version chains, the INT verdict,
  and the MT-validation verdict are computed once and cached.

Since the columnar refactor the index has **two construction paths over one
dense core**:

* :meth:`build` scans a :class:`~repro.core.model.History` of
  ``Transaction`` objects (the legacy object pipeline);
* :meth:`from_columns` scans a
  :class:`~repro.history.columnar.ColumnarHistory` segment directly —
  no ``Transaction`` or ``Operation`` is materialised on the accept path.

Either way the index stores its resolved structures *densely* (integer
transaction positions, interned key ids, flat read tuples).  The
object-facing API — ``committed``, ``iter_read_records``, ``history``,
``final_writer`` returning a ``Transaction`` — materialises lazily and is
only paid for by consumers that actually need objects (the legacy
multigraph path, cycle labeling on the reject path, the solver baselines).
The dense kernel (:mod:`repro.core.csr`) consumes the integer accessors
(:meth:`committed_txn_ids <HistoryIndex>`, :meth:`iter_read_edges`,
:meth:`session_order_id_pairs`, :meth:`real_time_id_pairs`) exclusively.

The intended usage is one :meth:`build` (or :meth:`from_columns`) per
``MTChecker.verify`` call, threaded down through
:func:`~repro.core.checkers.check_ser` / ``check_si`` / ``check_sser`` via
their ``index=`` parameter; every checker also accepts a bare history and
builds the index itself, so standalone use keeps working.
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time
import zlib
from array import array
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .. import obs
from .model import (
    INITIAL_TXN_ID,
    STATUS_CODES,
    History,
    Transaction,
    TransactionStatus,
    history_from_stream,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..history.columnar import ColumnarHistory

__all__ = [
    "ReadRecord",
    "VersionEntry",
    "HistoryIndex",
    "INDEX_WIRE_FORMAT",
    "INDEX_CACHE_MAGIC",
]

#: Version tag of the dense-index wire format (bumped on layout changes;
#: mismatching cache files are silently rebuilt, never misread).
INDEX_WIRE_FORMAT = "repro-history-index-v1"

#: File magic of the CRC-framed on-disk index cache.
INDEX_CACHE_MAGIC = b"REPROIDX1\n"

#: The flat buffers of the wire format, in serialization order.  Every
#: buffer is the raw bytes of an ``array`` with the given typecode; the
#: dict/list structures of the live index are flattened into parallel
#: columns (`*_has_value` marks entries whose value is ``None``).
_WIRE_BUFFERS: Tuple[Tuple[str, str], ...] = (
    ("txn_ids", "q"),
    ("session_of", "q"),
    ("status_of", "b"),
    ("committed_mask", "b"),
    ("txn_key_offsets", "q"),
    ("txn_key_ids", "i"),
    ("final_kid", "i"),
    ("final_value", "q"),
    ("final_has_value", "b"),
    ("final_pos", "q"),
    ("inter_kid", "i"),
    ("inter_value", "q"),
    ("inter_has_value", "b"),
    ("inter_pos", "q"),
    ("read_reader_pos", "q"),
    ("read_kid", "i"),
    ("read_value", "q"),
    ("read_writer_pos", "q"),
    ("read_writes_key", "b"),
    ("read_written_value", "q"),
    ("read_written_has", "b"),
    ("row_order", "q"),
    ("so_pairs", "q"),
    ("rt_pairs", "q"),
)
_WIRE_TYPECODES: Dict[str, str] = dict(_WIRE_BUFFERS)

#: Columnar ``statuses`` codes this module branches on (single source of
#: truth: :data:`repro.core.model.STATUS_CODES`).
_COMMITTED_CODE = STATUS_CODES[TransactionStatus.COMMITTED]
_ABORTED_CODE = STATUS_CODES[TransactionStatus.ABORTED]


class ReadRecord(NamedTuple):
    """One resolved external read of a committed transaction.

    Attributes:
        key: the object read.
        value: the value observed.
        writer: the transaction whose *final* write produced ``value`` on
            ``key``, or ``None`` (thin-air / intermediate / own value).
        writes_key: whether the reader also writes ``key`` (the RMW pattern
            that turns the WR edge into a WW edge).
        written_value: the reader's final write on ``key`` (``None`` unless
            ``writes_key``); used by the DIVERGENCE scan.
    """

    key: str
    value: Optional[int]
    writer: Optional[Transaction]
    writes_key: bool
    written_value: Optional[int]


class VersionEntry(NamedTuple):
    """One version of an object: its writer plus the observers of the version."""

    value: Optional[int]
    writer_id: int
    reader_ids: Tuple[int, ...]
    overwriter_ids: Tuple[int, ...]


class HistoryIndex:
    """Per-history shared index: dense interning + resolved provenance.

    Build with :meth:`build` (object histories) or :meth:`from_columns`
    (columnar segments); the class-level :attr:`builds` counter exists so
    tests can assert the "one construction per verify call" invariant.

    Example:
        >>> from repro.core.model import History, Transaction, read, write
        >>> t1 = Transaction(1, [read("x", 0), write("x", 1)])
        >>> index = HistoryIndex.build(
        ...     History.from_transactions([[t1]], initial_keys=["x"]))
        >>> index.key_names, index.num_committed
        (['x'], 1)
        >>> index.final_writer("x", 1).txn_id
        1
    """

    #: Total number of indexes constructed (test instrumentation).
    builds = 0
    #: Total number of indexes rehydrated from the wire format / cache files
    #: (kept separate from :attr:`builds` so tests can assert a cache hit
    #: skipped the construction scan entirely).
    wire_loads = 0

    def __init__(self, history: History) -> None:
        type(self).builds += 1
        started = time.perf_counter()
        self._history: Optional[History] = history
        self._columns: Optional["ColumnarHistory"] = None
        self._transactions: Optional[List[Transaction]] = history.transactions(
            include_initial=True
        )
        self._init_core()
        self._has_initial = history.initial_transaction is not None
        self._scan_objects()
        obs.inc("repro_index_builds_total", source="objects")
        obs.observe("repro_index_build_seconds", time.perf_counter() - started)

    @classmethod
    def build(cls, history: History) -> "HistoryIndex":
        """Construct the index for ``history`` (one linear scan)."""
        return cls(history)

    @classmethod
    def from_columns(cls, columns: "ColumnarHistory") -> "HistoryIndex":
        """Construct the index straight from a columnar segment.

        One linear pass over the flat columns — no ``Transaction`` or
        ``Operation`` object is created.  The resulting index is
        structurally identical to ``HistoryIndex.build(columns.to_history())``
        (rows are scanned ``⊥T`` first, then grouped by ascending session
        id, matching :meth:`ColumnarHistory.to_history`); consumers that ask
        for objects (``committed``, ``history``, ``iter_read_records``)
        trigger lazy materialisation from the columns instead.
        """
        self = cls.__new__(cls)
        type(self).builds += 1
        started = time.perf_counter()
        self._history = None
        self._columns = columns
        self._transactions = None
        self._init_core()
        self._scan_columns()
        obs.inc("repro_index_builds_total", source="columns")
        obs.observe("repro_index_build_seconds", time.perf_counter() - started)
        return self

    def _init_core(self) -> None:
        #: Dense id per transaction position: ``txn_ids[dense] == txn_id``.
        self.txn_ids: List[int] = []
        self.txn_dense: Dict[int, int] = {}
        #: Dense id per object key: ``key_names[dense] == key``.
        self.key_names: List[str] = []
        self.key_dense: Dict[str, int] = {}
        #: Per dense transaction: sorted dense key ids it touches.
        self.txn_keys: List[List[int]] = []

        #: Transaction ids of committed transactions (``⊥T`` included),
        #: in scan order — the dense kernel's node universe.
        self.committed_txn_ids: List[int] = []
        self.committed_ids: Set[int] = set()

        # Dense core: positions index the scan order (same order as
        # ``transactions``); reads resolve to writer positions.
        self._committed_pos: List[int] = []
        self._committed_non_initial_pos: List[int] = []
        self._committed_mask = bytearray()
        self._status_of = bytearray()
        self._session_of: List[int] = []
        self._final_pos: Dict[Tuple[int, Optional[int]], int] = {}
        self._intermediate_pos: Dict[Tuple[int, Optional[int]], int] = {}
        #: position -> [(key_id, value, writer_pos | -1, writes_key, written_value)]
        self._reads_dense: Dict[
            int, List[Tuple[int, Optional[int], int, bool, Optional[int]]]
        ] = {}
        self._has_initial = False

        # Columnar backend state (lazy object materialisation).
        self._row_order: Optional[List[int]] = None
        self._txn_cache: Dict[int, Transaction] = {}

        # Lazy caches.
        self._committed_txns: Optional[List[Transaction]] = None
        self._committed_non_initial_txns: Optional[List[Transaction]] = None
        self._reads: Dict[int, List[ReadRecord]] = {}
        self._final_writes: Optional[Dict[int, Dict[str, int]]] = None
        self._session_pairs: Optional[List[Tuple[Transaction, Transaction]]] = None
        self._session_id_pairs: Optional[List[Tuple[int, int]]] = None
        self._rt_pairs: Dict[bool, List[Tuple[Transaction, Transaction]]] = {}
        self._rt_id_pairs: Dict[bool, List[Tuple[int, int]]] = {}
        self._int_violations: Optional[list] = None
        self._mt_problems: Optional[list] = None
        self._versions: Optional[Dict[str, List[VersionEntry]]] = None
        self._stream: Optional[List[Transaction]] = None

    # ------------------------------------------------------------------
    # Construction: object scan
    # ------------------------------------------------------------------
    def _scan_objects(self) -> None:
        """Single pass: intern ids/keys, index writes, collect raw reads."""
        assert self._transactions is not None
        final_writes: Dict[int, Dict[str, int]] = {}
        raw: Dict[int, List[Tuple[int, Optional[int], bool, Optional[int]]]] = {}
        key_dense = self.key_dense
        key_names = self.key_names
        for txn in self._transactions:
            pos = self._intern_txn(
                txn.txn_id, txn.committed, txn.is_initial, txn.session_id,
                STATUS_CODES[txn.status],
            )

            keys_here: Set[int] = set()
            finals: Dict[str, int] = {}
            last_write: Dict[int, Optional[int]] = {}
            written: Set[int] = set()
            reads: List[Tuple[int, Optional[int]]] = []
            read_keys: Set[int] = set()
            for op in txn.operations:
                kid = key_dense.get(op.key)
                if kid is None:
                    kid = len(key_names)
                    key_dense[op.key] = kid
                    key_names.append(op.key)
                keys_here.add(kid)
                if op.is_write:
                    if kid in last_write:
                        self._intermediate_pos[(kid, last_write[kid])] = pos
                    last_write[kid] = op.value
                    written.add(kid)
                    if op.value is not None:
                        finals[op.key] = op.value
                elif (
                    kid not in written
                    and kid not in read_keys
                    and op.value is not None
                ):
                    # Mirrors Transaction.external_reads(): the first read of
                    # a key before any own write on it.
                    read_keys.add(kid)
                    reads.append((kid, op.value))
            for kid, value in last_write.items():
                self._final_pos[(kid, value)] = pos
            final_writes[txn.txn_id] = finals
            if reads and txn.committed and not txn.is_initial:
                raw[pos] = [
                    (kid, value, kid in written, last_write.get(kid))
                    for kid, value in reads
                ]
            self.txn_keys.append(sorted(keys_here))
        self._final_writes = final_writes
        self._resolve_reads(raw)

    # ------------------------------------------------------------------
    # Construction: columnar scan
    # ------------------------------------------------------------------
    def _scan_columns(self) -> None:
        """Single pass over the flat columns; no objects are allocated.

        The ``array`` columns are expanded to plain lists up front —
        ``list(array)`` boxes every element once in C, where indexing the
        array inside the Python loop would box on every access — and the
        per-row op walk zips over list slices, which is the fastest pure-
        Python iteration shape available.
        """
        cols = self._columns
        assert cols is not None
        col_txn_ids = list(cols.txn_ids)
        col_sessions = list(cols.session_ids)
        col_statuses = cols.statuses
        offsets = list(cols.op_offsets)
        kinds = list(cols.op_kinds)
        op_keys = list(cols.op_keys)
        op_values = list(cols.op_values)
        op_has = list(cols.op_has_value)
        col_key_names = cols.key_names

        # Scan order: ``⊥T`` first, then rows grouped by ascending session
        # id (per-session row order preserved) — exactly the order
        # ``HistoryIndex.build(columns.to_history())`` would scan in.
        n = len(col_txn_ids)
        initial_rows: List[int] = []
        session_rows: Dict[int, List[int]] = {}
        for row in range(n):
            if col_txn_ids[row] == INITIAL_TXN_ID:
                initial_rows.append(row)
            else:
                session_rows.setdefault(col_sessions[row], []).append(row)
        order = initial_rows[:]
        for sid in sorted(session_rows):
            order.extend(session_rows[sid])
        self._row_order = order
        self._has_initial = bool(initial_rows)

        # Columnar key ids are re-interned in scan order so the index's key
        # numbering is identical to the object path's.
        remap = [-1] * len(col_key_names)
        key_dense = self.key_dense
        key_names = self.key_names
        txn_ids = self.txn_ids
        txn_dense = self.txn_dense
        txn_keys_out = self.txn_keys
        committed_txn_ids = self.committed_txn_ids
        committed_ids = self.committed_ids
        committed_pos = self._committed_pos
        committed_non_initial_pos = self._committed_non_initial_pos
        committed_mask = self._committed_mask
        status_of = self._status_of
        session_of = self._session_of
        intermediate_pos = self._intermediate_pos
        final_pos = self._final_pos
        raw: Dict[int, List[Tuple[int, Optional[int], bool, Optional[int]]]] = {}
        # Per-row scratch containers are reused across rows (cleared, not
        # reallocated): five fresh containers per row would dominate the
        # scan at six-figure transaction counts.
        keys_here: Set[int] = set()
        last_write: Dict[int, Optional[int]] = {}
        written: Set[int] = set()
        read_keys: Set[int] = set()
        pos = -1
        for row in order:
            txn_id = col_txn_ids[row]
            status = col_statuses[row]
            committed = status == _COMMITTED_CODE
            is_initial = txn_id == INITIAL_TXN_ID
            pos += 1
            txn_ids.append(txn_id)
            txn_dense[txn_id] = pos
            committed_mask.append(1 if committed else 0)
            status_of.append(status)
            session_of.append(col_sessions[row])
            if committed:
                committed_txn_ids.append(txn_id)
                committed_ids.add(txn_id)
                committed_pos.append(pos)
                if not is_initial:
                    committed_non_initial_pos.append(pos)

            keys_here.clear()
            last_write.clear()
            written.clear()
            read_keys.clear()
            reads: Optional[List[Tuple[int, Optional[int]]]] = None
            lo, hi = offsets[row], offsets[row + 1]
            for kind, ckid, boxed, has in zip(
                kinds[lo:hi], op_keys[lo:hi], op_values[lo:hi], op_has[lo:hi]
            ):
                kid = remap[ckid]
                if kid < 0:
                    kid = len(key_names)
                    remap[ckid] = kid
                    key_dense[col_key_names[ckid]] = kid
                    key_names.append(col_key_names[ckid])
                keys_here.add(kid)
                value: Optional[int] = boxed if has else None
                if kind:  # write
                    if kid in last_write:
                        intermediate_pos[(kid, last_write[kid])] = pos
                    last_write[kid] = value
                    written.add(kid)
                elif (
                    kid not in written
                    and kid not in read_keys
                    and value is not None
                ):
                    read_keys.add(kid)
                    if reads is None:
                        reads = [(kid, value)]
                    else:
                        reads.append((kid, value))
            for kid, value in last_write.items():
                final_pos[(kid, value)] = pos
            if reads is not None and committed and not is_initial:
                raw[pos] = [
                    (kid, value, kid in written, last_write.get(kid))
                    for kid, value in reads
                ]
            txn_keys_out.append(sorted(keys_here))
        self._resolve_reads(raw)

    def _intern_txn(
        self, txn_id: int, committed: bool, is_initial: bool, session_id: int,
        status_code: int,
    ) -> int:
        pos = len(self.txn_ids)
        self.txn_ids.append(txn_id)
        self.txn_dense[txn_id] = pos
        self._committed_mask.append(1 if committed else 0)
        self._status_of.append(status_code)
        self._session_of.append(session_id)
        if committed:
            self.committed_txn_ids.append(txn_id)
            self.committed_ids.add(txn_id)
            self._committed_pos.append(pos)
            if not is_initial:
                self._committed_non_initial_pos.append(pos)
        return pos

    def _resolve_reads(
        self, raw: Dict[int, List[Tuple[int, Optional[int], bool, Optional[int]]]]
    ) -> None:
        """Second pass: attribute every external read to its writer position."""
        final_pos = self._final_pos
        reads_dense = self._reads_dense
        for pos, entries in raw.items():
            reads_dense[pos] = [
                (kid, value, final_pos.get((kid, value), -1), writes_key, written)
                for kid, value, writes_key, written in entries
            ]

    # ------------------------------------------------------------------
    # Object layer (lazy for columnar-built indexes)
    # ------------------------------------------------------------------
    def _txn_at(self, pos: int) -> Transaction:
        """The transaction at dense position ``pos`` (materialised lazily)."""
        if self._transactions is not None:
            return self._transactions[pos]
        txn = self._txn_cache.get(pos)
        if txn is None:
            assert self._columns is not None and self._row_order is not None
            txn = self._columns.transaction_at(self._row_order[pos])
            self._txn_cache[pos] = txn
        return txn

    @property
    def transactions(self) -> List[Transaction]:
        """Every transaction, including ``⊥T`` and aborted ones (scan order)."""
        if self._transactions is None:
            self._transactions = [
                self._txn_at(pos) for pos in range(len(self.txn_ids))
            ]
        return self._transactions

    @property
    def history(self) -> History:
        """The indexed history (materialised from the columns on demand).

        Built with the canonical :func:`~repro.core.model.history_from_stream`
        grouping over the (cached) materialised transactions, so the result
        — and the identity of its ``Transaction`` objects — is consistent
        with every other accessor of this index.
        """
        if self._history is None:
            self._history = history_from_stream(self.transactions)
        return self._history

    @property
    def columns(self) -> Optional["ColumnarHistory"]:
        """The backing columnar segment, when built via :meth:`from_columns`."""
        return self._columns

    @property
    def committed(self) -> List[Transaction]:
        """All committed transactions including ``⊥T`` (scan order)."""
        if self._committed_txns is None:
            self._committed_txns = [self._txn_at(p) for p in self._committed_pos]
        return self._committed_txns

    @property
    def committed_non_initial(self) -> List[Transaction]:
        """Committed transactions excluding ``⊥T`` (scan order)."""
        if self._committed_non_initial_txns is None:
            self._committed_non_initial_txns = [
                self._txn_at(p) for p in self._committed_non_initial_pos
            ]
        return self._committed_non_initial_txns

    # ------------------------------------------------------------------
    # Write index (API-compatible with intcheck.WriteIndex)
    # ------------------------------------------------------------------
    def final_writer(self, key: str, value: Optional[int]) -> Optional[Transaction]:
        """The transaction whose final write on ``key`` has ``value``."""
        kid = self.key_dense.get(key)
        if kid is None:
            return None
        pos = self._final_pos.get((kid, value))
        return None if pos is None else self._txn_at(pos)

    def intermediate_writer(self, key: str, value: Optional[int]) -> Optional[Transaction]:
        """The transaction that wrote ``value`` to ``key`` as a non-final write."""
        kid = self.key_dense.get(key)
        if kid is None:
            return None
        pos = self._intermediate_pos.get((kid, value))
        return None if pos is None else self._txn_at(pos)

    # ------------------------------------------------------------------
    # Resolved provenance and version chains
    # ------------------------------------------------------------------
    def external_reads(self, txn_id: int) -> List[ReadRecord]:
        """The resolved external reads of a committed transaction."""
        records = self._reads.get(txn_id)
        if records is None:
            pos = self.txn_dense.get(txn_id)
            dense = None if pos is None else self._reads_dense.get(pos)
            if dense is None:
                return []
            key_names = self.key_names
            records = [
                ReadRecord(
                    key=key_names[kid],
                    value=value,
                    writer=self._txn_at(writer_pos) if writer_pos >= 0 else None,
                    writes_key=writes_key,
                    written_value=written_value,
                )
                for kid, value, writer_pos, writes_key, written_value in dense
            ]
            self._reads[txn_id] = records
        return records

    def final_writes(self, txn_id: int) -> Dict[str, int]:
        """The final ``{key: value}`` writes of a transaction."""
        return self._ensure_final_writes().get(txn_id, {})

    def _ensure_final_writes(self) -> Dict[int, Dict[str, int]]:
        if self._final_writes is None:
            cols = self._columns
            assert cols is not None and self._row_order is not None
            key_names = cols.key_names
            offsets = cols.op_offsets
            kinds = cols.op_kinds
            op_keys = cols.op_keys
            op_values = cols.op_values
            op_has = cols.op_has_value
            final_writes: Dict[int, Dict[str, int]] = {}
            for pos, row in enumerate(self._row_order):
                finals: Dict[str, int] = {}
                for op in range(offsets[row], offsets[row + 1]):
                    if kinds[op] and op_has[op]:
                        finals[key_names[op_keys[op]]] = op_values[op]
                final_writes[self.txn_ids[pos]] = finals
            self._final_writes = final_writes
        return self._final_writes

    def iter_read_records(self) -> Iterator[Tuple[Transaction, ReadRecord]]:
        """All resolved reads in (transaction, program) scan order.

        Materialises ``Transaction`` objects on a columnar-built index; the
        dense kernel uses :meth:`iter_read_edges` instead.
        """
        txn_ids = self.txn_ids
        for pos in self._committed_non_initial_pos:
            txn = self._txn_at(pos)
            for record in self.external_reads(txn_ids[pos]):
                yield txn, record

    def iter_read_edges(self) -> Iterator[Tuple[int, int, int, bool, bool]]:
        """Resolved reads as flat tuples — the dense kernel's input.

        Yields ``(reader_txn_id, key_id, writer_txn_id, writer_committed,
        reader_writes_key)`` for every read whose writer exists, in the same
        order as :meth:`iter_read_records`.  No objects are materialised.
        """
        txn_ids = self.txn_ids
        mask = self._committed_mask
        reads_dense = self._reads_dense
        for pos in self._committed_non_initial_pos:
            entries = reads_dense.get(pos)
            if not entries:
                continue
            reader = txn_ids[pos]
            for kid, _value, writer_pos, writes_key, _written in entries:
                if writer_pos < 0:
                    continue
                yield reader, kid, txn_ids[writer_pos], bool(mask[writer_pos]), writes_key

    def iter_read_tuples(
        self,
    ) -> Iterator[Tuple[int, str, Optional[int], Optional[int], bool, Optional[int]]]:
        """Resolved reads as plain tuples (object-free DIVERGENCE input).

        Yields ``(reader_txn_id, key, value, writer_txn_id_or_None,
        reader_writes_key, written_value)`` in scan order.
        """
        txn_ids = self.txn_ids
        key_names = self.key_names
        reads_dense = self._reads_dense
        for pos in self._committed_non_initial_pos:
            entries = reads_dense.get(pos)
            if not entries:
                continue
            reader = txn_ids[pos]
            for kid, value, writer_pos, writes_key, written_value in entries:
                yield (
                    reader,
                    key_names[kid],
                    value,
                    txn_ids[writer_pos] if writer_pos >= 0 else None,
                    writes_key,
                    written_value,
                )

    def version_chains(self) -> Dict[str, List[VersionEntry]]:
        """Per-key version chains: writer plus readers/overwriters per version.

        Versions appear in the order their committed writers were scanned;
        only committed writers anchor a version (reads of aborted or unborn
        values are provenance anomalies, not versions).
        """
        if self._versions is None:
            txn_ids = self.txn_ids
            key_names = self.key_names
            mask = self._committed_mask
            readers: Dict[Tuple[str, Optional[int]], List[int]] = {}
            overwriters: Dict[Tuple[str, Optional[int]], List[int]] = {}
            for pos in self._committed_non_initial_pos:
                for kid, value, writer_pos, writes_key, _written in self._reads_dense.get(
                    pos, ()
                ):
                    if writer_pos < 0 or not mask[writer_pos] or writer_pos == pos:
                        continue
                    slot = (key_names[kid], value)
                    readers.setdefault(slot, []).append(txn_ids[pos])
                    if writes_key:
                        overwriters.setdefault(slot, []).append(txn_ids[pos])
            final_writes = self._ensure_final_writes()
            chains: Dict[str, List[VersionEntry]] = {}
            for pos in self._committed_pos:
                txn_id = txn_ids[pos]
                for key, value in final_writes.get(txn_id, {}).items():
                    chains.setdefault(key, []).append(
                        VersionEntry(
                            value=value,
                            writer_id=txn_id,
                            reader_ids=tuple(readers.get((key, value), ())),
                            overwriter_ids=tuple(overwriters.get((key, value), ())),
                        )
                    )
            self._versions = chains
        return self._versions

    # ------------------------------------------------------------------
    # Orders
    # ------------------------------------------------------------------
    @property
    def session_order_pairs(self) -> List[Tuple[Transaction, Transaction]]:
        """Adjacent committed session-order pairs (cached)."""
        if self._session_pairs is None:
            if self._columns is None:
                self._session_pairs = self.history.session_order()
            else:
                self._session_pairs = [
                    (self.transaction(a), self.transaction(b))
                    for a, b in self.session_order_id_pairs()
                ]
        return self._session_pairs

    def session_order_id_pairs(self) -> List[Tuple[int, int]]:
        """Adjacent committed session-order pairs as transaction ids (cached)."""
        if self._session_id_pairs is None:
            if self._columns is None:
                self._session_id_pairs = [
                    (a.txn_id, b.txn_id) for a, b in self.session_order_pairs
                ]
            else:
                pairs: List[Tuple[int, int]] = []
                txn_ids = self.txn_ids
                session_of = self._session_of
                has_initial = self._has_initial
                last_in_session: Dict[int, int] = {}
                # Dense order groups sessions contiguously (ascending id),
                # so streaming the positions yields the same pair order as
                # History.session_order's session-by-session walk.
                for pos in self._committed_non_initial_pos:
                    sid = session_of[pos]
                    prev = last_in_session.get(sid)
                    if prev is None:
                        if has_initial:
                            pairs.append((INITIAL_TXN_ID, txn_ids[pos]))
                    else:
                        pairs.append((prev, txn_ids[pos]))
                    last_in_session[sid] = txn_ids[pos]
                self._session_id_pairs = pairs
        return self._session_id_pairs

    def real_time_pairs(self, reduced: bool = True) -> List[Tuple[Transaction, Transaction]]:
        """Committed real-time order pairs (cached per ``reduced`` flag)."""
        if reduced not in self._rt_pairs:
            if self._columns is None:
                self._rt_pairs[reduced] = self.history.real_time_order(reduced=reduced)
            else:
                self._rt_pairs[reduced] = [
                    (self.transaction(a), self.transaction(b))
                    for a, b in self.real_time_id_pairs(reduced=reduced)
                ]
        return self._rt_pairs[reduced]

    def real_time_id_pairs(self, reduced: bool = True) -> List[Tuple[int, int]]:
        """Committed real-time order pairs as transaction ids (cached)."""
        if reduced not in self._rt_id_pairs:
            if self._columns is None:
                self._rt_id_pairs[reduced] = [
                    (a.txn_id, b.txn_id)
                    for a, b in self.real_time_pairs(reduced=reduced)
                ]
            else:
                self._rt_id_pairs[reduced] = self._rt_id_pairs_from_columns(reduced)
        return self._rt_id_pairs[reduced]

    def _rt_id_pairs_from_columns(self, reduced: bool) -> List[Tuple[int, int]]:
        """Mirror ``History.real_time_order`` over the timestamp columns."""
        cols = self._columns
        assert cols is not None and self._row_order is not None
        txn_ids = self.txn_ids
        # (start, finish, txn_id) of committed, timestamped, non-initial
        # transactions in scan order — the same entry order the object path
        # feeds interval_order_reduction, so stable sorts tie-break alike.
        entries: List[Tuple[float, float, int]] = []
        for pos in self._committed_non_initial_pos:
            row = self._row_order[pos]
            start, finish = cols.timestamps_at(row)
            if start is None or finish is None:
                continue
            entries.append((start, finish, txn_ids[pos]))
        if reduced:
            pairs = _interval_reduction_ids(entries)
        else:
            pairs = [
                (a[2], b[2])
                for a in entries
                for b in entries
                if a is not b and a[1] < b[0]
            ]
        if self._has_initial and entries:
            first = min(entries, key=lambda e: e[0])
            pairs.append((INITIAL_TXN_ID, first[2]))
        return pairs

    def stream_order(self) -> List[Transaction]:
        """The canonical streaming arrival order (cached).

        Same contract as :func:`repro.core.incremental.stream_order`: ``⊥T``
        first, sessions merged by finish timestamp with a round-robin
        fallback, per-session order preserved.
        """
        if self._stream is None:
            from .incremental import stream_order  # local import: no cycle at module load

            self._stream = list(stream_order(self.history))
        return self._stream

    # ------------------------------------------------------------------
    # Cached verdict pre-passes
    # ------------------------------------------------------------------
    def int_violations(self) -> list:
        """The INT/read-provenance pre-pass verdict (cached).

        On a columnar-built index the pre-pass runs column-natively: a flat
        scan classifies each committed row, and only rows that actually
        contain a candidate anomaly are materialised for the (identical)
        object-level classification — zero allocations on the accept path.
        """
        if self._int_violations is None:
            if self._columns is not None:
                self._int_violations = self._int_violations_from_columns()
            else:
                from .intcheck import check_internal_consistency

                self._int_violations = check_internal_consistency(
                    self.history, index=self
                )
        return self._int_violations

    def _int_violations_from_columns(self) -> list:
        from . import intcheck

        cols = self._columns
        assert cols is not None and self._row_order is not None
        violations: list = []
        for pos in self._committed_non_initial_pos:
            if self._row_has_int_candidate(pos):
                violations.extend(
                    intcheck._check_transaction(self._txn_at(pos), self)
                )
        return violations

    def _row_has_int_candidate(self, pos: int) -> bool:
        """Whether the row can contribute an INT/provenance violation.

        A row returning ``False`` provably yields no violation; a row
        returning ``True`` is re-checked at the object level so the
        reported violations are identical to the object path.  The
        intra-transactional trigger is the shared
        :func:`~repro.core.intcheck.ops_int_candidate` (kept next to the
        check it mirrors); the provenance trigger below mirrors
        :func:`~repro.core.intcheck.provenance_violation` against the
        dense write index.
        """
        from .intcheck import ops_int_candidate

        cols = self._columns
        assert cols is not None and self._row_order is not None
        row = self._row_order[pos]
        ops = list(cols.row_ops(row))
        if ops_int_candidate(ops):
            return True

        # Provenance: every external-position read (first op of the row on
        # its key — FutureReads were caught above) must resolve to a
        # non-aborted final writer other than the reader itself.
        col_names = cols.key_names
        key_dense = self.key_dense
        final_pos = self._final_pos
        status_of = self._status_of
        seen: Set[int] = set()
        for kind, ckid, value in ops:
            if ckid in seen:
                continue
            seen.add(ckid)
            if kind:
                continue
            kid = key_dense[col_names[ckid]]
            writer = final_pos.get((kid, value), -1)
            if writer < 0 or writer == pos or status_of[writer] == _ABORTED_CODE:
                return True  # ThinAir / Intermediate / AbortedRead
        return False

    def mt_problems(self) -> list:
        """The MT-history validation verdict (cached).

        Materialises the object history on a columnar-built index (strict
        MT validation is opt-in and not on the accept path).
        """
        if self._mt_problems is None:
            from .mini import validate_mt_history

            self._mt_problems = validate_mt_history(self.history)
        return self._mt_problems

    # ------------------------------------------------------------------
    # Wire format and on-disk cache
    # ------------------------------------------------------------------
    def to_wire(self) -> Dict[str, Any]:
        """Flatten the dense core into compact, picklable buffers.

        The result carries everything :meth:`from_columns` would have
        derived — interning, version-chain write slots, resolved read
        edges, plus the (forced) SO and reduced-RT pair caches, which are
        the expensive per-check passes worth shipping/caching.  The object
        layer is *not* serialized: a rehydrated index materialises objects
        lazily from the columns handed to :meth:`from_wire`.
        """
        buffers: Dict[str, array] = {
            name: array(code) for name, code in _WIRE_BUFFERS
        }
        buffers["txn_ids"].extend(self.txn_ids)
        buffers["session_of"].extend(self._session_of)
        buffers["status_of"].frombytes(bytes(self._status_of))
        buffers["committed_mask"].frombytes(bytes(self._committed_mask))

        offsets = buffers["txn_key_offsets"]
        offsets.append(0)
        key_ids = buffers["txn_key_ids"]
        total = 0
        for kids in self.txn_keys:
            key_ids.extend(kids)
            total += len(kids)
            offsets.append(total)

        for prefix, slots in (
            ("final", self._final_pos),
            ("inter", self._intermediate_pos),
        ):
            kid_col = buffers[f"{prefix}_kid"]
            val_col = buffers[f"{prefix}_value"]
            has_col = buffers[f"{prefix}_has_value"]
            pos_col = buffers[f"{prefix}_pos"]
            for (kid, value), pos in slots.items():
                kid_col.append(kid)
                val_col.append(0 if value is None else value)
                has_col.append(0 if value is None else 1)
                pos_col.append(pos)

        reader_col = buffers["read_reader_pos"]
        rkid_col = buffers["read_kid"]
        rval_col = buffers["read_value"]
        writer_col = buffers["read_writer_pos"]
        rmw_col = buffers["read_writes_key"]
        written_col = buffers["read_written_value"]
        written_has = buffers["read_written_has"]
        for pos in sorted(self._reads_dense):
            for kid, value, writer_pos, writes_key, written in self._reads_dense[pos]:
                reader_col.append(pos)
                rkid_col.append(kid)
                rval_col.append(value)
                writer_col.append(writer_pos)
                rmw_col.append(1 if writes_key else 0)
                written_col.append(0 if written is None else written)
                written_has.append(0 if written is None else 1)

        if self._row_order is not None:
            buffers["row_order"].extend(self._row_order)
        for a, b in self.session_order_id_pairs():
            buffers["so_pairs"].append(a)
            buffers["so_pairs"].append(b)
        for a, b in self.real_time_id_pairs(reduced=True):
            buffers["rt_pairs"].append(a)
            buffers["rt_pairs"].append(b)

        # Force (and ship) the INT pre-pass verdict when it is clean: a
        # rehydrated index then skips the whole scan.  A dirty (or
        # unknowable) pre-pass is NOT shipped — violations carry object
        # descriptions, so consumers recompute them from the attached
        # columns instead.
        if self._int_violations is None and self._history is None and self._columns is None:
            int_clean = False
        else:
            int_clean = not self.int_violations()
        return {
            "format": INDEX_WIRE_FORMAT,
            "key_names": list(self.key_names),
            "has_initial": self._has_initial,
            "has_row_order": self._row_order is not None,
            "int_clean": int_clean,
            "buffers": {name: buf.tobytes() for name, buf in buffers.items()},
        }

    @classmethod
    def from_wire(
        cls,
        wire: Dict[str, Any],
        columns: Optional["ColumnarHistory"] = None,
    ) -> "HistoryIndex":
        """Rehydrate an index from :meth:`to_wire` buffers — no history scan.

        ``columns`` re-attaches the backing segment so the lazy object
        layer (counterexample labeling, ``int_violations``, strict MT
        validation) keeps working; it must be the exact segment the wire
        was derived from.  Without columns the dense accessors — which is
        all the CSR kernel and the SSER merger consume — remain available.
        """
        if wire.get("format") != INDEX_WIRE_FORMAT:
            raise ValueError(f"unsupported index wire format: {wire.get('format')!r}")
        if columns is not None and not wire["has_row_order"]:
            raise ValueError(
                "cannot attach columns: the wire index was built from an "
                "object history and carries no column row order"
            )
        # Rehydration is a pure allocation burst — millions of small
        # containers, no garbage, no reference cycles — so automatic
        # collection is paused for its duration.  Without this, gen-2
        # passes over a large live heap (the attached columns alone hold
        # millions of objects) dominate the load time at
        # million-transaction scale.
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            return cls._decode_wire(wire, columns)
        finally:
            if was_enabled:
                gc.enable()

    @classmethod
    def _decode_wire(
        cls,
        wire: Dict[str, Any],
        columns: Optional["ColumnarHistory"],
    ) -> "HistoryIndex":
        cols: Dict[str, array] = {}
        for name, code in _WIRE_BUFFERS:
            buf = array(code)
            buf.frombytes(wire["buffers"][name])
            cols[name] = buf

        self = cls.__new__(cls)
        type(self).wire_loads += 1
        obs.inc("repro_index_wire_loads_total")
        self._history = None
        self._columns = columns
        self._transactions = None
        self._init_core()

        self.txn_ids = list(cols["txn_ids"])
        self.txn_dense = {txn_id: pos for pos, txn_id in enumerate(self.txn_ids)}
        self.key_names = list(wire["key_names"])
        self.key_dense = {name: kid for kid, name in enumerate(self.key_names)}
        self._session_of = list(cols["session_of"])
        self._status_of = bytearray(cols["status_of"].tobytes())
        self._committed_mask = bytearray(cols["committed_mask"].tobytes())
        self._has_initial = bool(wire["has_initial"])

        offsets = cols["txn_key_offsets"]
        key_ids = list(cols["txn_key_ids"])
        self.txn_keys = [
            key_ids[offsets[i]:offsets[i + 1]] for i in range(len(offsets) - 1)
        ]

        for pos, (txn_id, committed) in enumerate(
            zip(self.txn_ids, self._committed_mask)
        ):
            if committed:
                self.committed_txn_ids.append(txn_id)
                self.committed_ids.add(txn_id)
                self._committed_pos.append(pos)
                if txn_id != INITIAL_TXN_ID:
                    self._committed_non_initial_pos.append(pos)

        for prefix, slots in (
            ("final", self._final_pos),
            ("inter", self._intermediate_pos),
        ):
            for kid, value, has, pos in zip(
                cols[f"{prefix}_kid"],
                cols[f"{prefix}_value"],
                cols[f"{prefix}_has_value"],
                cols[f"{prefix}_pos"],
            ):
                slots[(kid, value if has else None)] = pos

        # ``to_wire`` emits read rows grouped by ascending reader position,
        # so one bucket lookup per run (not per row) suffices.
        reads_dense = self._reads_dense
        current_pos = -1
        bucket: List[Tuple[int, int, int, bool, Optional[int]]] = []
        for pos, kid, value, writer_pos, writes_key, written, has_written in zip(
            cols["read_reader_pos"],
            cols["read_kid"],
            cols["read_value"],
            cols["read_writer_pos"],
            cols["read_writes_key"],
            cols["read_written_value"],
            cols["read_written_has"],
        ):
            if pos != current_pos:
                bucket = reads_dense.setdefault(pos, [])
                current_pos = pos
            bucket.append(
                (kid, value, writer_pos, bool(writes_key), written if has_written else None)
            )

        if wire["has_row_order"]:
            self._row_order = list(cols["row_order"])
        if wire.get("int_clean"):
            self._int_violations = []
        so = list(cols["so_pairs"])
        self._session_id_pairs = list(zip(so[0::2], so[1::2]))
        rt = list(cols["rt_pairs"])
        self._rt_id_pairs[True] = list(zip(rt[0::2], rt[1::2]))
        return self

    def save_cache(self, path: Union[str, Path], *, fingerprint: Dict[str, Any]) -> Path:
        """Persist the wire form as a CRC-stamped cache file (atomic write).

        ``fingerprint`` identifies the history snapshot the index was built
        from (e.g. the epoch-log manifest's txn-id range and per-epoch
        CRCs); :meth:`load_cache` only returns an index when the
        fingerprint matches exactly, so a grown or rewritten history can
        never be served a stale index.
        """
        wire = self.to_wire()
        buffers = wire["buffers"]
        payload = b"".join(buffers[name] for name, _code in _WIRE_BUFFERS)
        header = json.dumps(
            {
                "format": INDEX_WIRE_FORMAT,
                "byteorder": sys.byteorder,
                "fingerprint": fingerprint,
                "key_names": wire["key_names"],
                "has_initial": wire["has_initial"],
                "has_row_order": wire["has_row_order"],
                "int_clean": wire["int_clean"],
                "buffers": [
                    [name, code, len(buffers[name])] for name, code in _WIRE_BUFFERS
                ],
                "crc32": zlib.crc32(payload),
                "payload_bytes": len(payload),
            },
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8")
        path = Path(path)
        tmp = path.with_name(f".{path.name}.tmp")
        with open(tmp, "wb") as fh:
            fh.write(INDEX_CACHE_MAGIC + header + b"\n" + payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def load_cache(
        cls,
        path: Union[str, Path],
        *,
        fingerprint: Dict[str, Any],
        columns: Optional["ColumnarHistory"] = None,
    ) -> Optional["HistoryIndex"]:
        """Load a :meth:`save_cache` file, or ``None`` when it cannot be used.

        Every failure mode — missing file, foreign byte order, truncated
        payload, CRC mismatch, or a fingerprint that no longer matches the
        history — invalidates the cache silently: the caller rebuilds from
        columns and (best-effort) rewrites the cache.
        """
        index = cls._load_cache(path, fingerprint=fingerprint, columns=columns)
        obs.inc(
            "repro_index_cache_requests_total",
            outcome="hit" if index is not None else "miss",
        )
        return index

    @classmethod
    def _load_cache(
        cls,
        path: Union[str, Path],
        *,
        fingerprint: Dict[str, Any],
        columns: Optional["ColumnarHistory"] = None,
    ) -> Optional["HistoryIndex"]:
        try:
            blob = Path(path).read_bytes()
        except OSError:
            return None
        if not blob.startswith(INDEX_CACHE_MAGIC):
            return None
        header_line, _, payload = blob[len(INDEX_CACHE_MAGIC):].partition(b"\n")
        try:
            header = json.loads(header_line)
        except ValueError:
            return None
        if (
            header.get("format") != INDEX_WIRE_FORMAT
            or header.get("byteorder") != sys.byteorder
            or header.get("fingerprint") != fingerprint
            or header.get("buffers") is None
            or len(payload) != header.get("payload_bytes")
            or zlib.crc32(payload) != header.get("crc32")
        ):
            return None
        expected = [[name, code] for name, code in _WIRE_BUFFERS]
        recorded = [entry[:2] for entry in header["buffers"]]
        if recorded != expected:
            return None
        view = memoryview(payload)
        buffers: Dict[str, Any] = {}
        offset = 0
        for name, _code, nbytes in header["buffers"]:
            buffers[name] = view[offset:offset + nbytes]
            offset += nbytes
        if offset != len(payload):
            return None
        try:
            return cls.from_wire(
                {
                    "format": INDEX_WIRE_FORMAT,
                    "key_names": header["key_names"],
                    "has_initial": header["has_initial"],
                    "has_row_order": header["has_row_order"],
                    "int_clean": header.get("int_clean", False),
                    "buffers": buffers,
                },
                columns=columns,
            )
        except (ValueError, KeyError):
            return None

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    @property
    def num_committed(self) -> int:
        """Committed transactions excluding ``⊥T``."""
        return len(self._committed_non_initial_pos)

    def transaction(self, txn_id: int) -> Transaction:
        return self._txn_at(self.txn_dense[txn_id])

    def session_of(self, pos: int) -> int:
        """The session id of the transaction at dense position ``pos``."""
        return self._session_of[pos]

    def column_row(self, pos: int) -> int:
        """The backing column row of dense position ``pos`` (columnar only)."""
        assert self._row_order is not None, "index was not built from columns"
        return self._row_order[pos]

    def is_committed_pos(self, pos: int) -> bool:
        """Whether the transaction at dense position ``pos`` committed."""
        return bool(self._committed_mask[pos])

    def keys_of(self, txn_id: int) -> List[str]:
        """The object keys a transaction touches (via the dense interning)."""
        return [self.key_names[k] for k in self.txn_keys[self.txn_dense[txn_id]]]

    def __repr__(self) -> str:
        return (
            f"HistoryIndex(transactions={len(self.txn_ids)}, "
            f"keys={len(self.key_names)}, committed={self.num_committed})"
        )


def _interval_reduction_ids(
    entries: Sequence[Tuple[float, float, int]],
) -> List[Tuple[int, int]]:
    """Transitive reduction of the interval order over ``(start, finish, id)``.

    The id-level mirror of :func:`repro.core.model.interval_order_reduction`
    — same algorithm, same stable tie-breaking (both sorts key on a single
    timestamp, so equal stamps keep their scan order), producing the same
    pair sequence the object path produces.
    """
    if not entries:
        return []
    by_finish = sorted(entries, key=lambda e: e[1])
    by_start = sorted(entries, key=lambda e: e[0])

    pairs: List[Tuple[int, int]] = []
    finish_idx = 0
    max_start_of_preds = float("-inf")
    preds: List[Tuple[float, float, int]] = []
    for b in by_start:
        while finish_idx < len(by_finish) and by_finish[finish_idx][1] < b[0]:
            cand = by_finish[finish_idx]
            preds.append(cand)
            if cand[0] > max_start_of_preds:
                max_start_of_preds = cand[0]
            finish_idx += 1
        if not preds:
            continue
        preds = [a for a in preds if a[1] >= max_start_of_preds]
        for a in preds:
            pairs.append((a[2], b[2]))
    return pairs
