"""The MTChecker facade: the public entry point of the library.

``MTChecker`` bundles the three verification components of the paper's MTC
tool (MTC-SSER, MTC-SER, MTC-SI) plus the linear-time linearizability
checker for lightweight-transaction histories behind a single ``verify``
call, mirroring Step 4 of the black-box checking workflow (Figure 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Union

from .. import obs
from ..obs.report import VerifyReport
from .checkers import GRAPH_CHECKED_LEVELS, check_ser, check_si, check_sser
from .incremental import CheckerSession
from .index import HistoryIndex
from .lwt import LWTHistory, check_linearizability
from .mini import validate_mt_history
from .model import History
from .result import CheckResult, IsolationLevel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..history.columnar import ColumnarHistory

__all__ = ["MTChecker"]


class MTChecker:
    """End-to-end verifier for mini-transaction histories.

    Example:
        >>> from repro import MTChecker, IsolationLevel
        >>> from repro.core.anomalies import anomaly_history
        >>> checker = MTChecker()
        >>> result = checker.verify(anomaly_history("LostUpdate"),
        ...                         IsolationLevel.SNAPSHOT_ISOLATION)
        >>> result.satisfied
        False

    Args:
        strict_mt: reject inputs that are not valid mini-transaction
            histories (non-MT transactions or duplicate written values)
            instead of checking them on a best-effort basis.
        transitive_ww: use the unoptimized BUILDDEPENDENCY variant that
            materialises the transitive closure of the WW edges.
        workers: ``None`` (the default) runs the classic single-pass serial
            pipeline.  Any integer ``>= 1`` routes batch verification through
            the sharded pipeline of :mod:`repro.parallel`: the history is
            split into key-connected shards, each shard is checked
            independently (``workers`` OS processes when ``> 1``, inline when
            ``1``), and the verdicts are merged.  Sharded verdicts equal
            serial verdicts on every history, and ``workers=1`` vs
            ``workers=k`` produce *identical* results — only where the shard
            checks execute changes.
        dense: run batch graph construction and acyclicity on the
            array-native CSR kernel (:mod:`repro.core.csr`, the default).
            ``dense=False`` selects the legacy labeled-multigraph path;
            verdicts, anomaly kinds, and counterexample cycles are
            identical either way (enforced by ``tests/test_csr.py``).
    """

    def __init__(
        self,
        *,
        strict_mt: bool = False,
        transitive_ww: bool = False,
        workers: Optional[int] = None,
        dense: bool = True,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be a positive process count (or None)")
        self.strict_mt = strict_mt
        self.transitive_ww = transitive_ww
        self.workers = workers
        self.dense = dense

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(
        self,
        history: Union[History, LWTHistory, "ColumnarHistory"],
        level: IsolationLevel,
        *,
        report: bool = False,
    ) -> Union[CheckResult, VerifyReport]:
        """Verify ``history`` against ``level`` and return a :class:`CheckResult`.

        For plain histories the shared :class:`HistoryIndex` is built exactly
        once here and threaded through every stage of the chosen checker —
        MT validation, the INT pre-pass, the DIVERGENCE scan, and
        BUILDDEPENDENCY all consume the same index.

        A :class:`~repro.history.columnar.ColumnarHistory` segment is
        accepted in place of an object history: the index is then built
        column-natively (:meth:`HistoryIndex.from_columns`) and the accept
        path — pre-passes, BUILDDEPENDENCY, acyclicity, and parallel shard
        dispatch — runs without materialising ``Transaction`` objects.

        With ``report=True`` the check runs under a scoped telemetry
        registry and returns a :class:`~repro.obs.report.VerifyReport` —
        the same :class:`CheckResult` plus phase timings, graph sizes, and
        cache/executor counters recorded while producing it (rendered by
        ``repro check -v``).
        """
        if report:
            with obs.scoped() as reg:
                result = self._verify(history, level)
            return VerifyReport(result=result, metrics=reg.snapshot())
        return self._verify(history, level)

    def _verify(
        self,
        history: Union[History, LWTHistory, "ColumnarHistory"],
        level: IsolationLevel,
    ) -> CheckResult:
        if isinstance(history, LWTHistory):
            if level not in (
                IsolationLevel.LINEARIZABILITY,
                IsolationLevel.STRICT_SERIALIZABILITY,
            ):
                raise ValueError(
                    "lightweight-transaction histories are checked against "
                    "linearizability / strict serializability only"
                )
            return check_linearizability(history)

        if level not in GRAPH_CHECKED_LEVELS:
            raise ValueError(f"unsupported isolation level for MTC: {level}")

        from ..history.columnar import ColumnarHistory  # deferred: avoids cycle

        columns: Optional[ColumnarHistory] = None
        plain_history: Optional[History]
        if isinstance(history, ColumnarHistory):
            columns = history
            plain_history = None
            with obs.phase("index_build"):
                index = HistoryIndex.from_columns(columns)
        else:
            plain_history = history
            with obs.phase("index_build"):
                index = HistoryIndex.build(history)
        if self.workers is not None:
            from ..parallel import check_parallel  # deferred: parallel builds on core

            return check_parallel(
                plain_history,
                level,
                workers=self.workers,
                strict_mt=self.strict_mt,
                transitive_ww=self.transitive_ww,
                index=index,
                dense=self.dense,
                columns=columns,
            )

        if level is IsolationLevel.SERIALIZABILITY:
            return check_ser(
                plain_history,
                transitive_ww=self.transitive_ww,
                strict_mt=self.strict_mt,
                index=index,
                dense=self.dense,
            )
        if level is IsolationLevel.SNAPSHOT_ISOLATION:
            return check_si(
                plain_history,
                transitive_ww=self.transitive_ww,
                strict_mt=self.strict_mt,
                index=index,
                dense=self.dense,
            )
        return check_sser(
            plain_history,
            transitive_ww=self.transitive_ww,
            strict_mt=self.strict_mt,
            index=index,
            dense=self.dense,
        )

    # Convenience aliases matching the paper's component names.
    def check_ser(self, history: History) -> CheckResult:
        """MTC-SER."""
        return self.verify(history, IsolationLevel.SERIALIZABILITY)

    def check_si(self, history: History) -> CheckResult:
        """MTC-SI."""
        return self.verify(history, IsolationLevel.SNAPSHOT_ISOLATION)

    def check_sser(self, history: History) -> CheckResult:
        """MTC-SSER (general MT histories with timestamps)."""
        return self.verify(history, IsolationLevel.STRICT_SERIALIZABILITY)

    def check_linearizability(self, history: LWTHistory) -> CheckResult:
        """MTC-SSER on lightweight-transaction histories (Algorithm 2)."""
        return self.verify(history, IsolationLevel.LINEARIZABILITY)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def session(
        self,
        level: IsolationLevel,
        *,
        initial_keys: Optional[Iterable[str]] = None,
        window: Optional[int] = None,
    ) -> CheckerSession:
        """Open a streaming verification session (incremental checking).

        Instead of re-verifying a growing history from scratch, a session
        ingests transactions one at a time (or in rounds), extends the
        dependency graph in place, and reports each violation at the exact
        transaction that introduced it — see
        :class:`repro.core.incremental.IncrementalChecker` for the
        algorithmic details and the batch-equivalence invariant.

        Example:
            >>> from repro import MTChecker, IsolationLevel, Transaction
            >>> from repro import read, write
            >>> session = MTChecker().session(IsolationLevel.SERIALIZABILITY,
            ...                               initial_keys=["x"])
            >>> session.ingest(Transaction(1, [read("x", 0), write("x", 1)]))
            []
            >>> session.result().satisfied
            True

        Args:
            level: SER, SI, or SSER (LWT histories are batch-only).
            initial_keys: keys of the synthesised initial transaction ``⊥T``;
                alternatively ingest an explicit initial transaction first.
            window: bounded-window mode — garbage-collect transactions once
                ``window`` newer ones have been ingested (see the module
                docstring of :mod:`repro.core.incremental` for the staleness
                contract).
        """
        return CheckerSession(
            level,
            initial_keys=initial_keys,
            window=window,
            strict_mt=self.strict_mt,
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    @staticmethod
    def is_mt_history(history: History) -> bool:
        """Whether ``history`` meets Definition 9 (MT history, unique values)."""
        return not validate_mt_history(history)
