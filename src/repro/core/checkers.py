"""MTC's verification algorithms for SSER, SER, and SI (paper, Algorithm 1).

All three checkers share the same structure:

1. pre-check the INT axiom and read-provenance anomalies
   (:mod:`repro.core.intcheck`);
2. build the (nearly unique) dependency graph of the mini-transaction
   history with :func:`repro.core.graph.build_dependency`;
3. check acyclicity of the appropriate edge combination:

   * ``CHECKSSER`` — ``RT ∪ SO ∪ WR ∪ WW ∪ RW`` acyclic (Θ(n²) due to RT);
   * ``CHECKSER``  — ``SO ∪ WR ∪ WW ∪ RW`` acyclic (Θ(n));
   * ``CHECKSI``   — reject on the DIVERGENCE pattern, else
     ``(SO ∪ WR ∪ WW) ; RW?`` acyclic (Θ(n)).

The checkers are sound and complete on mini-transaction histories with
unique values.  On violation they return a counterexample cycle, classified
into one of the named anomalies of Table I whenever the cycle matches a
known pattern.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from .. import obs
from .divergence import find_divergence
from .graph import DependencyGraph, Edge, EdgeType, build_dependency
from .index import HistoryIndex
from .model import History
from .result import AnomalyKind, CheckResult, IsolationLevel, Violation

__all__ = [
    "GRAPH_CHECKED_LEVELS",
    "check_sser",
    "check_ser",
    "check_si",
    "classify_cycle",
    "raise_if_not_mt",
    "MTHistoryError",
]

#: Levels the graph-based MTC pipeline covers on plain histories (LIN is
#: checked as SSER there).  Shared by the MTChecker facade and the sharded
#: executor so the two never disagree on which levels are accepted.
GRAPH_CHECKED_LEVELS = (
    IsolationLevel.SERIALIZABILITY,
    IsolationLevel.SNAPSHOT_ISOLATION,
    IsolationLevel.STRICT_SERIALIZABILITY,
    IsolationLevel.LINEARIZABILITY,
)


class MTHistoryError(ValueError):
    """Raised in strict mode when the input is not a valid MT history."""


def raise_if_not_mt(index: HistoryIndex) -> None:
    """Raise :class:`MTHistoryError` unless the indexed history is MT-valid.

    Shared by the serial pre-checks and the parallel executor so strict-mode
    failures are identical whichever pipeline runs.
    """
    problems = index.mt_problems()
    if problems:
        raise MTHistoryError(
            "not a valid mini-transaction history: "
            + "; ".join(str(p) for p in problems[:5])
        )


def check_ser(
    history: History,
    *,
    transitive_ww: bool = False,
    strict_mt: bool = False,
    index: Optional[HistoryIndex] = None,
    dense: bool = True,
) -> CheckResult:
    """CHECKSER: verify serializability of a mini-transaction history.

    Args:
        history: the MT history to verify.
        transitive_ww: use the unoptimized BUILDDEPENDENCY that materialises
            the per-object transitive closure of ``WW`` (for cross-validation
            and the ablation benchmarks); the default is the optimized
            variant of Section IV-C.
        strict_mt: raise :class:`MTHistoryError` if the history is not a
            valid MT history instead of checking on a best-effort basis.
        index: optional pre-built :class:`~repro.core.index.HistoryIndex`;
            :meth:`repro.core.checker.MTChecker.verify` builds it once and
            threads it through every stage, so the history is scanned once.
        dense: run BUILDDEPENDENCY and the acyclicity check on the
            array-native CSR kernel (:mod:`repro.core.csr`) — the default.
            The legacy multigraph path (``dense=False``) exists for
            cross-validation and ablation; both paths produce identical
            verdicts, anomaly kinds, and labeled counterexample cycles.
    """
    return _check_graph_level(
        history,
        level=IsolationLevel.SERIALIZABILITY,
        with_rt=False,
        transitive_ww=transitive_ww,
        strict_mt=strict_mt,
        index=index,
        dense=dense,
    )


def check_sser(
    history: History,
    *,
    transitive_ww: bool = False,
    strict_mt: bool = False,
    reduced_rt: bool = True,
    index: Optional[HistoryIndex] = None,
    dense: bool = True,
) -> CheckResult:
    """CHECKSSER: verify strict serializability of a mini-transaction history.

    Identical to :func:`check_ser` but additionally includes the real-time
    order edges, requiring transaction timestamps on the history.
    """
    return _check_graph_level(
        history,
        level=IsolationLevel.STRICT_SERIALIZABILITY,
        with_rt=True,
        transitive_ww=transitive_ww,
        strict_mt=strict_mt,
        reduced_rt=reduced_rt,
        index=index,
        dense=dense,
    )


def check_si(
    history: History,
    *,
    transitive_ww: bool = False,
    strict_mt: bool = False,
    early_divergence_exit: bool = True,
    index: Optional[HistoryIndex] = None,
    dense: bool = True,
) -> CheckResult:
    """CHECKSI: verify snapshot isolation of a mini-transaction history.

    The DIVERGENCE pattern (two transactions reading the same version of an
    object and both overwriting it) is checked first; it immediately implies
    a LOSTUPDATE violation of SI.  Otherwise the induced graph
    ``(SO ∪ WR ∪ WW) ; RW?`` must be acyclic.

    Args:
        early_divergence_exit: disable to skip the early pattern check and
            rely solely on graph construction (ablation;
            ``benchmarks/bench_ablation_divergence.py``).  Note that without
            the early exit a DIVERGENCE history may admit an acyclic induced
            graph, so the early check is required for completeness — the
            ablation only measures its cost, and the checker re-enables it
            for the final verdict.
    """
    started = time.perf_counter()
    if index is None:
        index = HistoryIndex.build(history)
    num_txns = index.num_committed

    with obs.phase("pre_checks"):
        pre = _pre_checks(index, strict_mt=strict_mt)
    if pre is not None:
        pre.level = IsolationLevel.SNAPSHOT_ISOLATION
        pre.num_transactions = num_txns
        pre.elapsed_seconds = time.perf_counter() - started
        return pre

    with obs.phase("divergence"):
        divergence = find_divergence(history, index=index)
    if early_divergence_exit and divergence is not None:
        result = CheckResult.violated(
            IsolationLevel.SNAPSHOT_ISOLATION,
            [divergence.to_violation()],
            num_transactions=num_txns,
        )
        result.elapsed_seconds = time.perf_counter() - started
        return result

    if dense:
        # Accept path: array-native build + CSR-level composition + one
        # Tarjan pass.  The legacy multigraph is only materialised when a
        # counterexample must be labeled, keeping violation output
        # byte-identical to the legacy pipeline.
        with obs.phase("build_dependency"):
            csr = build_dependency(
                history,
                with_rt=False,
                transitive_ww=transitive_ww,
                index=index,
                dense=True,
            )
        obs.inc("repro_graph_builds_total")
        obs.set_gauge("repro_graph_nodes", csr.num_nodes)
        obs.set_gauge("repro_graph_edges", csr.num_edges)
        with obs.phase("acyclicity"):
            acyclic = csr.si_induced().has_cycle() is None
        if acyclic:
            cycle = None
            graph = None
        else:
            graph = csr.to_multigraph()
            cycle = graph.si_induced_graph().find_cycle()
    else:
        with obs.phase("build_dependency"):
            graph = build_dependency(
                history,
                with_rt=False,
                transitive_ww=transitive_ww,
                index=index,
            )
        obs.inc("repro_graph_builds_total")
        with obs.phase("acyclicity"):
            cycle = graph.si_induced_graph().find_cycle()
    if cycle is None and divergence is not None:
        # The induced graph can be acyclic even though the history violates
        # SI via DIVERGENCE (Example 3); completeness requires reporting it.
        result = CheckResult.violated(
            IsolationLevel.SNAPSHOT_ISOLATION,
            [divergence.to_violation()],
            num_transactions=num_txns,
        )
        result.elapsed_seconds = time.perf_counter() - started
        return result

    if cycle is None:
        result = CheckResult.ok(IsolationLevel.SNAPSHOT_ISOLATION, num_txns)
    else:
        violation = classify_cycle(cycle, graph, level=IsolationLevel.SNAPSHOT_ISOLATION)
        result = CheckResult.violated(
            IsolationLevel.SNAPSHOT_ISOLATION, [violation], num_transactions=num_txns
        )
    result.elapsed_seconds = time.perf_counter() - started
    return result


# ----------------------------------------------------------------------
# Shared machinery
# ----------------------------------------------------------------------
def _pre_checks(index: HistoryIndex, *, strict_mt: bool) -> Optional[CheckResult]:
    """Run MT-history validation and the INT pre-pass on the shared index.

    Both verdicts are cached on the :class:`~repro.core.index.HistoryIndex`,
    so a facade that validated the history up front (or a repeated check of
    the same index) never re-scans it.  Returns a failing
    :class:`CheckResult` (level filled in by the caller) when the pre-pass
    finds violations, else ``None``.
    """
    if strict_mt:
        raise_if_not_mt(index)
    int_violations = index.int_violations()
    if int_violations:
        return CheckResult.violated(
            IsolationLevel.SERIALIZABILITY, int_violations
        )
    return None


def _check_graph_level(
    history: History,
    *,
    level: IsolationLevel,
    with_rt: bool,
    transitive_ww: bool,
    strict_mt: bool,
    reduced_rt: bool = True,
    index: Optional[HistoryIndex] = None,
    dense: bool = True,
) -> CheckResult:
    started = time.perf_counter()
    if index is None:
        index = HistoryIndex.build(history)
    num_txns = index.num_committed

    with obs.phase("pre_checks"):
        pre = _pre_checks(index, strict_mt=strict_mt)
    if pre is not None:
        pre.level = level
        pre.num_transactions = num_txns
        pre.elapsed_seconds = time.perf_counter() - started
        return pre

    if dense:
        # Accept path: flat-array BUILDDEPENDENCY + one Tarjan SCC pass; no
        # Edge objects, no per-root DFS re-densification.  Only a rejection
        # materialises the legacy multigraph, whose find_cycle/label_cycle
        # keep the counterexample byte-identical to the legacy pipeline.
        with obs.phase("build_dependency"):
            csr = build_dependency(
                history,
                with_rt=with_rt,
                transitive_ww=transitive_ww,
                reduced_rt=reduced_rt,
                index=index,
                dense=True,
            )
        obs.inc("repro_graph_builds_total")
        obs.set_gauge("repro_graph_nodes", csr.num_nodes)
        obs.set_gauge("repro_graph_edges", csr.num_edges)
        with obs.phase("acyclicity"):
            acyclic = csr.has_cycle() is None
        if acyclic:
            result = CheckResult.ok(level, num_txns)
            result.elapsed_seconds = time.perf_counter() - started
            return result
        graph = csr.to_multigraph()
    else:
        with obs.phase("build_dependency"):
            graph = build_dependency(
                history,
                with_rt=with_rt,
                transitive_ww=transitive_ww,
                reduced_rt=reduced_rt,
                index=index,
            )
        obs.inc("repro_graph_builds_total")
    with obs.phase("acyclicity"):
        cycle = graph.find_cycle()
    if cycle is None:
        result = CheckResult.ok(level, num_txns)
    else:
        violation = classify_cycle(cycle, graph, level=level)
        result = CheckResult.violated(level, [violation], num_transactions=num_txns)
    result.elapsed_seconds = time.perf_counter() - started
    return result


def classify_cycle(
    cycle: Sequence[Edge],
    graph: DependencyGraph,
    *,
    level: IsolationLevel,
) -> Violation:
    """Classify a dependency cycle into a named anomaly where possible.

    The classification follows the cycle shapes of Figure 5:

    * a cycle containing an RT edge → real-time (SSER-only) violation;
    * a 2-cycle ``WW`` + ``RW`` on one object → LOSTUPDATE;
    * a cycle whose non-SO edges are exactly two RW edges on two different
      objects → WRITESKEW (adjacent RW) or LONGFORK (separated RW);
    * a cycle containing exactly one RW edge and at least one WR edge →
      CAUSALITYVIOLATION / NONMONOTONICREAD family (reported as
      CausalityViolation);
    * a cycle of only SO and WR/RW edges involving a missed session write →
      SESSIONGUARANTEEVIOLATION;
    * anything else → generic DependencyCycle.
    """
    edge_types = [edge.edge_type for edge in cycle]
    keys = {edge.key for edge in cycle if edge.key is not None}
    txn_ids = sorted({edge.source for edge in cycle} | {edge.target for edge in cycle})
    cycle_tuples = [(edge.source, edge.target, edge.label) for edge in cycle]

    kind = AnomalyKind.DEPENDENCY_CYCLE
    rw_count = edge_types.count(EdgeType.RW)
    wr_count = edge_types.count(EdgeType.WR)
    ww_count = edge_types.count(EdgeType.WW)
    so_count = edge_types.count(EdgeType.SO)
    rt_count = edge_types.count(EdgeType.RT)
    composed = edge_types.count(EdgeType.COMPOSED)

    if rt_count > 0:
        kind = AnomalyKind.REAL_TIME_VIOLATION
    elif len(cycle) == 2 and rw_count >= 1 and ww_count >= 1 and len(keys) == 1:
        kind = AnomalyKind.LOST_UPDATE
    elif rw_count == 2 and ww_count == 0 and len(keys) >= 2:
        kind = _classify_two_rw_cycle(cycle)
    elif rw_count == 1 and (wr_count + so_count) >= 2 and ww_count == 0:
        kind = AnomalyKind.CAUSALITY_VIOLATION
    elif rw_count == 1 and so_count >= 1 and wr_count == 0 and ww_count == 0:
        kind = AnomalyKind.SESSION_GUARANTEE_VIOLATION
    elif rw_count == 1 and ww_count >= 1:
        kind = AnomalyKind.LOST_UPDATE
    elif composed and level is IsolationLevel.SNAPSHOT_ISOLATION:
        kind = AnomalyKind.DEPENDENCY_CYCLE

    description = (
        f"dependency cycle of length {len(cycle)} over objects "
        f"{sorted(keys) if keys else '[]'} forbidden by {level.short_name}"
    )
    return Violation(
        kind=kind,
        description=description,
        txn_ids=txn_ids,
        cycle=cycle_tuples,
        key=next(iter(sorted(keys)), None),
    )


def _classify_two_rw_cycle(cycle: Sequence[Edge]) -> AnomalyKind:
    """Distinguish WRITESKEW (adjacent RW edges) from LONGFORK."""
    edges = list(cycle)
    n = len(edges)
    rw_positions = [i for i, edge in enumerate(edges) if edge.edge_type is EdgeType.RW]
    if len(rw_positions) != 2:
        return AnomalyKind.DEPENDENCY_CYCLE
    i, j = rw_positions
    adjacent = (j - i == 1) or (i == 0 and j == n - 1 and n > 2) or n == 2
    return AnomalyKind.WRITE_SKEW if adjacent else AnomalyKind.LONG_FORK
