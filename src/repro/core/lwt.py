"""Linear-time linearizability checking for lightweight-transaction histories.

Lightweight transactions (LWTs) are single-object compare-and-set style
operations: a *read&write* ``R&W(x, v, v')`` reads value ``v`` from object
``x`` and writes ``v'``, and an *insert-if-not-exists* installs the initial
value of an object.  For histories made only of such operations, strict
serializability degenerates to linearizability, and the RMW pattern plus
unique values admit the linear-time Algorithm 2 of the paper (VL-LWT):

1. per object, the operations must form a single *chain* in which each
   read&write observes the value written by its predecessor (step ❶);
2. walking the chain backwards, no operation may start after the minimum
   finish time of all its successors (step ❷ — the real-time requirement).

Linearizability is a local property, so a multi-object history is
linearizable iff each per-object sub-history is (``check_linearizability``).
"""

from __future__ import annotations

import enum
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .result import AnomalyKind, CheckResult, IsolationLevel, Violation

__all__ = [
    "LWTKind",
    "LWTOperation",
    "LWTHistory",
    "check_object_linearizability",
    "check_linearizability",
]


class LWTKind(enum.Enum):
    """The two kinds of lightweight transactions."""

    #: ``R&W(x, expected, new)`` — a successful compare-and-set.
    READ_WRITE = "read&write"
    #: ``insert-if-not-exists(x, value)`` — installs the object's first value.
    INSERT = "insert"


@dataclass(frozen=True)
class LWTOperation:
    """A lightweight transaction with wall-clock start and finish times."""

    op_id: int
    kind: LWTKind
    key: str
    written: int
    expected: Optional[int] = None
    start_ts: float = 0.0
    finish_ts: float = 0.0
    session_id: int = 0

    @property
    def is_insert(self) -> bool:
        return self.kind is LWTKind.INSERT

    def __str__(self) -> str:
        if self.is_insert:
            return f"O{self.op_id}:INSERT({self.key},{self.written})"
        return f"O{self.op_id}:R&W({self.key},{self.expected},{self.written})"


@dataclass
class LWTHistory:
    """A history of lightweight transactions over one or more objects."""

    operations: List[LWTOperation]

    def keys(self) -> List[str]:
        return sorted({op.key for op in self.operations})

    def per_key(self) -> Dict[str, List[LWTOperation]]:
        grouped: Dict[str, List[LWTOperation]] = defaultdict(list)
        for op in self.operations:
            grouped[op.key].append(op)
        return dict(grouped)

    def __len__(self) -> int:
        return len(self.operations)


def check_object_linearizability(
    operations: Sequence[LWTOperation], key: Optional[str] = None
) -> CheckResult:
    """Algorithm 2 (VL-LWT) on the LWT history of a single object.

    The history must contain exactly one insert-if-not-exists operation; the
    read&write operations must then form a chain (each one reading the value
    written by the previous one), and the chain must respect real time.
    Runs in expected O(n) time using a hash table from expected value to
    operation.
    """
    started = time.perf_counter()
    level = IsolationLevel.LINEARIZABILITY
    ops = list(operations)
    if key is None:
        key = ops[0].key if ops else ""

    inserts = [op for op in ops if op.is_insert]
    if len(inserts) != 1:
        result = CheckResult.violated(
            level,
            [
                Violation(
                    kind=AnomalyKind.MALFORMED_HISTORY,
                    description=(
                        f"object {key} has {len(inserts)} insert-if-not-exists "
                        f"operations (expected exactly 1)"
                    ),
                    key=key,
                )
            ],
            num_transactions=len(ops),
        )
        result.elapsed_seconds = time.perf_counter() - started
        return result

    # Step ❶: construct the chain, if possible.
    by_expected: Dict[int, List[LWTOperation]] = defaultdict(list)
    for op in ops:
        if not op.is_insert and op.expected is not None:
            by_expected[op.expected].append(op)

    chain: List[LWTOperation] = [inserts[0]]
    value = inserts[0].written
    remaining = len(ops) - 1
    while remaining > 0:
        candidates = by_expected.get(value, [])
        if len(candidates) != 1:
            kind = (
                AnomalyKind.LOST_UPDATE
                if len(candidates) > 1
                else AnomalyKind.NON_LINEARIZABLE
            )
            detail = (
                f"{len(candidates)} operations read value {value}"
                if candidates
                else f"no operation reads value {value}, yet "
                f"{remaining} operations remain unchained"
            )
            result = CheckResult.violated(
                level,
                [
                    Violation(
                        kind=kind,
                        description=(
                            f"object {key}: cannot extend the version chain — {detail}"
                        ),
                        txn_ids=[op.op_id for op in candidates],
                        key=key,
                    )
                ],
                num_transactions=len(ops),
            )
            result.elapsed_seconds = time.perf_counter() - started
            return result
        nxt = candidates[0]
        chain.append(nxt)
        value = nxt.written
        remaining -= 1

    # Step ❷: the real-time requirement, walking the chain backwards.
    min_finish = float("inf")
    violation: Optional[Violation] = None
    for op in reversed(chain):
        if op.start_ts > min_finish:
            violation = Violation(
                kind=AnomalyKind.REAL_TIME_VIOLATION,
                description=(
                    f"object {key}: {op} starts at {op.start_ts:.6f}, after a "
                    f"successor in the version chain finished at {min_finish:.6f}"
                ),
                txn_ids=[op.op_id],
                key=key,
            )
            break
        min_finish = min(min_finish, op.finish_ts)

    if violation is not None:
        result = CheckResult.violated(level, [violation], num_transactions=len(ops))
    else:
        result = CheckResult.ok(level, num_transactions=len(ops))
    result.elapsed_seconds = time.perf_counter() - started
    return result


def check_linearizability(history: LWTHistory) -> CheckResult:
    """MTC-SSER on a lightweight-transaction history.

    Exploits locality: the history is linearizable iff every per-object
    sub-history is.  Overall running time is O(n) for n operations.
    """
    started = time.perf_counter()
    level = IsolationLevel.LINEARIZABILITY
    violations: List[Violation] = []
    total = len(history)
    for key, ops in history.per_key().items():
        result = check_object_linearizability(ops, key=key)
        if not result.satisfied:
            violations.extend(result.violations)
    if violations:
        result = CheckResult.violated(level, violations, num_transactions=total)
    else:
        result = CheckResult.ok(level, num_transactions=total)
    result.elapsed_seconds = time.perf_counter() - started
    return result
