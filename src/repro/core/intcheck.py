"""Internal-consistency (INT) checking and read-provenance anomalies.

Algorithm 1 in the paper assumes the input history satisfies the INT axiom:
within a transaction, a read from an object returns the same value as the
last write to, or read from, this object inside the transaction.  In
practice (footnote 1) the checker first scans the history for

* intra-transactional anomalies — FutureRead, NotMyLastWrite, NotMyOwnWrite,
  NonRepeatableReads — and
* read-provenance anomalies — ThinAirRead, AbortedRead, IntermediateRead —

before constructing the dependency graph.  This module implements that
pre-pass.  It relies on the unique-value assumption of MT histories: every
value can be attributed to exactly one writing transaction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .model import History, Operation, Transaction
from .result import AnomalyKind, Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .index import HistoryIndex

__all__ = [
    "WriteIndex",
    "build_write_index",
    "check_internal_consistency",
    "transaction_int_violations",
    "ops_int_candidate",
    "provenance_violation",
]


class WriteIndex:
    """Index from ``(key, value)`` to the transaction that wrote it.

    Distinguishes *final* writes (the last write of a transaction on a key —
    the only writes other transactions may legitimately observe) from
    *intermediate* writes (overwritten within the same transaction), and
    records whether the writer committed.
    """

    def __init__(self) -> None:
        self._final: Dict[Tuple[str, Optional[int]], Transaction] = {}
        self._intermediate: Dict[Tuple[str, Optional[int]], Transaction] = {}

    def add_transaction(self, txn: Transaction) -> None:
        last_write: Dict[str, Operation] = {}
        for op in txn.operations:
            if op.is_write:
                if op.key in last_write:
                    prev = last_write[op.key]
                    self._intermediate[(prev.key, prev.value)] = txn
                last_write[op.key] = op
        for op in last_write.values():
            self._final[(op.key, op.value)] = txn

    def final_writer(self, key: str, value: Optional[int]) -> Optional[Transaction]:
        """The transaction whose final write on ``key`` has ``value``."""
        return self._final.get((key, value))

    def intermediate_writer(self, key: str, value: Optional[int]) -> Optional[Transaction]:
        """The transaction that wrote ``value`` to ``key`` as a non-final write."""
        return self._intermediate.get((key, value))


def build_write_index(history: History) -> WriteIndex:
    """Index every write in the history (committed, aborted, and initial)."""
    index = WriteIndex()
    for txn in history.transactions(include_initial=True):
        index.add_transaction(txn)
    return index


def check_internal_consistency(
    history: History,
    *,
    write_index: Optional[WriteIndex] = None,
    index: Optional["HistoryIndex"] = None,
) -> List[Violation]:
    """Check the INT axiom and read-provenance anomalies for a history.

    Returns the list of violations found (empty if the history is internally
    consistent and every read can be attributed to the committed final write
    of some transaction or to the reader's own preceding write).

    When a shared :class:`~repro.core.index.HistoryIndex` is supplied, its
    write index is consulted directly (it is API-compatible with
    :class:`WriteIndex`) and no per-call index is constructed.
    """
    if index is not None:
        lookup: WriteIndex = index  # duck-typed: final_writer / intermediate_writer
        committed = index.committed_non_initial
    else:
        lookup = write_index if write_index is not None else build_write_index(history)
        committed = history.committed_transactions(include_initial=False)

    violations: List[Violation] = []
    for txn in committed:
        violations.extend(_check_transaction(txn, lookup))
    return violations


def _check_transaction(txn: Transaction, index: WriteIndex) -> List[Violation]:
    violations = transaction_int_violations(txn)
    for op in _external_position_reads(txn):
        if _is_future_read(txn, op):
            continue  # already reported by the intra-transactional pass
        violation = provenance_violation(txn, op, index)
        if violation is not None:
            violations.append(violation)
    return violations


def transaction_int_violations(txn: Transaction) -> List[Violation]:
    """The intra-transactional part of the INT pre-pass for one transaction.

    Detects FutureRead, NotMyLastWrite, NotMyOwnWrite, and
    NonRepeatableReads — every anomaly that can be established from the
    transaction's own operations, without consulting the rest of the
    history.  Read-provenance anomalies (ThinAirRead, AbortedRead,
    IntermediateRead) additionally need a :class:`WriteIndex`; classify
    those with :func:`provenance_violation`, or incrementally via
    :class:`repro.core.incremental.IncrementalChecker`.

    Example:
        >>> from repro.core.model import Transaction, read, write
        >>> from repro.core.intcheck import transaction_int_violations
        >>> txn = Transaction(1, [read("x", 7), write("x", 7)])
        >>> [v.kind.value for v in transaction_int_violations(txn)]
        ['FutureRead']
    """
    violations: List[Violation] = []
    # Last operation on each key inside the transaction, in program order.
    last_op_on_key: Dict[str, Operation] = {}
    position_writes_seen: Dict[str, int] = {}
    for op in txn.operations:
        if op.is_write:
            position_writes_seen[op.key] = position_writes_seen.get(op.key, 0) + 1
            last_op_on_key[op.key] = op
            continue

        prev = last_op_on_key.get(op.key)
        if prev is not None:
            violations.extend(_check_internal_read(txn, op, prev, position_writes_seen))
        elif _is_future_read(txn, op):
            violations.append(
                Violation(
                    kind=AnomalyKind.FUTURE_READ,
                    description=(
                        f"read {op} observes value {op.value}, which the same "
                        f"transaction only writes later"
                    ),
                    txn_ids=[txn.txn_id],
                    key=op.key,
                )
            )
        last_op_on_key[op.key] = op
    return violations


def ops_int_candidate(ops: List[Tuple[int, int, Optional[int]]]) -> bool:
    """Whether ``(kind, key_id, value)`` rows can hold an intra-INT anomaly.

    The columnar fast path's trigger for :func:`transaction_int_violations`
    — kept in this module, next to the check it mirrors, so the two evolve
    together.  It fires exactly when the object check would report
    something: a read whose last same-key predecessor holds a different
    value (NotMyLastWrite / NotMyOwnWrite / NonRepeatableReads), or an
    external-position read of a value the transaction itself writes
    (FutureRead).  ``False`` provably means zero violations, so callers
    (:meth:`repro.core.index.HistoryIndex.from_columns`'s INT pre-pass and
    :meth:`repro.core.incremental.IncrementalChecker.ingest_segment`) only
    materialise a ``Transaction`` for candidate rows.
    """
    own_writes: Dict[int, set] = {}
    for kind, kid, value in ops:
        if kind:
            own_writes.setdefault(kid, set()).add(value)
    last: Dict[int, Optional[int]] = {}
    for kind, kid, value in ops:
        if kind:
            last[kid] = value
            continue
        if kid in last:
            if value != last[kid]:
                return True
        else:
            writes = own_writes.get(kid)
            if writes is not None and value in writes:
                return True
        last[kid] = value
    return False


def _external_position_reads(txn: Transaction) -> List[Operation]:
    """Reads that occur before any other operation of ``txn`` on their key."""
    seen: Dict[str, bool] = {}
    result: List[Operation] = []
    for op in txn.operations:
        if op.key not in seen and op.is_read:
            result.append(op)
        seen[op.key] = True
    return result


def _is_future_read(txn: Transaction, op: Operation) -> bool:
    """Whether ``op`` observes a value ``txn`` itself only writes later."""
    return any(
        w.is_write and w.key == op.key and w.value == op.value
        for w in txn.operations
    )


def _check_internal_read(
    txn: Transaction,
    op: Operation,
    prev: Operation,
    writes_seen: Dict[str, int],
) -> List[Violation]:
    """Check a read that follows a prior operation on the same key in ``txn``."""
    if op.value == prev.value:
        return []
    own_final = txn.final_write(op.key)
    own_values = [w.value for w in txn.operations if w.is_write and w.key == op.key]
    kind: AnomalyKind
    if prev.is_write:
        # The read should have returned the preceding write's value.
        if op.value in own_values:
            # It returned one of its own writes, but not the last preceding one.
            kind = AnomalyKind.NOT_MY_LAST_WRITE
            description = (
                f"read {op} returned an own write that is not the last preceding "
                f"write {prev} on object {op.key}"
            )
        else:
            kind = AnomalyKind.NOT_MY_OWN_WRITE
            description = (
                f"read {op} ignored the transaction's own preceding write {prev} "
                f"on object {op.key}"
            )
    else:
        # Two reads of the same object with no intervening own write
        # returned different values.
        kind = AnomalyKind.NON_REPEATABLE_READS
        description = (
            f"reads of object {op.key} returned different values "
            f"({prev.value} then {op.value}) with no intervening own write"
        )
    del own_final  # classification above only needs own_values
    return [
        Violation(
            kind=kind,
            description=description,
            txn_ids=[txn.txn_id],
            key=op.key,
        )
    ]


def provenance_violation(
    txn: Transaction, op: Operation, index: WriteIndex
) -> Optional[Violation]:
    """Classify the provenance of one external read against a write index.

    ``op`` is the first operation of ``txn`` on its key (no preceding read or
    write on that key), so by INT it must observe the committed final write
    of some other transaction (or the initial value).  Returns ``None`` when
    the read is attributable to such a writer, or the AbortedRead /
    IntermediateRead / ThinAirRead violation otherwise.  FutureRead is an
    intra-transactional anomaly and is reported by
    :func:`transaction_int_violations` instead.

    Example:
        >>> from repro.core.intcheck import WriteIndex, provenance_violation
        >>> from repro.core.model import Transaction, read
        >>> txn = Transaction(1, [read("x", 99)])
        >>> provenance_violation(txn, txn.operations[0], WriteIndex()).kind.value
        'ThinAirRead'
    """
    writer = index.final_writer(op.key, op.value)
    if writer is not None and writer.txn_id != txn.txn_id:
        if writer.aborted:
            return Violation(
                kind=AnomalyKind.ABORTED_READ,
                description=(
                    f"read {op} observes a value written by aborted "
                    f"transaction T{writer.txn_id}"
                ),
                txn_ids=[txn.txn_id, writer.txn_id],
                key=op.key,
            )
        return None

    intermediate = index.intermediate_writer(op.key, op.value)
    if intermediate is not None and intermediate.txn_id != txn.txn_id:
        return Violation(
            kind=AnomalyKind.INTERMEDIATE_READ,
            description=(
                f"read {op} observes an intermediate value of "
                f"T{intermediate.txn_id}, which later overwrote it"
            ),
            txn_ids=[txn.txn_id, intermediate.txn_id],
            key=op.key,
        )

    return Violation(
        kind=AnomalyKind.THIN_AIR_READ,
        description=(
            f"read {op} observes value {op.value}, which no transaction wrote"
        ),
        txn_ids=[txn.txn_id],
        key=op.key,
    )
