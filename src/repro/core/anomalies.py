"""Catalog of the 14 isolation anomalies captured by mini-transactions.

The paper's Figure 5 / Table I list 14 well-documented anomalies from the
contemporary specification frameworks (Adya, Cerone & Gotsman, Biswas & Enea,
Plume) and show that each can be exhibited by a mini-transaction history.
This module reconstructs each anomaly as a small, self-contained
:class:`~repro.core.model.History` made only of mini-transactions, together
with the ground truth of which strong isolation levels it violates.  The
catalog drives both the anomaly-coverage tests and the Table I benchmark,
and doubles as a library of ready-made counterexample templates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .model import History, Transaction, TransactionStatus, read, write
from .result import AnomalyKind, IsolationLevel

__all__ = ["AnomalySpec", "anomaly_catalog", "anomaly_history", "ANOMALY_NAMES"]


@dataclass(frozen=True)
class AnomalySpec:
    """One entry of the anomaly catalog.

    Attributes:
        kind: the anomaly class.
        description: the Table I description.
        build: zero-argument constructor of the canonical MT history.
        violates_si: whether the history violates snapshot isolation.
        violates_ser: whether the history violates serializability (and
            therefore also strict serializability).
        intra_transactional: whether the anomaly is detected by the INT
            pre-pass (Figure 5a-5g) rather than by a dependency cycle.
    """

    kind: AnomalyKind
    description: str
    build: Callable[[], History]
    violates_si: bool
    violates_ser: bool
    intra_transactional: bool = False

    @property
    def violates_sser(self) -> bool:
        """SSER is at least as strong as SER."""
        return self.violates_ser

    def violates(self, level: IsolationLevel) -> bool:
        if level is IsolationLevel.SNAPSHOT_ISOLATION:
            return self.violates_si
        if level is IsolationLevel.SERIALIZABILITY:
            return self.violates_ser
        if level in (
            IsolationLevel.STRICT_SERIALIZABILITY,
            IsolationLevel.LINEARIZABILITY,
        ):
            return self.violates_sser
        return False


def _txn(txn_id: int, *ops, status: TransactionStatus = TransactionStatus.COMMITTED) -> Transaction:
    return Transaction(txn_id=txn_id, operations=list(ops), status=status)


# ----------------------------------------------------------------------
# Figure 5a-5g: intra-transactional / read-provenance anomalies
# ----------------------------------------------------------------------
def thin_air_read() -> History:
    """A transaction reads a value out of thin air (Figure 5a)."""
    t1 = _txn(1, read("x", 5))
    return History.from_transactions([[t1]], initial_keys=["x"])


def aborted_read() -> History:
    """A transaction reads a value from an aborted transaction (Figure 5b)."""
    t1 = _txn(1, read("x", 0), write("x", 1), status=TransactionStatus.ABORTED)
    t2 = _txn(2, read("x", 1))
    return History.from_transactions([[t1], [t2]], initial_keys=["x"])


def future_read() -> History:
    """A transaction reads from a write occurring later in itself (Figure 5c)."""
    t1 = _txn(1, read("x", 7), write("x", 7))
    return History.from_transactions([[t1]], initial_keys=["x"])


def not_my_last_write() -> History:
    """A transaction reads its own, but not the last, write (Figure 5d)."""
    t1 = _txn(1, read("x", 0), write("x", 1), write("x", 2), read("x", 1))
    return History.from_transactions([[t1]], initial_keys=["x"])


def not_my_own_write() -> History:
    """A transaction fails to read its own preceding write (Figure 5e)."""
    t1 = _txn(1, read("x", 0), write("x", 2), read("x", 1))
    t2 = _txn(2, read("x", 0), write("x", 1))
    return History.from_transactions([[t1], [t2]], initial_keys=["x"])


def intermediate_read() -> History:
    """A transaction reads a value later overwritten by its writer (Figure 5f)."""
    t1 = _txn(1, read("x", 1))
    t2 = _txn(2, read("x", 0), write("x", 1), write("x", 2))
    return History.from_transactions([[t1], [t2]], initial_keys=["x"])


def non_repeatable_reads() -> History:
    """Repeated reads of one object return different values (Figure 5g)."""
    t0 = _txn(1, read("x", 1), read("x", 2))
    t1 = _txn(2, read("x", 0), write("x", 1))
    t2 = _txn(3, read("x", 0), write("x", 2))
    return History.from_transactions([[t0], [t1], [t2]], initial_keys=["x"])


# ----------------------------------------------------------------------
# Figure 5h-5n: inter-transactional anomalies (dependency cycles)
# ----------------------------------------------------------------------
def session_guarantee_violation() -> History:
    """A later transaction in a session misses its predecessor's effect (5h)."""
    t1 = _txn(1, read("x", 0), write("x", 1))
    t2 = _txn(2, read("x", 1), write("x", 2))
    t3 = _txn(3, read("x", 1))
    return History.from_transactions([[t1, t2, t3]], initial_keys=["x"])


def non_monotonic_read() -> History:
    """T3 reads y from T2 and then x from T1, overwritten by T2 (5i)."""
    t1 = _txn(1, read("x", 0), write("x", 1))
    t2 = _txn(2, read("x", 1), write("x", 2), read("y", 0), write("y", 1))
    t3 = _txn(3, read("y", 1), read("x", 1))
    return History.from_transactions([[t1], [t2], [t3]], initial_keys=["x", "y"])


def fractured_read() -> History:
    """T1 updates x and y, but the reader observes only the x update (5j)."""
    t_x = _txn(1, read("x", 0), write("x", 1))
    t_y = _txn(2, read("y", 0), write("y", 3))
    t1 = _txn(3, read("x", 1), write("x", 2), read("y", 3), write("y", 4))
    t2 = _txn(4, read("x", 2), read("y", 0))
    return History.from_transactions([[t_x, t_y], [t1], [t2]], initial_keys=["x", "y"])


def causality_violation() -> History:
    """T3 sees T2's effect on y but misses T1's effect on x, seen by T2 (5k)."""
    t1 = _txn(1, read("x", 0), write("x", 1))
    t2 = _txn(2, read("x", 1), read("y", 0), write("y", 1))
    t3 = _txn(3, read("x", 0), read("y", 1))
    return History.from_transactions([[t1], [t2], [t3]], initial_keys=["x", "y"])


def long_fork() -> History:
    """Two readers observe the two concurrent writes in opposite orders (5l)."""
    t1 = _txn(1, read("x", 0), write("x", 1))
    t2 = _txn(2, read("y", 0), write("y", 1))
    t3 = _txn(3, read("x", 1), read("y", 0))
    t4 = _txn(4, read("x", 0), read("y", 1))
    return History.from_transactions([[t1], [t2], [t3], [t4]], initial_keys=["x", "y"])


def lost_update() -> History:
    """Two concurrent RMWs of the same object; one update is lost (5m)."""
    t1 = _txn(1, read("x", 0), write("x", 1))
    t2 = _txn(2, read("x", 0), write("x", 2))
    t3 = _txn(3, read("x", 2))
    return History.from_transactions([[t1], [t2], [t3]], initial_keys=["x"])


def write_skew() -> History:
    """Both transactions read x and y, then write one object each (5n)."""
    t1 = _txn(1, read("x", 0), read("y", 0), write("x", 1))
    t2 = _txn(2, read("x", 0), read("y", 0), write("y", 1))
    return History.from_transactions([[t1], [t2]], initial_keys=["x", "y"])


#: Mapping from catalog name to AnomalySpec, in Table I order.
def anomaly_catalog() -> Dict[str, AnomalySpec]:
    """The full catalog of the 14 anomalies of Table I, in order."""
    specs: List[AnomalySpec] = [
        AnomalySpec(
            AnomalyKind.THIN_AIR_READ,
            "A transaction reads a value out of thin air.",
            thin_air_read,
            violates_si=True,
            violates_ser=True,
            intra_transactional=True,
        ),
        AnomalySpec(
            AnomalyKind.ABORTED_READ,
            "A transaction reads a value from an aborted transaction.",
            aborted_read,
            violates_si=True,
            violates_ser=True,
            intra_transactional=True,
        ),
        AnomalySpec(
            AnomalyKind.FUTURE_READ,
            "A transaction reads from a write that occurs later in the same transaction.",
            future_read,
            violates_si=True,
            violates_ser=True,
            intra_transactional=True,
        ),
        AnomalySpec(
            AnomalyKind.NOT_MY_LAST_WRITE,
            "A transaction reads from its own but not the last write on the same object.",
            not_my_last_write,
            violates_si=True,
            violates_ser=True,
            intra_transactional=True,
        ),
        AnomalySpec(
            AnomalyKind.NOT_MY_OWN_WRITE,
            "A transaction does not read from its own write on the same object.",
            not_my_own_write,
            violates_si=True,
            violates_ser=True,
            intra_transactional=True,
        ),
        AnomalySpec(
            AnomalyKind.INTERMEDIATE_READ,
            "A transaction reads a value later overwritten by the transaction that wrote it.",
            intermediate_read,
            violates_si=True,
            violates_ser=True,
            intra_transactional=True,
        ),
        AnomalySpec(
            AnomalyKind.NON_REPEATABLE_READS,
            "A transaction reads multiple times from the same object but receives different values.",
            non_repeatable_reads,
            violates_si=True,
            violates_ser=True,
            intra_transactional=True,
        ),
        AnomalySpec(
            AnomalyKind.SESSION_GUARANTEE_VIOLATION,
            "A transaction misses the effect of the preceding transaction in the same session.",
            session_guarantee_violation,
            violates_si=True,
            violates_ser=True,
        ),
        AnomalySpec(
            AnomalyKind.NON_MONOTONIC_READ,
            "T3 reads y from T2 and then reads x from T1, but T2 has overwritten T1 on x.",
            non_monotonic_read,
            violates_si=True,
            violates_ser=True,
        ),
        AnomalySpec(
            AnomalyKind.FRACTURED_READ,
            "T1 updates both x and y, but the reader observes only the update to x.",
            fractured_read,
            violates_si=True,
            violates_ser=True,
        ),
        AnomalySpec(
            AnomalyKind.CAUSALITY_VIOLATION,
            "T3 sees the effect of T2 on y but misses the effect of T1, seen by T2, on x.",
            causality_violation,
            violates_si=True,
            violates_ser=True,
        ),
        AnomalySpec(
            AnomalyKind.LONG_FORK,
            "Two readers observe the two concurrent writes in opposite orders.",
            long_fork,
            violates_si=True,
            violates_ser=True,
        ),
        AnomalySpec(
            AnomalyKind.LOST_UPDATE,
            "Concurrent transactions write to the same object; one write is lost.",
            lost_update,
            violates_si=True,
            violates_ser=True,
        ),
        AnomalySpec(
            AnomalyKind.WRITE_SKEW,
            "Concurrent transactions read both x and y, then write to x and y respectively.",
            write_skew,
            violates_si=False,
            violates_ser=True,
        ),
    ]
    return {spec.kind.value: spec for spec in specs}


#: The canonical catalog names, in Table I order.
ANOMALY_NAMES: List[str] = list(anomaly_catalog().keys())


def anomaly_history(name: str) -> History:
    """Build the canonical MT history for the anomaly with the given name."""
    catalog = anomaly_catalog()
    if name not in catalog:
        raise KeyError(f"unknown anomaly {name!r}; known: {sorted(catalog)}")
    return catalog[name].build()
