"""Core of the reproduction: history model, dependency graphs, and the MTC
verification algorithms for SSER, SER, SI, and linearizability."""

from .anomalies import ANOMALY_NAMES, AnomalySpec, anomaly_catalog, anomaly_history
from .checker import MTChecker
from .checkers import MTHistoryError, check_ser, check_si, check_sser
from .csr import CSRGraph, first_nontrivial_scc
from .divergence import DivergenceInstance, find_all_divergences, find_divergence
from .graph import DependencyGraph, Edge, EdgeType, build_dependency
from .incremental import (
    CheckerSession,
    IncrementalChecker,
    PearceKellyOrder,
    stream_order,
)
from .index import HistoryIndex, ReadRecord, VersionEntry
from .intcheck import check_internal_consistency
from .lwt import LWTHistory, LWTKind, LWTOperation, check_linearizability, check_object_linearizability
from .mini import is_mini_transaction, is_mt_history, validate_mt_history
from .model import (
    INITIAL_TXN_ID,
    INITIAL_VALUE,
    History,
    Operation,
    OpType,
    Session,
    Transaction,
    TransactionStatus,
    make_initial_transaction,
    read,
    write,
)
from .result import AnomalyKind, CheckResult, IsolationLevel, Violation

__all__ = [
    "ANOMALY_NAMES",
    "AnomalyKind",
    "AnomalySpec",
    "CSRGraph",
    "CheckResult",
    "CheckerSession",
    "DependencyGraph",
    "DivergenceInstance",
    "Edge",
    "EdgeType",
    "History",
    "HistoryIndex",
    "INITIAL_TXN_ID",
    "INITIAL_VALUE",
    "IncrementalChecker",
    "IsolationLevel",
    "LWTHistory",
    "LWTKind",
    "LWTOperation",
    "MTChecker",
    "MTHistoryError",
    "Operation",
    "OpType",
    "PearceKellyOrder",
    "ReadRecord",
    "Session",
    "Transaction",
    "TransactionStatus",
    "VersionEntry",
    "Violation",
    "anomaly_catalog",
    "anomaly_history",
    "build_dependency",
    "check_internal_consistency",
    "check_linearizability",
    "check_object_linearizability",
    "check_ser",
    "check_si",
    "check_sser",
    "find_all_divergences",
    "find_divergence",
    "first_nontrivial_scc",
    "is_mini_transaction",
    "is_mt_history",
    "make_initial_transaction",
    "read",
    "stream_order",
    "validate_mt_history",
    "write",
]
