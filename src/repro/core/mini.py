"""Mini-transaction (MT) definitions and MT-history validation.

A *mini-transaction* (paper, Definition 8) is a transaction with

1. one or two read operations and at most two write operations, and
2. every write (not necessarily immediately) preceded by a read on the same
   object — the read-modify-write (RMW) pattern.

A *mini-transaction history* (Definition 9) contains only mini-transactions
(besides the initial transaction ``⊥T``) and assigns a unique value to every
write on the same object.  The RMW pattern plus unique values is what makes
the linear/quadratic verification algorithms of :mod:`repro.core.checkers`
sound and complete; histories that are not MT histories must be routed to
the general (solver-based) baseline checkers instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .model import History, Transaction

__all__ = [
    "MAX_MT_READS",
    "MAX_MT_WRITES",
    "MAX_MT_OPERATIONS",
    "MTViolation",
    "is_mini_transaction",
    "mt_violations",
    "validate_mt_history",
    "is_mt_history",
]

#: Maximum number of read operations in a mini-transaction.
MAX_MT_READS = 2
#: Maximum number of write operations in a mini-transaction.
MAX_MT_WRITES = 2
#: Maximum total number of operations in a mini-transaction.
MAX_MT_OPERATIONS = MAX_MT_READS + MAX_MT_WRITES


@dataclass
class MTViolation:
    """A reason why a transaction or history is not a valid MT (history)."""

    txn_id: int
    reason: str
    key: str = ""

    def __str__(self) -> str:
        suffix = f" (object {self.key})" if self.key else ""
        return f"T{self.txn_id}: {self.reason}{suffix}"


def mt_violations(txn: Transaction) -> List[MTViolation]:
    """Return the list of reasons why ``txn`` is not a mini-transaction.

    An empty list means the transaction satisfies Definition 8.
    The initial transaction is exempt.
    """
    if txn.is_initial:
        return []
    violations: List[MTViolation] = []
    num_reads = sum(1 for op in txn.operations if op.is_read)
    num_writes = sum(1 for op in txn.operations if op.is_write)
    if num_reads < 1:
        violations.append(MTViolation(txn.txn_id, "contains no read operation"))
    if num_reads > MAX_MT_READS:
        violations.append(
            MTViolation(txn.txn_id, f"contains {num_reads} reads (maximum {MAX_MT_READS})")
        )
    if num_writes > MAX_MT_WRITES:
        violations.append(
            MTViolation(txn.txn_id, f"contains {num_writes} writes (maximum {MAX_MT_WRITES})")
        )
    # RMW pattern: each write must be preceded by a read on the same object.
    seen_reads: Set[str] = set()
    for op in txn.operations:
        if op.is_read:
            seen_reads.add(op.key)
        elif op.key not in seen_reads:
            violations.append(
                MTViolation(
                    txn.txn_id,
                    "write is not preceded by a read on the same object",
                    key=op.key,
                )
            )
    return violations


def is_mini_transaction(txn: Transaction) -> bool:
    """Whether ``txn`` satisfies the mini-transaction criteria (Definition 8)."""
    return not mt_violations(txn)


def validate_mt_history(history: History) -> List[MTViolation]:
    """Validate that ``history`` is a mini-transaction history (Definition 9).

    Checks that every (non-initial) transaction is a mini-transaction and
    that every write on the same object assigns a unique value.  Uniqueness
    is checked across committed *and* aborted transactions, mirroring how
    real workload generators assign values (client id + local counter).
    """
    violations: List[MTViolation] = []
    for txn in history.transactions(include_initial=False):
        violations.extend(mt_violations(txn))

    seen_writes: Dict[Tuple[str, int], int] = {}
    for txn in history.transactions(include_initial=True):
        if txn.is_initial:
            continue
        for op in txn.operations:
            if not op.is_write or op.value is None:
                continue
            slot = (op.key, op.value)
            if slot in seen_writes and seen_writes[slot] != txn.txn_id:
                violations.append(
                    MTViolation(
                        txn.txn_id,
                        f"duplicate write of value {op.value} "
                        f"(also written by T{seen_writes[slot]})",
                        key=op.key,
                    )
                )
            else:
                seen_writes[slot] = txn.txn_id
    return violations


def is_mt_history(history: History) -> bool:
    """Whether ``history`` is a valid mini-transaction history."""
    return not validate_mt_history(history)
