"""Core data model: operations, transactions, sessions, and histories.

This module defines the vocabulary of black-box isolation checking used
throughout the library (paper, Section II):

* an :class:`Operation` is a read ``R(x, v)`` or write ``W(x, v)`` on an
  object (key) ``x`` with value ``v``;
* a :class:`Transaction` is a sequence of operations (the *program order*)
  issued by one client, together with its commit status and, optionally,
  wall-clock start/finish timestamps;
* a :class:`History` groups transactions into sessions and exposes the
  session order ``SO`` and the real-time order ``RT`` that the checking
  algorithms consume.

Every history implicitly (or explicitly) contains an *initial transaction*
``⊥T`` that installs the initial value of every object and precedes all
other transactions in the session order.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "OpType",
    "Operation",
    "TransactionStatus",
    "Transaction",
    "Session",
    "History",
    "INITIAL_TXN_ID",
    "INITIAL_VALUE",
    "STATUS_CODES",
    "STATUS_FROM_CODE",
    "history_from_stream",
    "read",
    "write",
]

#: Identifier reserved for the initial transaction ``⊥T``.
INITIAL_TXN_ID = -1

#: Value installed by the initial transaction for every object.
INITIAL_VALUE = 0


class OpType(enum.Enum):
    """The two kinds of operations a transaction may issue."""

    READ = "r"
    WRITE = "w"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpType.{self.name}"


@dataclass(frozen=True)
class Operation:
    """A single read or write operation.

    Attributes:
        op_type: whether this is a read or a write.
        key: the object the operation accesses.
        value: the value read or written.  For reads issued by a workload
            (before execution) the value may be ``None`` and is filled in by
            the database when the history is recorded.
    """

    op_type: OpType
    key: str
    value: Optional[int] = None

    @property
    def is_read(self) -> bool:
        return self.op_type is OpType.READ

    @property
    def is_write(self) -> bool:
        return self.op_type is OpType.WRITE

    def __str__(self) -> str:
        letter = "R" if self.is_read else "W"
        return f"{letter}({self.key},{self.value})"


def read(key: str, value: Optional[int] = None) -> Operation:
    """Convenience constructor for a read operation ``R(key, value)``."""
    return Operation(OpType.READ, key, value)


def write(key: str, value: int) -> Operation:
    """Convenience constructor for a write operation ``W(key, value)``."""
    return Operation(OpType.WRITE, key, value)


class TransactionStatus(enum.Enum):
    """Outcome of a transaction as observed by the issuing client."""

    COMMITTED = "committed"
    ABORTED = "aborted"
    #: The client never learned the outcome (e.g. a timeout); such
    #: transactions must be treated as possibly committed.
    UNKNOWN = "unknown"


#: Stable small-integer codes for :class:`TransactionStatus` — the single
#: source of truth for the columnar segment encoding
#: (:mod:`repro.history.columnar`) and every consumer that decodes its
#: ``statuses`` column.  Append-only: existing codes are part of the
#: on-disk segment format.
STATUS_CODES: Dict[TransactionStatus, int] = {
    TransactionStatus.COMMITTED: 0,
    TransactionStatus.ABORTED: 1,
    TransactionStatus.UNKNOWN: 2,
}

#: Inverse of :data:`STATUS_CODES`: ``STATUS_FROM_CODE[code] -> status``.
STATUS_FROM_CODE: Tuple[TransactionStatus, ...] = tuple(
    status for status, _ in sorted(STATUS_CODES.items(), key=lambda item: item[1])
)


@dataclass
class Transaction:
    """A transaction: a program-ordered sequence of operations.

    The notation ``T ⊢ W(x, v)`` from the paper ("the last value written by
    ``T`` on ``x`` is ``v``") is exposed as :meth:`final_write`, and
    ``T ⊢ R(x, v)`` ("``T`` reads ``v`` from ``x`` before writing to it") as
    :meth:`external_read`.
    """

    txn_id: int
    operations: List[Operation] = field(default_factory=list)
    session_id: int = 0
    status: TransactionStatus = TransactionStatus.COMMITTED
    start_ts: Optional[float] = None
    finish_ts: Optional[float] = None

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def is_initial(self) -> bool:
        """Whether this is the special initializing transaction ``⊥T``."""
        return self.txn_id == INITIAL_TXN_ID

    @property
    def committed(self) -> bool:
        return self.status is TransactionStatus.COMMITTED

    @property
    def aborted(self) -> bool:
        return self.status is TransactionStatus.ABORTED

    def reads(self) -> Iterator[Operation]:
        """Iterate over the read operations in program order."""
        return (op for op in self.operations if op.is_read)

    def writes(self) -> Iterator[Operation]:
        """Iterate over the write operations in program order."""
        return (op for op in self.operations if op.is_write)

    def keys(self) -> Set[str]:
        """All objects accessed by this transaction."""
        return {op.key for op in self.operations}

    def keys_read(self) -> Set[str]:
        return {op.key for op in self.operations if op.is_read}

    def keys_written(self) -> Set[str]:
        return {op.key for op in self.operations if op.is_write}

    # ------------------------------------------------------------------
    # Paper notation: T ⊢ W(x, v) and T ⊢ R(x, v)
    # ------------------------------------------------------------------
    def final_write(self, key: str) -> Optional[int]:
        """Return ``v`` such that ``T ⊢ W(key, v)``, or ``None``.

        This is the *last* value the transaction writes to ``key``; it is the
        value other transactions may observe once ``T`` commits.
        """
        value: Optional[int] = None
        for op in self.operations:
            if op.is_write and op.key == key:
                value = op.value
        return value

    def writes_to(self, key: str) -> bool:
        """Whether the transaction contains any write on ``key``."""
        return any(op.is_write and op.key == key for op in self.operations)

    def external_read(self, key: str) -> Optional[int]:
        """Return ``v`` such that ``T ⊢ R(key, v)``, or ``None``.

        This is the value of the *first* read of ``key`` that occurs before
        any write of ``key`` within the transaction, i.e. the value the
        transaction observed from the rest of the system.
        """
        for op in self.operations:
            if op.key != key:
                continue
            if op.is_write:
                return None
            return op.value
        return None

    def external_reads(self) -> Dict[str, int]:
        """All external reads of the transaction as a ``{key: value}`` map."""
        result: Dict[str, int] = {}
        written: Set[str] = set()
        for op in self.operations:
            if op.is_write:
                written.add(op.key)
            elif op.key not in written and op.key not in result:
                if op.value is not None:
                    result[op.key] = op.value
        return result

    def final_writes(self) -> Dict[str, int]:
        """All final writes of the transaction as a ``{key: value}`` map."""
        result: Dict[str, int] = {}
        for op in self.operations:
            if op.is_write and op.value is not None:
                result[op.key] = op.value
        return result

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def append(self, op: Operation) -> None:
        """Append an operation at the end of the program order."""
        self.operations.append(op)

    def __len__(self) -> int:
        return len(self.operations)

    def __str__(self) -> str:
        ops = ", ".join(str(op) for op in self.operations)
        name = "⊥T" if self.is_initial else f"T{self.txn_id}"
        return f"{name}[{ops}]"


@dataclass
class Session:
    """A sequence of transactions issued by a single client."""

    session_id: int
    transactions: List[Transaction] = field(default_factory=list)

    def append(self, txn: Transaction) -> None:
        txn.session_id = self.session_id
        self.transactions.append(txn)

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)


class History:
    """A history ``H = (T, SO, RT)`` (paper, Definition 2).

    The session order ``SO`` is derived from the per-session transaction
    sequences; the real-time order ``RT`` is derived from the transactions'
    start and finish timestamps (``T1 RT→ T2`` iff ``T1`` finishes before
    ``T2`` starts).  The initial transaction, when present, precedes every
    other transaction in the session order.
    """

    def __init__(
        self,
        sessions: Optional[Sequence[Session]] = None,
        *,
        initial_transaction: Optional[Transaction] = None,
    ) -> None:
        self.sessions: List[Session] = list(sessions) if sessions else []
        self.initial_transaction: Optional[Transaction] = initial_transaction
        self._txn_index: Optional[Dict[int, Transaction]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_transactions(
        cls,
        sessions: Sequence[Sequence[Transaction]],
        *,
        initial_keys: Optional[Iterable[str]] = None,
        initial_transaction: Optional[Transaction] = None,
    ) -> "History":
        """Build a history from per-session transaction lists.

        Args:
            sessions: one sequence of transactions per session, in session
                order.
            initial_keys: if given (and no explicit initial transaction is
                supplied), an initial transaction writing ``INITIAL_VALUE``
                to each listed key is synthesised.
            initial_transaction: explicit ``⊥T`` to use.
        """
        session_objs = []
        for sid, txns in enumerate(sessions):
            session = Session(session_id=sid)
            for txn in txns:
                session.append(txn)
            session_objs.append(session)
        if initial_transaction is None and initial_keys is not None:
            initial_transaction = make_initial_transaction(initial_keys)
        return cls(session_objs, initial_transaction=initial_transaction)

    def add_session(self, session: Session) -> None:
        self.sessions.append(session)
        self._txn_index = None

    def ensure_initial_transaction(self, keys: Optional[Iterable[str]] = None) -> None:
        """Synthesise ``⊥T`` for all keys accessed in the history if absent."""
        if self.initial_transaction is not None:
            return
        if keys is None:
            keys = self.keys()
        self.initial_transaction = make_initial_transaction(keys)
        self._txn_index = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def transactions(self, include_initial: bool = True) -> List[Transaction]:
        """All transactions in the history (committed and aborted)."""
        txns: List[Transaction] = []
        if include_initial and self.initial_transaction is not None:
            txns.append(self.initial_transaction)
        for session in self.sessions:
            txns.extend(session.transactions)
        return txns

    def committed_transactions(self, include_initial: bool = True) -> List[Transaction]:
        """All committed transactions (the ones the checkers reason about)."""
        return [
            t
            for t in self.transactions(include_initial=include_initial)
            if t.committed
        ]

    def transaction_by_id(self, txn_id: int) -> Transaction:
        if self._txn_index is None:
            self._txn_index = {t.txn_id: t for t in self.transactions()}
        return self._txn_index[txn_id]

    def keys(self) -> Set[str]:
        """All objects accessed anywhere in the history."""
        result: Set[str] = set()
        for txn in self.transactions(include_initial=False):
            result.update(txn.keys())
        if self.initial_transaction is not None:
            result.update(self.initial_transaction.keys())
        return result

    def num_transactions(self, include_initial: bool = False) -> int:
        return len(self.transactions(include_initial=include_initial))

    # ------------------------------------------------------------------
    # Orders
    # ------------------------------------------------------------------
    def session_order(self, committed_only: bool = True) -> List[Tuple[Transaction, Transaction]]:
        """Adjacent session-order pairs (transitive edges are implied).

        The initial transaction precedes the first transaction of every
        session.  Following the optimization noted in the paper
        (Section IV-D), only adjacent pairs are returned; the transitive
        closure never needs to be materialised for acyclicity checking.
        """
        pairs: List[Tuple[Transaction, Transaction]] = []
        for session in self.sessions:
            txns = [
                t
                for t in session.transactions
                if (t.committed or not committed_only)
            ]
            if self.initial_transaction is not None and txns:
                pairs.append((self.initial_transaction, txns[0]))
            for prev, nxt in zip(txns, txns[1:]):
                pairs.append((prev, nxt))
        return pairs

    def real_time_order(
        self, committed_only: bool = True, reduced: bool = True
    ) -> List[Tuple[Transaction, Transaction]]:
        """Real-time order pairs, ``T1 RT→ T2`` iff ``T1.finish < T2.start``.

        Args:
            committed_only: restrict to committed transactions.
            reduced: return the transitive reduction of the interval order
                instead of the full quadratic relation.  Reachability (and
                hence acyclicity of any graph containing these edges) is
                preserved, because RT is an interval order and the reduction
                of a partial order preserves its reachability relation.
        """
        txns = [
            t
            for t in self.transactions(include_initial=False)
            if (t.committed or not committed_only)
            and t.start_ts is not None
            and t.finish_ts is not None
        ]
        if reduced:
            pairs = interval_order_reduction(txns)
        else:
            pairs = [
                (a, b)
                for a, b in itertools.permutations(txns, 2)
                if a.finish_ts < b.start_ts  # type: ignore[operator]
            ]
        if self.initial_transaction is not None and txns:
            # ⊥T precedes every timestamped transaction in real time.
            first = min(txns, key=lambda t: t.start_ts)  # type: ignore[arg-type]
            pairs.append((self.initial_transaction, first))
        return pairs

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_transactions(include_initial=False)

    def __repr__(self) -> str:
        return (
            f"History(sessions={len(self.sessions)}, "
            f"transactions={self.num_transactions()})"
        )


def history_from_stream(transactions: Iterable[Transaction]) -> History:
    """Group a session-preserving transaction stream into a :class:`History`.

    The canonical reconstruction convention shared by every stream-shaped
    source (JSONL loads, columnar segments, lazily materialised indexes):
    ``⊥T`` becomes the initial transaction, the rest are grouped by session
    id with per-stream order preserved, and sessions are listed in
    ascending id order.
    """
    sessions: Dict[int, Session] = {}
    initial: Optional[Transaction] = None
    for txn in transactions:
        if txn.is_initial:
            initial = txn
            continue
        session = sessions.setdefault(txn.session_id, Session(txn.session_id))
        session.transactions.append(txn)
    return History(
        sessions=[sessions[sid] for sid in sorted(sessions)],
        initial_transaction=initial,
    )


def make_initial_transaction(keys: Iterable[str], value: int = INITIAL_VALUE) -> Transaction:
    """Create the initial transaction ``⊥T`` writing ``value`` to each key."""
    txn = Transaction(txn_id=INITIAL_TXN_ID, session_id=-1)
    for key in sorted(set(keys)):
        txn.append(write(key, value))
    return txn


def interval_order_reduction(
    txns: Sequence[Transaction],
) -> List[Tuple[Transaction, Transaction]]:
    """Transitive reduction of the real-time (interval) order over ``txns``.

    ``A → B`` is kept iff ``A.finish < B.start`` and there is no ``C`` with
    ``A.finish < C.start`` and ``C.finish < B.start``.  Equivalently, among
    the predecessors of ``B`` (all ``A`` with ``A.finish < B.start``), only
    those whose finish time is at least the maximum *start* time of any
    predecessor are immediate.
    """
    timed = [t for t in txns if t.start_ts is not None and t.finish_ts is not None]
    if not timed:
        return []
    by_finish = sorted(timed, key=lambda t: t.finish_ts)  # type: ignore[arg-type]
    by_start = sorted(timed, key=lambda t: t.start_ts)  # type: ignore[arg-type]

    pairs: List[Tuple[Transaction, Transaction]] = []
    finish_idx = 0
    max_start_of_preds = float("-inf")
    # Predecessor pool, kept as a list; we only need those with
    # finish >= max_start_of_preds, so we prune lazily.
    preds: List[Transaction] = []
    for b in by_start:
        while finish_idx < len(by_finish) and by_finish[finish_idx].finish_ts < b.start_ts:  # type: ignore[operator]
            cand = by_finish[finish_idx]
            preds.append(cand)
            if cand.start_ts is not None and cand.start_ts > max_start_of_preds:
                max_start_of_preds = cand.start_ts
            finish_idx += 1
        if not preds:
            continue
        # Prune predecessors that can no longer be immediate for any later b.
        preds = [a for a in preds if a.finish_ts >= max_start_of_preds]  # type: ignore[operator]
        for a in preds:
            pairs.append((a, b))
    return pairs
