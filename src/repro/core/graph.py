"""Dependency graphs over transactions and the BUILDDEPENDENCY procedure.

A dependency graph (paper, Definition 3) extends a history with the
per-object relations ``WR(x)`` (write–read), ``WW(x)`` (write–write), and
``RW(x)`` (read–write, the anti-dependency), plus the session order ``SO``
and, for strict serializability, the real-time order ``RT``.

For mini-transaction histories the graph is (nearly) unique: the unique
value written by each transaction determines ``WR`` entirely, the RMW
pattern determines ``WW`` from ``WR``, and ``RW`` is derived from the other
two.  :func:`build_dependency` implements Algorithm 1's BUILDDEPENDENCY,
optionally computing the per-object transitive closure of ``WW`` (the
unoptimized variant used in the correctness proof) or skipping it (the
optimized variant of Section IV-C, the default).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .index import HistoryIndex
from .model import History, Transaction

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .csr import CSRGraph

__all__ = ["EdgeType", "Edge", "DependencyGraph", "build_dependency", "find_cycle"]


class EdgeType(enum.Enum):
    """Kinds of dependency edges between transactions."""

    RT = "RT"
    SO = "SO"
    WR = "WR"
    WW = "WW"
    RW = "RW"
    #: Composite edges of the SI induced graph ``(SO ∪ WR ∪ WW) ; RW?``.
    COMPOSED = "COMPOSED"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeType.{self.name}"


@dataclass(frozen=True)
class Edge:
    """A labeled dependency edge ``source --type(key)--> target``."""

    source: int
    target: int
    edge_type: EdgeType
    key: Optional[str] = None

    @property
    def label(self) -> str:
        if self.key is not None:
            return f"{self.edge_type.value}({self.key})"
        return self.edge_type.value

    def __str__(self) -> str:
        return f"T{self.source} --{self.label}--> T{self.target}"


class DependencyGraph:
    """A multigraph of labeled dependency edges over transaction ids."""

    def __init__(self, nodes: Optional[Iterable[int]] = None) -> None:
        self.nodes: Set[int] = set(nodes) if nodes is not None else set()
        #: adjacency: source -> {target -> set of (EdgeType, key)}
        self._succ: Dict[int, Dict[int, Set[Tuple[EdgeType, Optional[str]]]]] = defaultdict(dict)
        #: reverse adjacency: target -> {sources}; maintained so that
        #: :meth:`remove_node` (the streaming window GC hot path) touches
        #: only the incident nodes instead of scanning the whole graph.
        self._pred: Dict[int, Set[int]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: int) -> None:
        self.nodes.add(node)

    def add_edge(
        self,
        source: int,
        target: int,
        edge_type: EdgeType,
        key: Optional[str] = None,
    ) -> bool:
        """Add an edge; returns ``True`` if it was not already present."""
        self.nodes.add(source)
        self.nodes.add(target)
        labels = self._succ[source].setdefault(target, set())
        tag = (edge_type, key)
        if tag in labels:
            return False
        if not labels:
            self._pred.setdefault(target, set()).add(source)
        labels.add(tag)
        self._edge_count += 1
        return True

    def remove_node(self, node: int) -> None:
        """Remove a node and every edge incident to it — in O(degree).

        Used by the streaming checker's bounded-window garbage collection
        (:class:`repro.core.incremental.IncrementalChecker`); the reverse
        adjacency map makes the cost proportional to the node's own degree,
        so window GC never scans the rest of the graph.
        """
        if node not in self.nodes:
            return
        self.nodes.discard(node)
        outgoing = self._succ.pop(node, None)
        if outgoing:
            self._edge_count -= sum(len(labels) for labels in outgoing.values())
            for target in outgoing:
                sources = self._pred.get(target)
                if sources is not None:
                    sources.discard(node)
                    if not sources:
                        del self._pred[target]
        for source in self._pred.pop(node, ()):
            labels = self._succ.get(source, {}).pop(node, None)
            if labels is not None:
                self._edge_count -= len(labels)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def successors(self, node: int) -> Iterator[int]:
        return iter(self._succ.get(node, {}))

    def predecessors(self, node: int) -> Iterator[int]:
        """Sources of the edges into ``node`` (via the reverse adjacency)."""
        return iter(self._pred.get(node, ()))

    def has_edge(
        self,
        source: int,
        target: int,
        edge_type: Optional[EdgeType] = None,
        key: Optional[str] = None,
    ) -> bool:
        labels = self._succ.get(source, {}).get(target)
        if labels is None:
            return False
        if edge_type is None:
            return True
        if key is None:
            return any(etype is edge_type for etype, _ in labels)
        return (edge_type, key) in labels

    def edge_labels(self, source: int, target: int) -> Set[Tuple[EdgeType, Optional[str]]]:
        return set(self._succ.get(source, {}).get(target, set()))

    def edges(self, edge_type: Optional[EdgeType] = None) -> Iterator[Edge]:
        """Iterate over all edges, optionally filtered by type."""
        for source, targets in self._succ.items():
            for target, labels in targets.items():
                for etype, key in labels:
                    if edge_type is None or etype is edge_type:
                        yield Edge(source, target, etype, key)

    def edges_by_type(self, types: FrozenSet[EdgeType]) -> Iterator[Edge]:
        for edge in self.edges():
            if edge.edge_type in types:
                yield edge

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def num_nodes(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Per-object views used by the checkers
    # ------------------------------------------------------------------
    def typed_edges_per_key(self, edge_type: EdgeType) -> Dict[Optional[str], List[Tuple[int, int]]]:
        """Group edges of ``edge_type`` by object."""
        grouped: Dict[Optional[str], List[Tuple[int, int]]] = defaultdict(list)
        for edge in self.edges(edge_type):
            grouped[edge.key].append((edge.source, edge.target))
        return grouped

    # ------------------------------------------------------------------
    # Acyclicity
    # ------------------------------------------------------------------
    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def find_cycle(self) -> Optional[List[Edge]]:
        """Find a cycle, returned as a list of labeled edges, or ``None``.

        The search runs on a dense integer re-mapping of the node set
        (lists and a flat colour array instead of per-node dictionaries),
        which is markedly faster on the large graphs the parallel pipeline
        shards over; node and successor order is sorted, so the cycle
        returned is deterministic across runs and worker counts.
        """
        order = sorted(self.nodes)
        dense = {node: i for i, node in enumerate(order)}
        adjacency = [
            sorted(dense[t] for t in self._succ.get(node, ()) if t in dense)
            for node in order
        ]
        cycle_dense = _find_cycle_dense(adjacency)
        if cycle_dense is None:
            return None
        return self.label_cycle([order[i] for i in cycle_dense])

    def label_cycle(self, cycle_nodes: Sequence[int]) -> List[Edge]:
        """Attach edge labels to a cycle given as an ordered node sequence.

        ``cycle_nodes[i] -> cycle_nodes[i + 1]`` (wrapping around) must be
        edges of this graph; the most informative label of each is chosen.
        Used both by :meth:`find_cycle` and by the streaming checker, whose
        online topological order reports cycles as node sequences.
        """
        edges: List[Edge] = []
        n = len(cycle_nodes)
        for i in range(n):
            source = cycle_nodes[i]
            target = cycle_nodes[(i + 1) % n]
            labels = self._succ.get(source, {}).get(target, set())
            if labels:
                # Prefer the most informative label (anything but RT/SO);
                # the key breaks ties so the choice never depends on set
                # iteration order (the dense and legacy pipelines must label
                # identically).
                etype, key = min(
                    labels,
                    key=lambda tag: (
                        tag[0] in (EdgeType.RT, EdgeType.SO),
                        tag[0].value,
                        tag[1] or "",
                    ),
                )
                edges.append(Edge(source, target, etype, key))
            else:  # pragma: no cover - defensive: cycle must use real edges
                edges.append(Edge(source, target, EdgeType.COMPOSED, None))
        return edges

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def restricted(self, types: FrozenSet[EdgeType]) -> "DependencyGraph":
        """A copy of the graph containing only edges with the given types."""
        sub = DependencyGraph(self.nodes)
        for edge in self.edges():
            if edge.edge_type in types:
                sub.add_edge(edge.source, edge.target, edge.edge_type, edge.key)
        return sub

    def si_induced_graph(self) -> "DependencyGraph":
        """The graph ``G' = (V, (SO ∪ WR ∪ WW) ; RW?)`` used by CHECKSI.

        An edge ``a → b`` is added when ``a (SO|WR|WW)→ b`` and, additionally,
        ``a → c`` is added for every ``b RW→ c``.
        """
        induced = DependencyGraph(self.nodes)
        base_types = (EdgeType.SO, EdgeType.WR, EdgeType.WW)
        rw_succ: Dict[int, List[Tuple[int, Optional[str]]]] = defaultdict(list)
        for edge in self.edges(EdgeType.RW):
            rw_succ[edge.source].append((edge.target, edge.key))
        for edge in self.edges():
            if edge.edge_type not in base_types:
                continue
            induced.add_edge(edge.source, edge.target, edge.edge_type, edge.key)
            for target, key in rw_succ.get(edge.target, ()):
                induced.add_edge(edge.source, target, EdgeType.COMPOSED, key)
        return induced

    def __repr__(self) -> str:
        return f"DependencyGraph(nodes={len(self.nodes)}, edges={self._edge_count})"


def _find_cycle_dense(adjacency: Sequence[Sequence[int]]) -> Optional[List[int]]:
    """Iterative DFS cycle detection over a dense ``0..n-1`` adjacency list.

    The integer fast path behind :meth:`DependencyGraph.find_cycle` and
    :meth:`DependencyGraph.is_acyclic`: colours live in a flat ``bytearray``
    and successor iteration walks plain lists, avoiding the per-node dict
    lookups of the generic :func:`find_cycle`.  Roots are visited in
    ascending order, so the reported cycle is deterministic.
    """
    n = len(adjacency)
    WHITE, GRAY, BLACK = 0, 1, 2
    colour = bytearray(n)
    parent = [-1] * n
    for root in range(n):
        if colour[root] != WHITE:
            continue
        colour[root] = GRAY
        stack: List[Tuple[int, int]] = [(root, 0)]  # (node, next successor index)
        while stack:
            node, pos = stack[-1]
            succ = adjacency[node]
            advanced = False
            while pos < len(succ):
                nxt = succ[pos]
                pos += 1
                if colour[nxt] == WHITE:
                    colour[nxt] = GRAY
                    parent[nxt] = node
                    stack[-1] = (node, pos)
                    stack.append((nxt, 0))
                    advanced = True
                    break
                if colour[nxt] == GRAY:
                    # Back edge node -> nxt closes a cycle; walk parents back.
                    cycle = [node]
                    current = node
                    while current != nxt:
                        current = parent[current]
                        cycle.append(current)
                    cycle.reverse()
                    return cycle
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def find_cycle(
    nodes: Iterable[int], adjacency: Dict[int, List[int]]
) -> Optional[List[int]]:
    """Iterative DFS cycle detection over an integer adjacency map.

    Returns the list of nodes along one cycle (in order), or ``None`` when
    the graph is acyclic.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    colour: Dict[int, int] = {node: WHITE for node in nodes}
    parent: Dict[int, Optional[int]] = {}

    for root in colour:
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[int, Iterator[int]]] = [(root, iter(adjacency.get(root, ())))]
        colour[root] = GRAY
        parent[root] = None
        while stack:
            node, neighbours = stack[-1]
            advanced = False
            for nxt in neighbours:
                if nxt not in colour:
                    colour[nxt] = WHITE
                if colour[nxt] == WHITE:
                    colour[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, iter(adjacency.get(nxt, ()))))
                    advanced = True
                    break
                if colour[nxt] == GRAY:
                    # Found a back edge node -> nxt; reconstruct the cycle.
                    cycle = [node]
                    current = node
                    while current != nxt:
                        current = parent[current]  # type: ignore[assignment]
                        cycle.append(current)
                    cycle.reverse()
                    return cycle
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def build_dependency(
    history: History,
    *,
    with_rt: bool = False,
    transitive_ww: bool = False,
    reduced_rt: bool = True,
    index: Optional[HistoryIndex] = None,
    dense: bool = False,
) -> Union[DependencyGraph, "CSRGraph"]:
    """Algorithm 1's BUILDDEPENDENCY for mini-transaction histories.

    Args:
        history: the input history (assumed to satisfy the INT axiom; run
            :func:`repro.core.intcheck.check_internal_consistency` first).
        with_rt: add real-time edges (used by CHECKSSER only).
        transitive_ww: compute the per-object transitive closure of ``WW``
            (the proof-friendly variant); the optimized variant of
            Section IV-C omits it, and Theorem 1/2 show the acyclicity
            verdicts coincide.
        reduced_rt: use the transitive reduction of the real-time interval
            order instead of the full quadratic relation (reachability, and
            hence every acyclicity verdict, is unchanged).
        index: the shared :class:`~repro.core.index.HistoryIndex`; built
            here when not supplied, so the resolved read records and cached
            SO/RT pairs are computed exactly once per call chain.
        dense: emit an array-native :class:`~repro.core.csr.CSRGraph`
            instead of the labeled multigraph.  The dense graph never
            allocates an :class:`Edge` on the accept path and converts to
            the legacy :class:`DependencyGraph` lazily
            (``CSRGraph.to_multigraph()``) when a cycle must be labeled or
            a caller asks for the multigraph.  This is the default path of
            the batch checkers.

    Returns:
        The dependency graph over committed transactions (including ``⊥T``)
        — a :class:`DependencyGraph`, or a :class:`~repro.core.csr.CSRGraph`
        when ``dense=True``.
    """
    if index is None:
        index = HistoryIndex.build(history)
    if dense:
        from .csr import CSRGraph  # deferred: csr builds on this module

        return CSRGraph.from_index(
            index,
            with_rt=with_rt,
            transitive_ww=transitive_ww,
            reduced_rt=reduced_rt,
        )
    committed = index.committed
    graph = DependencyGraph(t.txn_id for t in committed)
    committed_ids = index.committed_ids

    if with_rt:
        for source, target in index.real_time_pairs(reduced=reduced_rt):
            if source.txn_id in committed_ids and target.txn_id in committed_ids:
                graph.add_edge(source.txn_id, target.txn_id, EdgeType.RT)

    for source, target in index.session_order_pairs:
        if source.txn_id in committed_ids and target.txn_id in committed_ids:
            graph.add_edge(source.txn_id, target.txn_id, EdgeType.SO)

    # WR edges (entirely determined by unique values), and WW edges inferred
    # from WR thanks to the RMW pattern: if the reader also writes the same
    # object, it directly follows the writer it read from in the version
    # order of that object.
    ww_per_key: Dict[str, List[Tuple[int, int]]] = defaultdict(list)
    wr_per_key: Dict[str, List[Tuple[int, int]]] = defaultdict(list)
    for txn, record in index.iter_read_records():
        key = record.key
        writer = record.writer
        if writer is None or not writer.committed or writer.txn_id == txn.txn_id:
            # Read-provenance anomalies are reported by the INT pre-pass;
            # skip the edge here rather than guessing.
            continue
        graph.add_edge(writer.txn_id, txn.txn_id, EdgeType.WR, key)
        wr_per_key[key].append((writer.txn_id, txn.txn_id))
        if record.writes_key:
            graph.add_edge(writer.txn_id, txn.txn_id, EdgeType.WW, key)
            ww_per_key[key].append((writer.txn_id, txn.txn_id))

    if transitive_ww:
        for key, pairs in ww_per_key.items():
            closure = _transitive_closure(pairs)
            for source, target in closure:
                if graph.add_edge(source, target, EdgeType.WW, key):
                    ww_per_key[key].append((source, target))

    # RW edges: T' --WR(x)--> T and T' --WW(x)--> S with T != S gives
    # T --RW(x)--> S.
    ww_successors: Dict[Tuple[int, str], List[int]] = defaultdict(list)
    for edge in list(graph.edges(EdgeType.WW)):
        assert edge.key is not None
        ww_successors[(edge.source, edge.key)].append(edge.target)
    for edge in list(graph.edges(EdgeType.WR)):
        assert edge.key is not None
        for overwriter in ww_successors.get((edge.source, edge.key), ()):
            if overwriter != edge.target:
                graph.add_edge(edge.target, overwriter, EdgeType.RW, edge.key)

    return graph


def _transitive_closure(pairs: Sequence[Tuple[int, int]]) -> Set[Tuple[int, int]]:
    """Transitive closure of a relation given as a list of pairs.

    One Tarjan pass condenses the relation into its SCC DAG; because Tarjan
    emits components in reverse topological order, a single accumulation
    sweep then assigns every component the union of its successors'
    reachable sets — no fixpoint re-iteration.  On the per-key WW relations
    of ``transitive_ww=True`` this is a single linear walk plus the
    (inherently quadratic) closure output; anomalous histories whose WW
    relation is cyclic are handled by the condensation (members of a
    nontrivial SCC all reach each other).
    """
    succ: Dict[int, List[int]] = {}
    nodes: List[int] = []
    seen: Set[int] = set()
    for source, target in pairs:
        succ.setdefault(source, []).append(target)
        for node in (source, target):
            if node not in seen:
                seen.add(node)
                nodes.append(node)

    # Iterative Tarjan over the (sparse, int-keyed) relation.
    ids: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    scc_stack: List[int] = []
    comp_of: Dict[int, int] = {}
    comp_members: List[List[int]] = []
    #: nodes reachable from each component, members included when cyclic.
    comp_reach: List[Set[int]] = []
    counter = 0
    for root in nodes:
        if root in ids:
            continue
        ids[root] = low[root] = counter
        counter += 1
        scc_stack.append(root)
        on_stack.add(root)
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, ptr = work[-1]
            row = succ.get(node, ())
            if ptr < len(row):
                work[-1] = (node, ptr + 1)
                nxt = row[ptr]
                if nxt not in ids:
                    ids[nxt] = low[nxt] = counter
                    counter += 1
                    scc_stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, 0))
                elif nxt in on_stack and ids[nxt] < low[node]:
                    low[node] = ids[nxt]
            else:
                work.pop()
                low_node = low[node]
                if work and low_node < low[work[-1][0]]:
                    low[work[-1][0]] = low_node
                if low_node == ids[node]:
                    members: List[int] = []
                    while True:
                        popped = scc_stack.pop()
                        on_stack.discard(popped)
                        members.append(popped)
                        if popped == node:
                            break
                    comp = len(comp_members)
                    for member in members:
                        comp_of[member] = comp
                    cyclic = len(members) > 1 or any(
                        member in succ.get(member, ()) for member in members
                    )
                    # Successor components are already emitted (reverse
                    # topological order), so their reach sets are final.
                    reach: Set[int] = set()
                    for member in members:
                        for nxt in succ.get(member, ()):
                            target_comp = comp_of[nxt]
                            if target_comp != comp:
                                reach.add(nxt)
                                reach.update(comp_reach[target_comp])
                    if cyclic:
                        reach.update(members)
                    comp_members.append(members)
                    comp_reach.append(reach)

    closure: Set[Tuple[int, int]] = set(pairs)
    for comp, members in enumerate(comp_members):
        reach = comp_reach[comp]
        for source in members:
            for target in reach:
                if source != target:
                    closure.add((source, target))
    return closure
