"""Streaming incremental verification: online MTC checking.

The batch checkers (:func:`repro.core.checkers.check_ser` and friends)
rebuild the full dependency graph on every call, which is the right tool for
archived histories but cannot keep up with continuous traffic: re-verifying
after each of ``n`` transactions costs Θ(n²) overall.  This module provides
the online counterpart:

* :class:`PearceKellyOrder` maintains a topological order of the evolving
  check graph under single-edge insertions (Pearce & Kelly, *A dynamic
  topological sort algorithm for directed acyclic graphs*, JEA 2006).
  Inserting an edge costs time proportional to the *affected region* — the
  nodes whose order actually has to move — instead of the whole graph, so
  acyclicity is re-established per transaction without re-running
  :func:`repro.core.graph.find_cycle`.
* :class:`IncrementalChecker` ingests transactions one at a time (or in
  rounds), extends a :class:`~repro.core.graph.DependencyGraph` in place —
  WR/WW/RW edges are derived from per-version *slots*, SO from per-session
  tails, RT from an online interval-order reduction — and reports each
  violation at the exact transaction whose ingestion created it.
* :class:`CheckerSession` is the user-facing facade obtained from
  :meth:`repro.core.checker.MTChecker.session`; it also acts as a live
  ``on_transaction`` hook for :class:`repro.workloads.runner.WorkloadRunner`.

Equivalence invariant
---------------------
For any ingestion order that preserves per-session order, the verdict after
ingesting a complete history equals the batch verdict of
:func:`~repro.core.checkers.check_ser` / :func:`~repro.core.checkers.check_si`
/ :func:`~repro.core.checkers.check_sser` on that history (the reported
counterexample may differ in shape, never in existence).  Reads may arrive
before their writers: such reads are *pending* until the writer shows up, and
reads that never resolve surface as ThinAirRead from :meth:`result` — exactly
the verdict the batch INT pre-pass would reach.

Bounded-window mode
-------------------
With ``window=W`` the checker garbage-collects transactions once ``W`` newer
transactions have been ingested.  A collected transaction can never rejoin a
cycle provided the stream is *W-bounded*: writers are delivered before their
readers, and every read observes a version that is either still the latest
on its object (current versions may be read at any age) or was overwritten
at most ``W`` transactions ago.  A version is *sealed* — its per-version
bookkeeping dropped — when the first transaction that overwrote it is
collected; reads of sealed versions break the bound and are counted in
:attr:`IncrementalChecker.stale_reads` (a nonzero count means the window was
too small for the stream and the verdict is no longer complete) rather than
silently dropped.  Sealed-version markers themselves are capped (FIFO,
``max(4·W, 1024)`` entries), so total memory is O(window + live keys)
regardless of stream length; a read of a version whose marker already
expired surfaces as ThinAirRead, which is strictly louder.
"""

from __future__ import annotations

import heapq
import time
from bisect import bisect_left, bisect_right
from collections import defaultdict, deque
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from .. import obs
from .checkers import MTHistoryError, classify_cycle
from .graph import DependencyGraph, EdgeType
from .intcheck import ops_int_candidate, transaction_int_violations
from .mini import mt_violations
from .model import (
    INITIAL_TXN_ID,
    STATUS_CODES,
    STATUS_FROM_CODE,
    History,
    Transaction,
    TransactionStatus,
    make_initial_transaction,
)
from .result import AnomalyKind, CheckResult, IsolationLevel, Violation

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..history.columnar import ColumnarHistory

__all__ = [
    "PearceKellyOrder",
    "IncrementalChecker",
    "CheckerSession",
    "stream_order",
    "CHECKPOINT_STATE_FORMAT",
]

#: Format tag of :meth:`IncrementalChecker.checkpoint` state dictionaries.
CHECKPOINT_STATE_FORMAT = "repro-checker-state-v1"

#: Isolation levels the incremental checker supports.
GRAPH_LEVELS = (
    IsolationLevel.SERIALIZABILITY,
    IsolationLevel.SNAPSHOT_ISOLATION,
    IsolationLevel.STRICT_SERIALIZABILITY,
)

_BASE_TYPES = (EdgeType.SO, EdgeType.WR, EdgeType.WW)


class PearceKellyOrder:
    """Online topological order maintenance over integer nodes.

    Implements the Pearce–Kelly algorithm: a total order ``ord`` over the
    nodes is kept consistent with the edges.  Inserting an edge
    ``u -> v`` with ``ord[u] < ord[v]`` is free; otherwise only the
    *affected region* — the nodes between ``ord[v]`` and ``ord[u]`` that are
    forward-reachable from ``v`` or backward-reachable from ``u`` — is
    re-sorted.  When the insertion would create a cycle, the cycle is
    returned (as the node path ``v -> … -> u``; the closing edge is
    ``u -> v``) and the edge is *not* inserted, so the structure stays
    acyclic and checking can continue past the violation.

    Adjacency is kept in insertion-ordered dicts (values unused) rather than
    sets: traversal order is then a pure function of the edge-insertion
    sequence, which makes the structure — and the exact counterexample paths
    it reports — reproducible across :meth:`IncrementalChecker.checkpoint` /
    :meth:`IncrementalChecker.restore` round-trips.

    Example:
        >>> topo = PearceKellyOrder()
        >>> topo.add_edge(1, 2) is None and topo.add_edge(2, 3) is None
        True
        >>> topo.add_edge(3, 1)
        [1, 2, 3]
    """

    def __init__(self) -> None:
        self._ord: Dict[int, int] = {}
        self._succ: Dict[int, Dict[int, None]] = {}
        self._pred: Dict[int, Dict[int, None]] = {}
        self._counter = 0
        #: Nodes visited by affected-region reorderings (plain int — this is
        #: the hot path, so telemetry reads it lazily rather than per edge).
        self.reorder_visits = 0

    def __contains__(self, node: int) -> bool:
        return node in self._ord

    def __len__(self) -> int:
        return len(self._ord)

    def add_node(self, node: int) -> None:
        if node not in self._ord:
            self._ord[node] = self._counter
            self._counter += 1
            self._succ[node] = {}
            self._pred[node] = {}

    def order_of(self, node: int) -> int:
        """The node's current topological index (smaller sorts earlier)."""
        return self._ord[node]

    def has_edge(self, source: int, target: int) -> bool:
        return target in self._succ.get(source, ())

    def add_edge(self, source: int, target: int) -> Optional[List[int]]:
        """Insert ``source -> target``; return a cycle instead if one forms.

        Returns ``None`` on success.  On a would-be cycle, returns the node
        path from ``target`` to ``source`` (the cycle closes with the
        rejected ``source -> target`` edge) and leaves the order unchanged.
        """
        if source == target:
            self.add_node(source)
            return [source]
        self.add_node(source)
        self.add_node(target)
        if target in self._succ[source]:
            return None
        lower, upper = self._ord[target], self._ord[source]
        if upper < lower:
            self._succ[source][target] = None
            self._pred[target][source] = None
            return None

        # Forward pass: nodes reachable from ``target`` within the affected
        # index range.  Meeting ``source`` means the new edge closes a cycle.
        parent: Dict[int, Optional[int]] = {target: None}
        forward: List[int] = []
        stack = [target]
        while stack:
            node = stack.pop()
            forward.append(node)
            for nxt in self._succ[node]:
                if nxt == source:
                    path = [source]
                    current: Optional[int] = node
                    while current is not None:
                        path.append(current)
                        current = parent[current]
                    path.reverse()
                    return path
                if nxt not in parent and self._ord[nxt] < upper:
                    parent[nxt] = node
                    stack.append(nxt)

        # Backward pass: nodes that reach ``source`` within the range.
        backward_seen: Set[int] = {source}
        backward: List[int] = []
        stack = [source]
        while stack:
            node = stack.pop()
            backward.append(node)
            for prv in self._pred[node]:
                if prv not in backward_seen and self._ord[prv] > lower:
                    backward_seen.add(prv)
                    stack.append(prv)

        # Re-map the affected nodes onto their own (sorted) index pool with
        # the backward region ordered entirely before the forward region.
        self.reorder_visits += len(forward) + len(backward)
        backward.sort(key=self._ord.__getitem__)
        forward.sort(key=self._ord.__getitem__)
        pool = sorted(self._ord[node] for node in backward + forward)
        for node, index in zip(backward + forward, pool):
            self._ord[node] = index

        self._succ[source][target] = None
        self._pred[target][source] = None
        return None

    def remove_node(self, node: int) -> None:
        """Remove a node and its incident edges (used by window GC)."""
        if node not in self._ord:
            return
        for nxt in self._succ.pop(node):
            self._pred[nxt].pop(node, None)
        for prv in self._pred.pop(node):
            self._succ[prv].pop(node, None)
        del self._ord[node]


class _Slot:
    """Bookkeeping for one written version ``(key, value)``.

    Replaces the batch :class:`~repro.core.intcheck.WriteIndex` lookup plus
    the per-key edge grouping of BUILDDEPENDENCY: the WR/WW/RW edges incident
    to a version are exactly determined by who wrote it, who read it, and who
    overwrote it.
    """

    __slots__ = (
        "writer_id",
        "writer_status",
        "intermediate_id",
        "readers",
        "overwriters",
        "rmw_seen",
        "pending",
    )

    def __init__(self) -> None:
        self.writer_id: Optional[int] = None
        self.writer_status: Optional[TransactionStatus] = None
        self.intermediate_id: Optional[int] = None
        #: Committed readers with a WR edge from the writer.
        self.readers: List[int] = []
        #: Committed RMW readers with a WW edge from the writer.
        self.overwriters: List[int] = []
        #: ``(txn_id, value written)`` of every committed RMW reader,
        #: tracked independently of writer resolution for DIVERGENCE.
        self.rmw_seen: List[Tuple[int, Optional[int]]] = []
        #: ``(txn_id, writes_key)`` readers ingested before any writer.
        self.pending: List[Tuple[int, bool]] = []


#: Marker replacing a slot whose version aged out of the streaming window.
_SEALED = object()


def _encode_graph(graph: DependencyGraph) -> Dict[str, Any]:
    """JSON-encode a labeled graph (edges kept in insertion order)."""
    return {
        "nodes": sorted(graph.nodes),
        "edges": [
            [edge.source, edge.target, edge.edge_type.value, edge.key]
            for edge in graph.edges()
        ],
    }


def _decode_graph(state: Dict[str, Any]) -> DependencyGraph:
    graph = DependencyGraph(state["nodes"])
    # O(window) edges per restore: resolve enum members once, not per edge.
    edge_types = {member.value: member for member in EdgeType}
    for source, target, type_value, key in state["edges"]:
        graph.add_edge(source, target, edge_types[type_value], key)
    return graph


def _encode_slot(slot: object) -> Optional[Dict[str, Any]]:
    """JSON-encode one version slot; sealed markers become ``None``."""
    if slot is _SEALED:
        return None
    assert isinstance(slot, _Slot)
    return {
        "writer_id": slot.writer_id,
        "writer_status": (
            None
            if slot.writer_status is None
            else STATUS_CODES[slot.writer_status]
        ),
        "intermediate_id": slot.intermediate_id,
        "readers": list(slot.readers),
        "overwriters": list(slot.overwriters),
        "rmw_seen": [[tid, value] for tid, value in slot.rmw_seen],
        "pending": [[tid, bool(writes)] for tid, writes in slot.pending],
    }


def _decode_slot(state: Dict[str, Any]) -> _Slot:
    slot = _Slot()
    slot.writer_id = state["writer_id"]
    status = state["writer_status"]
    slot.writer_status = None if status is None else STATUS_FROM_CODE[status]
    slot.intermediate_id = state["intermediate_id"]
    slot.readers = list(state["readers"])
    slot.overwriters = list(state["overwriters"])
    slot.rmw_seen = [(tid, value) for tid, value in state["rmw_seen"]]
    slot.pending = [(tid, writes) for tid, writes in state["pending"]]
    return slot


class IncrementalChecker:
    """Online MTC verification: ingest transactions, keep a live verdict.

    The checker mirrors the batch pipeline — INT pre-pass, BUILDDEPENDENCY,
    acyclicity — but runs every stage per transaction:

    * intra-transactional INT anomalies are reported at ingest;
    * read provenance resolves against per-version slots (pending until the
      writer arrives, AbortedRead/IntermediateRead on resolution, ThinAirRead
      for reads that never resolve);
    * WR/WW/RW (and SO/RT) edges extend the dependency graph in place, and a
      :class:`PearceKellyOrder` re-establishes acyclicity online, reporting
      the counterexample cycle at the exact offending transaction;
    * for SI, the induced graph ``(SO ∪ WR ∪ WW) ; RW?`` is composed
      edge-by-edge and the DIVERGENCE pattern is matched per read.

    Example:
        >>> from repro import IsolationLevel, Transaction, read, write
        >>> from repro.core.incremental import IncrementalChecker
        >>> checker = IncrementalChecker(IsolationLevel.SERIALIZABILITY,
        ...                              initial_keys=["x"])
        >>> checker.ingest(Transaction(1, [read("x", 0), write("x", 1)]))
        []
        >>> bad = checker.ingest(Transaction(2, [read("x", 0), write("x", 2)],
        ...                                  session_id=1))
        >>> [v.kind.value for v in bad]
        ['LostUpdate']
        >>> checker.result().satisfied
        False

    Args:
        level: SERIALIZABILITY, SNAPSHOT_ISOLATION, or
            STRICT_SERIALIZABILITY (timestamps required for the latter).
        initial_keys: synthesise and ingest the initial transaction ``⊥T``
            over these keys (alternatively ingest one explicitly first).
        window: bounded-window mode — keep only the most recent ``window``
            transactions in the graph; see the module docstring for the
            staleness contract.
        strict_mt: raise :class:`~repro.core.checkers.MTHistoryError` at
            ingest when a transaction is not a mini-transaction or reuses a
            written value.
    """

    def __init__(
        self,
        level: IsolationLevel,
        *,
        initial_keys: Optional[Iterable[str]] = None,
        window: Optional[int] = None,
        strict_mt: bool = False,
    ) -> None:
        if level not in GRAPH_LEVELS:
            raise ValueError(
                f"incremental checking supports {', '.join(l.short_name for l in GRAPH_LEVELS)}; "
                f"got {level}"
            )
        if window is not None and window < 1:
            raise ValueError("window must be a positive transaction count")
        self.level = level
        self.window = window
        self.strict_mt = strict_mt

        #: The dependency graph, extended in place (inspectable at any time).
        self.graph = DependencyGraph()
        self._induced: Optional[DependencyGraph] = (
            DependencyGraph() if level is IsolationLevel.SNAPSHOT_ISOLATION else None
        )
        self._topo = PearceKellyOrder()
        self._slots: Dict[Tuple[str, Optional[int]], object] = {}
        self._last_in_session: Dict[int, int] = {}
        self._has_initial = False
        self._violations: List[Violation] = []
        self._num_committed = 0
        self._elapsed = 0.0

        # SI induced-graph composition state.  ``_base_preds`` values are
        # insertion-ordered dicts (values unused) for the same
        # checkpoint-reproducibility reason as :class:`PearceKellyOrder`.
        self._base_preds: Dict[int, Dict[int, None]] = defaultdict(dict)
        self._rw_succ: Dict[int, List[Tuple[int, Optional[str]]]] = defaultdict(list)

        # SSER online interval-order reduction state.
        self._by_finish: List[Tuple[float, float, int]] = []  # (finish, start, id)
        self._prefix_max_start: List[float] = []
        self._by_start: List[Tuple[float, float, int]] = []  # (start, finish, id)
        self._suffix_min_finish: List[float] = []

        # Bounded-window GC state.  ``_overwrote`` maps a transaction to the
        # version slots it read-modified: those slots must be sealed no later
        # than the transaction's own eviction, because every new reader of
        # such a slot would add an RW in-edge to the (collected) overwriter.
        # Evicted nodes are recognised by their absence from the topology
        # (every edge endpoint was ingested at some point), so no per-node
        # tombstone set is needed.  Sealed-version markers are kept in a FIFO
        # capped at ``max(4 * window, 1024)`` entries so window mode is truly
        # bounded-memory; a read of a version whose marker has expired
        # reports ThinAirRead instead of incrementing ``stale_reads``.
        self._arrivals: Deque[int] = deque()
        self._overwrote: Dict[int, List[Tuple[str, Optional[int]]]] = {}
        self._sealed_fifo: Deque[Tuple[str, Optional[int]]] = deque()
        self._sealed_cap = max(4 * window, 1024) if window is not None else 0
        #: Reads that targeted a version already sealed by the window —
        #: nonzero means the stream violated the window's staleness bound.
        self.stale_reads = 0
        #: Transactions garbage-collected so far.
        self.evicted_count = 0

        if initial_keys is not None:
            self.ingest(make_initial_transaction(initial_keys))

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, txn: Transaction) -> List[Violation]:
        """Ingest one transaction; return the violations it triggered.

        Committed transactions extend the graph; aborted (and
        unknown-outcome) transactions only register their writes so later
        readers of their values can be flagged.  The returned list is empty
        while the stream remains valid — ThinAirRead is the one anomaly that
        can only be confirmed at :meth:`result` time, since the writer might
        still be in flight.
        """
        started = time.perf_counter()
        before = len(self._violations)
        if txn.is_initial:
            self._ingest_initial(txn)
        else:
            if self.strict_mt:
                self._strict_check(txn)
            if txn.committed:
                self._num_committed += 1
                self._add_node(txn.txn_id)
                self._violations.extend(transaction_int_violations(txn))
                self._session_edge(txn.session_id, txn.txn_id)
            self._register_writes(txn)
            if txn.committed:
                self._resolve_reads(txn)
                if (
                    self.level is IsolationLevel.STRICT_SERIALIZABILITY
                    and txn.start_ts is not None
                    and txn.finish_ts is not None
                ):
                    self._real_time_edges(txn.txn_id, txn.start_ts, txn.finish_ts)
                if self.window is not None:
                    self._arrivals.append(txn.txn_id)
                    while len(self._arrivals) > self.window:
                        self._evict(self._arrivals.popleft())
        self._elapsed += time.perf_counter() - started
        return self._violations[before:]

    def ingest_round(self, txns: Iterable[Transaction]) -> List[Violation]:
        """Ingest a batch of transactions; return all violations triggered."""
        out: List[Violation] = []
        for txn in txns:
            out.extend(self.ingest(txn))
        return out

    def ingest_segment(
        self,
        segment: "ColumnarHistory",
        *,
        on_row_violations: Optional[
            Callable[[int, List[Violation]], object]
        ] = None,
    ) -> List[Violation]:
        """Bulk-ingest one columnar segment epoch; return its violations.

        ``on_row_violations(row, violations)`` is invoked after any segment
        row whose ingestion triggered violations — the hook the CLI uses to
        tag stream output with the offending transaction, without giving up
        the bulk column scan.

        The columnar counterpart of :meth:`ingest_round`: edge derivation
        (write registration, read resolution, SO/RT stitching) runs straight
        off the segment's flat columns, and only the resulting dependency
        *deltas* are handed to the Pearce–Kelly structure — per transaction,
        in the segment's arrival order, so violations surface at the exact
        offending transaction exactly as with one-at-a-time :meth:`ingest`.
        ``Transaction`` objects are materialised only for rows that actually
        contain an intra-transactional INT candidate (or under
        ``strict_mt``), keeping the accept path allocation-free.

        The batch-equivalence invariant extends to segments: ingesting a
        history via any split into segments yields the same verdict as the
        batch checker (enforced by ``tests/test_columnar.py``).
        """
        started = time.perf_counter()
        before = len(self._violations)
        for row in range(segment.num_transactions):
            row_before = len(self._violations)
            self._ingest_row(segment, row)
            if on_row_violations is not None and len(self._violations) > row_before:
                on_row_violations(row, self._violations[row_before:])
        self._elapsed += time.perf_counter() - started
        self.publish_metrics()
        return self._violations[before:]

    def _ingest_row(self, segment: "ColumnarHistory", row: int) -> None:
        """Column-native mirror of :meth:`ingest` for one segment row."""
        txn_id = segment.txn_ids[row]
        status = STATUS_FROM_CODE[segment.statuses[row]]
        committed = status is TransactionStatus.COMMITTED
        key_names = segment.key_names
        ops = list(segment.row_ops(row))

        if txn_id == INITIAL_TXN_ID:
            self._has_initial = True
            self._add_node(txn_id)
            self._register_ops_writes(ops, key_names, txn_id, status)
            return
        if self.strict_mt:
            self._strict_check(segment.transaction_at(row))
        if committed:
            self._num_committed += 1
            self._add_node(txn_id)
            if ops_int_candidate(ops):
                # Rare path: the row provably contains an intra-transactional
                # anomaly candidate; materialise it once for the identical
                # object-level classification.
                self._violations.extend(
                    transaction_int_violations(segment.transaction_at(row))
                )
            self._session_edge(segment.session_ids[row], txn_id)
        self._register_ops_writes(ops, key_names, txn_id, status)
        if committed:
            self._resolve_ops_reads(ops, key_names, txn_id)
            if self.level is IsolationLevel.STRICT_SERIALIZABILITY:
                start, finish = segment.timestamps_at(row)
                if start is not None and finish is not None:
                    self._real_time_edges(txn_id, start, finish)
            if self.window is not None:
                self._arrivals.append(txn_id)
                while len(self._arrivals) > self.window:
                    self._evict(self._arrivals.popleft())

    def _register_ops_writes(
        self,
        ops: List[Tuple[int, int, Optional[int]]],
        key_names: List[str],
        txn_id: int,
        status: TransactionStatus,
    ) -> None:
        """Mirror :meth:`_register_writes` over ``(kind, key_id, value)`` rows."""
        finals: Dict[int, Optional[int]] = {}
        for kind, kid, value in ops:
            if not kind:
                continue
            if kid in finals:
                self._register_intermediate(key_names[kid], finals[kid], txn_id)
            finals[kid] = value
        for kid, value in finals.items():
            self._register_final(key_names[kid], value, txn_id, status)

    def _resolve_ops_reads(
        self,
        ops: List[Tuple[int, int, Optional[int]]],
        key_names: List[str],
        txn_id: int,
    ) -> None:
        """Mirror :meth:`_resolve_reads` over ``(kind, key_id, value)`` rows."""
        own_writes: Set[Tuple[int, Optional[int]]] = set()
        written: Set[int] = set()
        last_write: Dict[int, Optional[int]] = {}
        external: Dict[int, Optional[int]] = {}
        for kind, kid, value in ops:
            if kind:
                own_writes.add((kid, value))
                written.add(kid)
                last_write[kid] = value
            elif kid not in written and kid not in external and value is not None:
                external[kid] = value
        for kid, value in external.items():
            if (kid, value) in own_writes:
                # FutureRead: already reported by the intra-transactional INT
                # pass (see _resolve_reads).
                continue
            writes_key = kid in written
            self._resolve_one_read(
                txn_id,
                key_names[kid],
                value,
                writes_key,
                last_write.get(kid) if writes_key else None,
            )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def violations(self) -> List[Violation]:
        """Violations confirmed so far (excluding pending thin-air reads)."""
        return list(self._violations)

    @property
    def satisfied(self) -> bool:
        """Whether no violation has been confirmed so far."""
        return not self._violations

    @property
    def num_ingested(self) -> int:
        """Committed transactions ingested (excluding ``⊥T``)."""
        return self._num_committed

    def publish_metrics(self) -> None:
        """Publish the checker's running counters as telemetry gauges.

        Called at coarse cadence (segment boundaries, ``result()``,
        checkpoints) rather than per transaction, so the streaming hot path
        carries no telemetry cost; a no-op while telemetry is disabled.
        """
        if not obs.enabled():
            return
        obs.set_gauge("repro_checker_txns_ingested", self._num_committed)
        obs.set_gauge("repro_checker_violations", len(self._violations))
        obs.set_gauge("repro_checker_window_evictions", self.evicted_count)
        obs.set_gauge("repro_checker_stale_reads", self.stale_reads)
        obs.set_gauge(
            "repro_checker_pk_reorder_visits", self._topo.reorder_visits
        )
        obs.set_gauge("repro_checker_graph_nodes", len(self._topo))

    def result(self) -> CheckResult:
        """The verdict over everything ingested so far.

        Unresolved pending reads are reported as ThinAirRead here — a
        complete history has none, making the verdict equal to the batch
        checker's.  Calling ``result`` does not end the stream; ingestion
        can continue afterwards.
        """
        self.publish_metrics()
        violations = list(self._violations)
        violations.extend(self._pending_violations())
        if violations:
            result = CheckResult.violated(
                self.level, violations, num_transactions=self._num_committed
            )
        else:
            result = CheckResult.ok(self.level, self._num_committed)
        result.elapsed_seconds = self._elapsed
        return result

    def _pending_violations(self) -> List[Violation]:
        out: List[Violation] = []
        for (key, value), slot in self._slots.items():
            if slot is _SEALED or not slot.pending:  # type: ignore[union-attr]
                continue
            assert isinstance(slot, _Slot)
            if slot.writer_id is not None:
                continue  # resolved after the reader went pending
            for reader_id, _ in slot.pending:
                if (
                    slot.intermediate_id is not None
                    and slot.intermediate_id != reader_id
                ):
                    out.append(self._intermediate_violation(reader_id, slot, key))
                else:
                    out.append(
                        Violation(
                            kind=AnomalyKind.THIN_AIR_READ,
                            description=(
                                f"read R({key},{value}) observes value {value}, "
                                f"which no transaction wrote"
                            ),
                            txn_ids=[reader_id],
                            key=key,
                        )
                    )
        return out

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[str, Any]:
        """Serialise the complete checker state as a JSON-safe dictionary.

        The snapshot captures everything the online algorithms carry: the
        labeled dependency graph (and, for SI, the induced graph), the
        Pearce–Kelly order with its exact node indices and adjacency
        insertion order, the per-version slot table (pending reads, RMW
        tracking, sealed markers), session tails, the SI composition state,
        the SSER interval-reduction lists, the bounded-window arrival queue
        and seal FIFO, and every violation found so far.

        :meth:`restore` rebuilds a checker that is *behaviourally
        indistinguishable* from this one: ingesting any suffix of
        transactions into the restored checker yields byte-identical
        verdicts — same anomaly kinds, same labeled counterexample cycles —
        as ingesting it into the original (enforced by
        ``tests/test_incremental.py`` at every boundary of randomized
        streams).  The dictionary round-trips through ``json`` verbatim.
        """
        started = time.perf_counter()
        self.publish_metrics()
        topo = self._topo
        state = {
            "format": CHECKPOINT_STATE_FORMAT,
            "level": self.level.value,
            "window": self.window,
            "strict_mt": self.strict_mt,
            "has_initial": self._has_initial,
            "num_committed": self._num_committed,
            "elapsed": self._elapsed,
            "stale_reads": self.stale_reads,
            "evicted_count": self.evicted_count,
            "violations": [v.to_dict() for v in self._violations],
            "graph": _encode_graph(self.graph),
            "induced": (
                _encode_graph(self._induced) if self._induced is not None else None
            ),
            "topo": {
                "counter": topo._counter,
                "ord": [[node, index] for node, index in topo._ord.items()],
                "succ": [
                    [node, list(targets)]
                    for node, targets in topo._succ.items()
                    if targets
                ],
            },
            "slots": [
                [key, value, _encode_slot(slot)]
                for (key, value), slot in self._slots.items()
            ],
            "last_in_session": [
                [sid, tid] for sid, tid in self._last_in_session.items()
            ],
            "base_preds": [
                [target, list(preds)]
                for target, preds in self._base_preds.items()
                if preds
            ],
            "rw_succ": [
                [source, [[t, k] for t, k in pairs]]
                for source, pairs in self._rw_succ.items()
                if pairs
            ],
            "rt_by_finish": [list(entry) for entry in self._by_finish],
            "rt_by_start": [list(entry) for entry in self._by_start],
            "arrivals": list(self._arrivals),
            "overwrote": [
                [tid, [[k, v] for k, v in pairs]]
                for tid, pairs in self._overwrote.items()
            ],
            "sealed_fifo": [[k, v] for k, v in self._sealed_fifo],
        }
        obs.observe(
            "repro_checker_checkpoint_seconds",
            time.perf_counter() - started,
            op="save",
        )
        return state

    @classmethod
    def restore(cls, state: Dict[str, Any]) -> "IncrementalChecker":
        """Rebuild a checker from a :meth:`checkpoint` snapshot.

        The restored checker continues the stream exactly where the
        snapshot left off; see :meth:`checkpoint` for the equivalence
        guarantee.  Raises ``ValueError`` on a snapshot whose format tag is
        missing or unknown.
        """
        if not isinstance(state, dict) or state.get("format") != CHECKPOINT_STATE_FORMAT:
            raise ValueError(
                f"not a {CHECKPOINT_STATE_FORMAT} checkpoint snapshot"
            )
        restore_started = time.perf_counter()
        checker = cls(
            IsolationLevel(state["level"]),
            window=state["window"],
            strict_mt=bool(state["strict_mt"]),
        )
        checker._has_initial = bool(state["has_initial"])
        checker._num_committed = int(state["num_committed"])
        checker._elapsed = float(state["elapsed"])
        checker.stale_reads = int(state["stale_reads"])
        checker.evicted_count = int(state["evicted_count"])
        checker._violations = [Violation.from_dict(v) for v in state["violations"]]
        checker.graph = _decode_graph(state["graph"])
        if state["induced"] is not None:
            checker._induced = _decode_graph(state["induced"])
        topo = PearceKellyOrder()
        topo._counter = int(state["topo"]["counter"])
        for node, index in state["topo"]["ord"]:
            topo._ord[node] = index
            topo._succ[node] = {}
            topo._pred[node] = {}
        for node, targets in state["topo"]["succ"]:
            for target in targets:
                topo._succ[node][target] = None
                topo._pred[target][node] = None
        checker._topo = topo
        checker._slots = {
            (key, value): (_SEALED if encoded is None else _decode_slot(encoded))
            for key, value, encoded in state["slots"]
        }
        checker._last_in_session = {
            sid: tid for sid, tid in state["last_in_session"]
        }
        for target, preds in state["base_preds"]:
            checker._base_preds[target] = {source: None for source in preds}
        for source, pairs in state["rw_succ"]:
            checker._rw_succ[source] = [(t, k) for t, k in pairs]
        checker._by_finish = [tuple(entry) for entry in state["rt_by_finish"]]
        checker._by_start = [tuple(entry) for entry in state["rt_by_start"]]
        checker._rebuild_rt_aggregates()
        checker._arrivals = deque(state["arrivals"])
        checker._overwrote = {
            tid: [(k, v) for k, v in pairs] for tid, pairs in state["overwrote"]
        }
        checker._sealed_fifo = deque((k, v) for k, v in state["sealed_fifo"])
        obs.observe(
            "repro_checker_checkpoint_seconds",
            time.perf_counter() - restore_started,
            op="restore",
        )
        return checker

    # ------------------------------------------------------------------
    # Per-transaction machinery
    # ------------------------------------------------------------------
    def _ingest_initial(self, txn: Transaction) -> None:
        self._has_initial = True
        self._add_node(txn.txn_id)
        self._register_writes(txn)

    def _add_node(self, txn_id: int) -> None:
        self.graph.add_node(txn_id)
        if self._induced is not None:
            self._induced.add_node(txn_id)
        self._topo.add_node(txn_id)

    def _strict_check(self, txn: Transaction) -> None:
        problems = mt_violations(txn)
        for op in txn.operations:
            if not op.is_write or op.value is None:
                continue
            slot = self._slots.get((op.key, op.value))
            if isinstance(slot, _Slot):
                owner = (
                    slot.writer_id
                    if slot.writer_id is not None
                    else slot.intermediate_id
                )
                if owner is not None and owner != txn.txn_id:
                    raise MTHistoryError(
                        f"not a valid mini-transaction history: T{txn.txn_id} "
                        f"re-writes value {op.value} on object {op.key} "
                        f"(also written by T{owner})"
                    )
        if problems:
            raise MTHistoryError(
                "not a valid mini-transaction history: "
                + "; ".join(str(p) for p in problems[:5])
            )

    def _slot(self, key: str, value: Optional[int]) -> Optional[_Slot]:
        """The slot for ``(key, value)``; ``None`` if sealed by the window."""
        slot = self._slots.get((key, value))
        if slot is _SEALED:
            return None
        if slot is None:
            slot = _Slot()
            self._slots[(key, value)] = slot
        assert isinstance(slot, _Slot)
        return slot

    def _register_writes(self, txn: Transaction) -> None:
        """Mirror ``WriteIndex.add_transaction`` onto the slot table."""
        finals: Dict[str, Optional[int]] = {}
        for op in txn.operations:
            if not op.is_write:
                continue
            if op.key in finals:
                self._register_intermediate(op.key, finals[op.key], txn.txn_id)
            finals[op.key] = op.value
        for key, value in finals.items():
            self._register_final(key, value, txn.txn_id, txn.status)

    def _register_final(
        self, key: str, value: Optional[int], txn_id: int, status: TransactionStatus
    ) -> None:
        slot = self._slot(key, value)
        if slot is None:
            return
        slot.writer_id = txn_id
        slot.writer_status = status
        if slot.pending:
            pending, slot.pending = slot.pending, []
            for reader_id, writes_key in pending:
                self._attach_read(key, value, slot, reader_id, writes_key)

    def _register_intermediate(
        self, key: str, value: Optional[int], txn_id: int
    ) -> None:
        slot = self._slot(key, value)
        if slot is None:
            return
        slot.intermediate_id = txn_id
        if slot.pending and slot.writer_id is None:
            pending, slot.pending = slot.pending, []
            for reader_id, _ in pending:
                if reader_id != txn_id:
                    self._violations.append(
                        self._intermediate_violation(reader_id, slot, key)
                    )

    @staticmethod
    def _intermediate_violation(reader_id: int, slot: _Slot, key: str) -> Violation:
        return Violation(
            kind=AnomalyKind.INTERMEDIATE_READ,
            description=(
                f"read of object {key} observes an intermediate value of "
                f"T{slot.intermediate_id}, which later overwrote it"
            ),
            txn_ids=[reader_id, slot.intermediate_id or -2],
            key=key,
        )

    def _resolve_reads(self, txn: Transaction) -> None:
        own_writes = {
            (op.key, op.value) for op in txn.operations if op.is_write
        }
        for key, value in txn.external_reads().items():
            if (key, value) in own_writes:
                # FutureRead: already reported by the intra-transactional INT
                # pass; attributing provenance to the reader itself (or
                # leaving it pending) would fabricate a second anomaly.
                continue
            writes_key = txn.writes_to(key)
            self._resolve_one_read(
                txn.txn_id,
                key,
                value,
                writes_key,
                txn.final_write(key) if writes_key else None,
            )

    def _resolve_one_read(
        self,
        txn_id: int,
        key: str,
        value: Optional[int],
        writes_key: bool,
        written_value: Optional[int],
    ) -> None:
        """Resolve one external read against the slot table (shared core)."""
        slot = self._slot(key, value)
        if slot is None:
            self.stale_reads += 1
            return

        # DIVERGENCE (SI only): two RMW readers of the same version that
        # wrote different values — flagged before writer resolution, as
        # in the batch early-exit (Lemma 1).
        if writes_key and self.level is IsolationLevel.SNAPSHOT_ISOLATION:
            for other_id, other_written in slot.rmw_seen:
                if other_id != txn_id and other_written != written_value:
                    self._violations.append(
                        self._divergence_violation(
                            key, value, slot, other_id, txn_id
                        )
                    )
                    break
            slot.rmw_seen.append((txn_id, written_value))

        if slot.writer_id is not None:
            self._attach_read(key, value, slot, txn_id, writes_key)
        elif (
            slot.intermediate_id is not None
            and slot.intermediate_id != txn_id
        ):
            self._violations.append(
                self._intermediate_violation(txn_id, slot, key)
            )
        else:
            slot.pending.append((txn_id, writes_key))

    def _divergence_violation(
        self, key: str, value: Optional[int], slot: _Slot, a: int, b: int
    ) -> Violation:
        writer = slot.writer_id if slot.writer_id is not None else -2
        return Violation(
            kind=AnomalyKind.LOST_UPDATE,
            description=(
                f"DIVERGENCE pattern on object {key}: T{a} and T{b} both read "
                f"value {value} written by T{writer} and then wrote different "
                f"values"
            ),
            txn_ids=[writer, a, b],
            key=key,
        )

    def _attach_read(
        self,
        key: str,
        value: Optional[int],
        slot: _Slot,
        reader_id: int,
        writes_key: bool,
    ) -> None:
        """Materialise the WR (and WW/RW) edges of one resolved read."""
        writer_id = slot.writer_id
        assert writer_id is not None
        if writer_id == reader_id:
            return
        if slot.writer_status is TransactionStatus.ABORTED:
            self._violations.append(
                Violation(
                    kind=AnomalyKind.ABORTED_READ,
                    description=(
                        f"read of object {key} observes a value written by "
                        f"aborted transaction T{writer_id}"
                    ),
                    txn_ids=[reader_id, writer_id],
                    key=key,
                )
            )
            return
        if slot.writer_status is not TransactionStatus.COMMITTED:
            return  # unknown outcome: no edge, no verdict (batch parity)
        if self.window is not None and reader_id not in self._topo:
            # A pending reader aged out before its writer arrived: the stream
            # broke the writer-before-reader contract of the window.
            self.stale_reads += 1
            return

        # An evicted writer is harmless here: edges *out of* a collected node
        # cannot close a cycle, and ``_dep_edge`` drops them; the RW edges
        # between the (live) readers and overwriters still matter.
        self._dep_edge(writer_id, reader_id, EdgeType.WR, key)
        for overwriter in slot.overwriters:
            if overwriter != reader_id:
                self._dep_edge(reader_id, overwriter, EdgeType.RW, key)
        slot.readers.append(reader_id)
        if writes_key:
            self._dep_edge(writer_id, reader_id, EdgeType.WW, key)
            for other_reader in slot.readers:
                if other_reader != reader_id:
                    self._dep_edge(other_reader, reader_id, EdgeType.RW, key)
            slot.overwriters.append(reader_id)
            if self.window is not None:
                self._overwrote.setdefault(reader_id, []).append((key, value))

    def _session_edge(self, session_id: int, txn_id: int) -> None:
        prev = self._last_in_session.get(session_id)
        if prev is None:
            if self._has_initial:
                self._dep_edge(INITIAL_TXN_ID, txn_id, EdgeType.SO, None)
        else:
            self._dep_edge(prev, txn_id, EdgeType.SO, None)
        self._last_in_session[session_id] = txn_id

    # ------------------------------------------------------------------
    # Real-time order (SSER): online interval-order reduction
    # ------------------------------------------------------------------
    def _real_time_edges(self, txn_id: int, start_ts: float, finish_ts: float) -> None:
        """Add the transitively-reduced RT edges incident to one transaction.

        Among the existing predecessors (``finish < start_ts``), only those
        finishing after every predecessor's start are immediate — the same
        pruning as :func:`repro.core.model.interval_order_reduction`, applied
        per arrival; symmetrically for successors.  The two prunings together
        keep the reduction reachability-complete under any arrival order.
        """
        start, finish = float(start_ts), float(finish_ts)

        idx = bisect_left(self._by_finish, (start,))
        if idx:
            max_start = self._prefix_max_start[idx - 1]
            t = idx - 1
            while t >= 0 and self._by_finish[t][0] >= max_start:
                self._dep_edge(self._by_finish[t][2], txn_id, EdgeType.RT, None)
                t -= 1

        jdx = bisect_right(self._by_start, (finish, float("inf"), float("inf")))
        if jdx < len(self._by_start):
            min_finish = self._suffix_min_finish[jdx]
            t = jdx
            while t < len(self._by_start) and self._by_start[t][0] <= min_finish:
                self._dep_edge(txn_id, self._by_start[t][2], EdgeType.RT, None)
                t += 1

        self._insert_rt_entry(start, finish, txn_id)

    def _insert_rt_entry(self, start: float, finish: float, txn_id: int) -> None:
        """Insert into both sorted lists and patch the helper aggregates.

        The prefix-max-start array is non-decreasing and the suffix-min-finish
        array non-increasing (leftwards), so after a positional insert only
        the run of entries the new value actually dominates needs rewriting —
        O(1) amortised for in-order streams, where insertions land at the end.
        """
        prefix = self._prefix_max_start
        pos = bisect_left(self._by_finish, (finish, start, txn_id))
        self._by_finish.insert(pos, (finish, start, txn_id))
        prefix.insert(pos, start if pos == 0 else max(prefix[pos - 1], start))
        for i in range(pos + 1, len(prefix)):
            if prefix[i] >= start:
                break
            prefix[i] = start

        suffix = self._suffix_min_finish
        pos = bisect_left(self._by_start, (start, finish, txn_id))
        self._by_start.insert(pos, (start, finish, txn_id))
        tail = suffix[pos] if pos < len(suffix) else float("inf")
        suffix.insert(pos, min(finish, tail))
        for i in range(pos - 1, -1, -1):
            if suffix[i] <= finish:
                break
            suffix[i] = finish

    def _rebuild_rt_aggregates(self) -> None:
        """Recompute both helper arrays from scratch (used after removals)."""
        prefix = self._prefix_max_start
        del prefix[:]
        running = float("-inf")
        for _, entry_start, _ in self._by_finish:
            running = max(running, entry_start)
            prefix.append(running)
        suffix = self._suffix_min_finish
        del suffix[:]
        running = float("inf")
        for _, entry_finish, _ in reversed(self._by_start):
            running = min(running, entry_finish)
            suffix.append(running)
        suffix.reverse()

    # ------------------------------------------------------------------
    # Edge routing: dependency graph + check structure
    # ------------------------------------------------------------------
    def _dep_edge(
        self, source: int, target: int, edge_type: EdgeType, key: Optional[str]
    ) -> None:
        if self.window is not None and (
            source not in self._topo or target not in self._topo
        ):
            return  # an endpoint was garbage-collected: the edge cannot matter
        if not self.graph.add_edge(source, target, edge_type, key):
            return  # exact duplicate

        if self._induced is None:
            # SER / SSER: every dependency edge participates in the order.
            self._check_edge(source, target, self.graph)
            return

        # SI: maintain the induced graph (SO ∪ WR ∪ WW) ; RW? edge-by-edge.
        if edge_type in _BASE_TYPES:
            self._induced.add_edge(source, target, edge_type, key)
            if source not in self._base_preds[target]:
                self._base_preds[target][source] = None
                self._check_edge(source, target, self._induced)
                for rw_target, rw_key in self._rw_succ.get(target, ()):
                    self._composed_edge(source, rw_target, rw_key)
        elif edge_type is EdgeType.RW:
            self._rw_succ[source].append((target, key))
            for base_pred in self._base_preds.get(source, ()):
                self._composed_edge(base_pred, target, key)

    def _composed_edge(self, source: int, target: int, key: Optional[str]) -> None:
        if self.window is not None and (
            source not in self._topo or target not in self._topo
        ):
            return
        assert self._induced is not None
        self._induced.add_edge(source, target, EdgeType.COMPOSED, key)
        self._check_edge(source, target, self._induced)

    def _check_edge(
        self, source: int, target: int, labeled_graph: DependencyGraph
    ) -> None:
        cycle_nodes = self._topo.add_edge(source, target)
        if cycle_nodes is not None:
            edges = labeled_graph.label_cycle(cycle_nodes)
            self._violations.append(
                classify_cycle(edges, labeled_graph, level=self.level)
            )

    # ------------------------------------------------------------------
    # Bounded-window garbage collection
    # ------------------------------------------------------------------
    def _evict(self, txn_id: int) -> None:
        """Retire a transaction that can no longer participate in a cycle.

        Costs O(degree) of the evicted node: both the topology and the
        labeled graph index reverse adjacency, so collecting one
        transaction never scans the rest of the window.

        Safe because, once the window has passed, no new *incoming* edge can
        reach the node on a W-bounded stream: its reads resolved long ago
        (WR/WW in-edges), every version it overwrote is sealed here and now
        (RW in-edges come from new readers of those versions), its session
        successor already arrived (SO), and no transaction finishing before
        its start is still in flight (RT).  A node that cannot gain in-edges
        cannot close a cycle, so dropping it — and skipping any later edge
        that touches it — preserves the verdict.
        """
        self.evicted_count += 1
        self._topo.remove_node(txn_id)
        self.graph.remove_node(txn_id)
        if self._induced is not None:
            self._induced.remove_node(txn_id)
        self._base_preds.pop(txn_id, None)
        self._rw_succ.pop(txn_id, None)
        for key, value in self._overwrote.pop(txn_id, ()):
            slot = self._slots.get((key, value))
            if isinstance(slot, _Slot):
                self._slots[(key, value)] = _SEALED
                self._sealed_fifo.append((key, value))
        while len(self._sealed_fifo) > self._sealed_cap:
            expired = self._sealed_fifo.popleft()
            if self._slots.get(expired) is _SEALED:
                del self._slots[expired]
        if self.level is IsolationLevel.STRICT_SERIALIZABILITY:
            self._drop_rt_entries(txn_id)

    def _drop_rt_entries(self, txn_id: int) -> None:
        before = len(self._by_finish)
        self._by_finish = [e for e in self._by_finish if e[2] != txn_id]
        self._by_start = [e for e in self._by_start if e[2] != txn_id]
        if len(self._by_finish) != before:
            self._rebuild_rt_aggregates()


class CheckerSession:
    """Streaming verification session: the facade over the incremental core.

    Obtained from :meth:`repro.core.checker.MTChecker.session`.  The session
    is a context manager, and calling it is the same as :meth:`ingest`, so it
    plugs directly into the workload runner's live-checking hook:

        >>> from repro import Database, MTChecker, MTWorkloadGenerator
        >>> from repro import IsolationLevel, run_workload
        >>> workload = MTWorkloadGenerator(num_sessions=2, txns_per_session=5,
        ...                                num_objects=4, seed=1).generate()
        >>> with MTChecker().session(IsolationLevel.SERIALIZABILITY,
        ...                          initial_keys=workload.keys) as session:
        ...     _ = run_workload(Database("serializable", keys=workload.keys),
        ...                      workload, on_transaction=session)
        ...     verdict = session.result()
        >>> verdict.satisfied
        True
    """

    def __init__(
        self,
        level: IsolationLevel,
        *,
        initial_keys: Optional[Iterable[str]] = None,
        window: Optional[int] = None,
        strict_mt: bool = False,
    ) -> None:
        self._checker = IncrementalChecker(
            level,
            initial_keys=initial_keys,
            window=window,
            strict_mt=strict_mt,
        )

    # Delegation -------------------------------------------------------
    @property
    def level(self) -> IsolationLevel:
        return self._checker.level

    @property
    def checker(self) -> IncrementalChecker:
        """The underlying :class:`IncrementalChecker` (graph, counters)."""
        return self._checker

    @property
    def satisfied(self) -> bool:
        return self._checker.satisfied

    @property
    def violations(self) -> List[Violation]:
        return self._checker.violations

    @property
    def num_ingested(self) -> int:
        return self._checker.num_ingested

    def ingest(self, txn: Transaction) -> List[Violation]:
        """Feed one transaction; return the violations it triggered."""
        return self._checker.ingest(txn)

    def ingest_round(self, txns: Iterable[Transaction]) -> List[Violation]:
        """Feed a round of transactions (Cobra-style round-based checking)."""
        return self._checker.ingest_round(txns)

    def ingest_segment(
        self,
        segment: "ColumnarHistory",
        *,
        on_row_violations: Optional[
            Callable[[int, List[Violation]], object]
        ] = None,
    ) -> List[Violation]:
        """Feed one columnar segment epoch (bulk, object-free ingestion)."""
        return self._checker.ingest_segment(
            segment, on_row_violations=on_row_violations
        )

    def ingest_history(self, history: History, *, index=None) -> CheckResult:
        """Stream a complete history in canonical order; return the verdict.

        When the caller already built a
        :class:`~repro.core.index.HistoryIndex` for the history (e.g. after
        a batch check), pass it as ``index`` — its cached arrival order is
        replayed instead of re-scanning the raw sessions.
        """
        for txn in stream_order(history, index=index):
            self._checker.ingest(txn)
        return self.result()

    def result(self) -> CheckResult:
        """Current verdict; the stream may continue afterwards."""
        return self._checker.result()

    def checkpoint(self) -> Dict[str, Any]:
        """Serialise the session state (see :meth:`IncrementalChecker.checkpoint`)."""
        return self._checker.checkpoint()

    @classmethod
    def restore(cls, state: Dict[str, Any]) -> "CheckerSession":
        """Resume a session from a :meth:`checkpoint` snapshot."""
        session = cls.__new__(cls)
        session._checker = IncrementalChecker.restore(state)
        return session

    # Hook / context-manager sugar ------------------------------------
    def __call__(self, txn: Transaction) -> List[Violation]:
        return self.ingest(txn)

    def __enter__(self) -> "CheckerSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


def stream_order(history: History, *, index=None) -> Iterator[Transaction]:
    """Yield a history's transactions in a canonical streaming order.

    The initial transaction (when present) comes first; sessions are then
    merged by finish timestamp when every transaction carries one (the order
    a commit-log tail would deliver), falling back to round-robin
    interleaving.  Per-session order is always preserved, which is the one
    ordering requirement of :class:`IncrementalChecker`.

    A pre-built :class:`~repro.core.index.HistoryIndex` for the same history
    short-circuits the merge with its cached order.
    """
    if index is not None:
        if index.history is not history:
            raise ValueError("index was built for a different history")
        yield from index.stream_order()
        return
    if history.initial_transaction is not None:
        yield history.initial_transaction
    queues = [list(session.transactions) for session in history.sessions]
    timestamped = all(
        txn.finish_ts is not None for queue in queues for txn in queue
    )
    if timestamped:
        heap = [
            (queue[0].finish_ts, sid, 0)
            for sid, queue in enumerate(queues)
            if queue
        ]
        heapq.heapify(heap)
        while heap:
            _, sid, idx = heapq.heappop(heap)
            yield queues[sid][idx]
            if idx + 1 < len(queues[sid]):
                heapq.heappush(heap, (queues[sid][idx + 1].finish_ts, sid, idx + 1))
    else:
        pending = [(queue, 0) for queue in queues if queue]
        while pending:
            next_round = []
            for queue, idx in pending:
                yield queue[idx]
                if idx + 1 < len(queue):
                    next_round.append((queue, idx + 1))
            pending = next_round
