"""Check results, violations, and counterexample formatting.

All verification entry points (:mod:`repro.core.checkers`,
:mod:`repro.core.lwt`, the baseline checkers in :mod:`repro.baselines`)
return a :class:`CheckResult`.  When a violation is found the result carries
a :class:`Violation` describing the anomaly class (when it can be classified)
and, for cycle-based violations, the offending cycle of dependency edges —
the counterexample the paper's MTC tool reports (Figures 12 and 18).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["IsolationLevel", "AnomalyKind", "Violation", "CheckResult"]


class IsolationLevel(enum.Enum):
    """Isolation levels supported by the checkers and the database simulator."""

    READ_COMMITTED = "read committed"
    SNAPSHOT_ISOLATION = "snapshot isolation"
    SERIALIZABILITY = "serializability"
    STRICT_SERIALIZABILITY = "strict serializability"
    LINEARIZABILITY = "linearizability"

    @property
    def short_name(self) -> str:
        return {
            IsolationLevel.READ_COMMITTED: "RC",
            IsolationLevel.SNAPSHOT_ISOLATION: "SI",
            IsolationLevel.SERIALIZABILITY: "SER",
            IsolationLevel.STRICT_SERIALIZABILITY: "SSER",
            IsolationLevel.LINEARIZABILITY: "LIN",
        }[self]


class AnomalyKind(enum.Enum):
    """The 14 well-documented isolation anomalies (paper, Table I / Figure 5),
    plus generic cycle categories for violations that do not match a named
    pattern."""

    # Intra-transactional / read-provenance anomalies (Figure 5a-5g).
    THIN_AIR_READ = "ThinAirRead"
    ABORTED_READ = "AbortedRead"
    FUTURE_READ = "FutureRead"
    NOT_MY_LAST_WRITE = "NotMyLastWrite"
    NOT_MY_OWN_WRITE = "NotMyOwnWrite"
    INTERMEDIATE_READ = "IntermediateRead"
    NON_REPEATABLE_READS = "NonRepeatableReads"
    # Inter-transactional anomalies (Figure 5h-5n).
    SESSION_GUARANTEE_VIOLATION = "SessionGuaranteeViolation"
    NON_MONOTONIC_READ = "NonMonotonicRead"
    FRACTURED_READ = "FracturedRead"
    CAUSALITY_VIOLATION = "CausalityViolation"
    LONG_FORK = "LongFork"
    LOST_UPDATE = "LostUpdate"
    WRITE_SKEW = "WriteSkew"
    # Generic categories.
    DEPENDENCY_CYCLE = "DependencyCycle"
    REAL_TIME_VIOLATION = "RealTimeViolation"
    NON_LINEARIZABLE = "NonLinearizable"
    MALFORMED_HISTORY = "MalformedHistory"


@dataclass
class Violation:
    """A single isolation violation found in a history.

    Attributes:
        kind: the anomaly classification.
        description: human-readable explanation.
        txn_ids: the transactions involved (the "core" of the bug).
        cycle: for cycle-based violations, the list of edges
            ``(source_txn_id, target_txn_id, edge_label)`` forming the cycle.
        key: the object most relevant to the violation, when applicable.
    """

    kind: AnomalyKind
    description: str = ""
    txn_ids: List[int] = field(default_factory=list)
    cycle: List[Tuple[int, int, str]] = field(default_factory=list)
    key: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable encoding (checkpoint files, tooling)."""
        return {
            "kind": self.kind.value,
            "description": self.description,
            "txn_ids": list(self.txn_ids),
            "cycle": [[src, dst, label] for src, dst, label in self.cycle],
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Violation":
        """Rebuild a violation encoded by :meth:`to_dict` (exact inverse)."""
        return cls(
            kind=AnomalyKind(data["kind"]),
            description=data.get("description", ""),
            txn_ids=list(data.get("txn_ids", [])),
            cycle=[(src, dst, label) for src, dst, label in data.get("cycle", [])],
            key=data.get("key"),
        )

    def format(self) -> str:
        """Render a compact, human-readable counterexample."""
        lines = [f"{self.kind.value}: {self.description}".rstrip(": ")]
        if self.txn_ids:
            lines.append("  transactions involved: " + ", ".join(f"T{t}" for t in self.txn_ids))
        if self.cycle:
            parts = [
                f"T{src} --{label}--> T{dst}" for src, dst, label in self.cycle
            ]
            lines.append("  cycle: " + "  ".join(parts))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


@dataclass
class CheckResult:
    """The outcome of checking one history against one isolation level."""

    level: IsolationLevel
    satisfied: bool
    violations: List[Violation] = field(default_factory=list)
    #: Number of transactions examined (committed, excluding ``⊥T``).
    num_transactions: int = 0
    #: Wall-clock verification time in seconds, when measured by the caller.
    elapsed_seconds: Optional[float] = None

    @property
    def violation(self) -> Optional[Violation]:
        """The first violation, or ``None`` if the history is valid."""
        return self.violations[0] if self.violations else None

    def __bool__(self) -> bool:
        return self.satisfied

    @classmethod
    def ok(cls, level: IsolationLevel, num_transactions: int = 0) -> "CheckResult":
        """A passing result."""
        return cls(level=level, satisfied=True, num_transactions=num_transactions)

    @classmethod
    def violated(
        cls,
        level: IsolationLevel,
        violations: Sequence[Violation],
        num_transactions: int = 0,
    ) -> "CheckResult":
        """A failing result with one or more violations."""
        return cls(
            level=level,
            satisfied=False,
            violations=list(violations),
            num_transactions=num_transactions,
        )

    def format(self) -> str:
        status = "SATISFIED" if self.satisfied else "VIOLATED"
        lines = [f"{self.level.short_name}: {status} ({self.num_transactions} transactions)"]
        for violation in self.violations:
            lines.append(violation.format())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()
