"""Array-native CSR dependency-graph kernel: the dense accept path.

The paper's headline claim is that graph-based MT checking is *linear-time*
for SER/SI — but the accept path (the one every healthy history takes) used
to pay pure-Python multigraph overhead: :func:`~repro.core.graph.build_dependency`
materialised an :class:`~repro.core.graph.Edge`-labeled dict-of-dict-of-sets,
``find_cycle`` re-densified the node set on every call, and
``si_induced_graph`` copied edges one Python object at a time.  Real checkers
(Cobra's pruning stage, PolySI's encoder) win by keeping the hot loop on flat
integer arrays; this module does the same for the MTC core:

* :class:`CSRGraph` stores typed edges as flat ``array('i')`` columns —
  ``src`` / ``dst`` (dense node ids), ``etype`` (small integer edge-type
  codes), ``key_id`` (dense object ids, ``-1`` for unkeyed edges) — compiled
  on demand into CSR offsets (``indptr`` / ``indices``).  No ``Edge`` object
  is allocated on the accept path.
* :meth:`CSRGraph.from_index` is the array-native BUILDDEPENDENCY: it reads
  :class:`~repro.core.index.HistoryIndex`'s resolved read records and dense
  interning directly and appends integers.
* :meth:`CSRGraph.has_cycle` replaces per-root DFS with a single iterative
  Tarjan SCC pass and returns the first nontrivial SCC (or a self-loop).
  Labeled-cycle extraction runs only on the reject path:
  :meth:`CSRGraph.to_multigraph` materialises the legacy
  :class:`~repro.core.graph.DependencyGraph` lazily, so violation output and
  anomaly classification are byte-identical to the legacy pipeline.
* :meth:`CSRGraph.si_induced` composes the SI check graph
  ``(SO ∪ WR ∪ WW) ; RW?`` at the array level — one pass over the base rows
  joined against an RW adjacency — instead of nested Python dict iteration.

``build_dependency(history, dense=True)`` is the public entry point; the
checkers (:mod:`repro.core.checkers`), the sharded executor/merger
(:mod:`repro.parallel`), and the solver baselines' known-edge installation
(:mod:`repro.baselines.solver`, via :func:`first_nontrivial_scc`) all run on
this kernel by default.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .graph import DependencyGraph, Edge, EdgeType, _transitive_closure
from .index import HistoryIndex

__all__ = [
    "CSRGraph",
    "EDGE_TYPE_CODES",
    "EDGE_TYPE_FROM_CODE",
    "WireCSR",
    "first_nontrivial_scc",
]

# Small-integer edge-type codes (array-friendly stand-ins for EdgeType).
_RT, _SO, _WR, _WW, _RW, _COMPOSED = 0, 1, 2, 3, 4, 5

EDGE_TYPE_CODES: Dict[EdgeType, int] = {
    EdgeType.RT: _RT,
    EdgeType.SO: _SO,
    EdgeType.WR: _WR,
    EdgeType.WW: _WW,
    EdgeType.RW: _RW,
    EdgeType.COMPOSED: _COMPOSED,
}

EDGE_TYPE_FROM_CODE: Tuple[EdgeType, ...] = (
    EdgeType.RT,
    EdgeType.SO,
    EdgeType.WR,
    EdgeType.WW,
    EdgeType.RW,
    EdgeType.COMPOSED,
)

#: Wire format of a CSR graph for the process boundary: global transaction
#: ids per dense node, key names per dense key id, and the four edge columns
#: as raw little-endian ``array('i')`` buffers.
WireCSR = Tuple[List[int], List[str], bytes, bytes, bytes, bytes]


class CSRGraph:
    """A typed dependency graph over dense integer nodes, stored as arrays.

    Nodes are the committed transactions of one history (including ``⊥T``),
    numbered ``0..n-1`` in index scan order; ``node_ids[dense] == txn_id``.
    Edges live in four parallel ``array('i')`` columns and are compiled into
    CSR offsets on the first acyclicity query.  Duplicate (src, dst, type,
    key) rows are permitted — they cannot change any acyclicity verdict, and
    :meth:`to_multigraph` deduplicates on conversion.

    Example:
        >>> from repro.core.model import History, Transaction, read, write
        >>> from repro.core.graph import build_dependency
        >>> t1 = Transaction(1, [read("x", 0), write("x", 1)])
        >>> t2 = Transaction(2, [read("x", 1), write("x", 2)], session_id=1)
        >>> history = History.from_transactions([[t1], [t2]], initial_keys=["x"])
        >>> csr = build_dependency(history, dense=True)
        >>> csr.has_cycle() is None
        True
        >>> csr.num_edges >= 4  # SO + WR/WW chains through the two writers
        True
    """

    __slots__ = (
        "node_ids",
        "node_dense",
        "key_names",
        "src",
        "dst",
        "etype",
        "key_id",
        "_indptr",
        "_indices",
        "_self_loop",
        "_multigraph",
    )

    def __init__(
        self,
        node_ids: Sequence[int],
        key_names: Sequence[str],
        src: Optional[array] = None,
        dst: Optional[array] = None,
        etype: Optional[array] = None,
        key_id: Optional[array] = None,
    ) -> None:
        self.node_ids: List[int] = list(node_ids)
        self.node_dense: Dict[int, int] = {
            txn_id: i for i, txn_id in enumerate(self.node_ids)
        }
        self.key_names: List[str] = list(key_names)
        self.src: array = src if src is not None else array("i")
        self.dst: array = dst if dst is not None else array("i")
        self.etype: array = etype if etype is not None else array("i")
        self.key_id: array = key_id if key_id is not None else array("i")
        self._indptr: Optional[array] = None
        self._indices: Optional[array] = None
        self._self_loop: int = -1
        self._multigraph: Optional[DependencyGraph] = None

    # ------------------------------------------------------------------
    # Construction: the array-native BUILDDEPENDENCY
    # ------------------------------------------------------------------
    @classmethod
    def from_index(
        cls,
        index: HistoryIndex,
        *,
        with_rt: bool = False,
        transitive_ww: bool = False,
        reduced_rt: bool = True,
    ) -> "CSRGraph":
        """Algorithm 1's BUILDDEPENDENCY straight onto flat arrays.

        Mirrors :func:`~repro.core.graph.build_dependency` edge for edge
        (the randomized equivalence suite asserts the two paths agree on
        verdicts, anomaly kinds, and labeled cycles) but appends integers to
        ``array('i')`` columns instead of allocating ``Edge``-labeled dict
        entries.  Only the index's *dense* accessors are consumed
        (``committed_txn_ids`` / ``session_order_id_pairs`` /
        ``real_time_id_pairs`` / ``iter_read_edges``), so on a
        columnar-built index (:meth:`HistoryIndex.from_columns`) the whole
        build runs without materialising a single ``Transaction``.
        """
        graph = cls(
            index.committed_txn_ids,
            index.key_names,
        )
        dense = graph.node_dense
        # Composite radix for (writer, key) lookups: one int dict key beats a
        # tuple in the hot loop.
        radix = len(index.key_names) + 1
        src_append = graph.src.append
        dst_append = graph.dst.append
        et_append = graph.etype.append
        kid_append = graph.key_id.append

        if with_rt:
            for source_id, target_id in index.real_time_id_pairs(reduced=reduced_rt):
                s = dense.get(source_id)
                t = dense.get(target_id)
                if s is not None and t is not None:
                    src_append(s)
                    dst_append(t)
                    et_append(_RT)
                    kid_append(-1)

        for source_id, target_id in index.session_order_id_pairs():
            s = dense.get(source_id)
            t = dense.get(target_id)
            if s is not None and t is not None:
                src_append(s)
                dst_append(t)
                et_append(_SO)
                kid_append(-1)

        # WR edges (unique values), WW inferred from the RMW pattern.
        wr_src = array("i")
        wr_dst = array("i")
        wr_key = array("i")
        ww_succ: Dict[int, List[int]] = {}
        ww_pairs_per_key: Dict[int, List[Tuple[int, int]]] = {}
        for reader_id, k, writer_id, writer_committed, writes_key in index.iter_read_edges():
            if not writer_committed or writer_id == reader_id:
                # Read-provenance anomalies are reported by the INT pre-pass.
                continue
            w = dense[writer_id]
            r = dense[reader_id]
            src_append(w)
            dst_append(r)
            et_append(_WR)
            kid_append(k)
            wr_src.append(w)
            wr_dst.append(r)
            wr_key.append(k)
            if writes_key:
                src_append(w)
                dst_append(r)
                et_append(_WW)
                kid_append(k)
                ww_succ.setdefault(w * radix + k, []).append(r)
                if transitive_ww:
                    ww_pairs_per_key.setdefault(k, []).append((w, r))

        if transitive_ww:
            for k, pairs in ww_pairs_per_key.items():
                existing = set(pairs)
                for s, t in _transitive_closure(pairs):
                    if (s, t) in existing:
                        continue
                    src_append(s)
                    dst_append(t)
                    et_append(_WW)
                    kid_append(k)
                    ww_succ.setdefault(s * radix + k, []).append(t)

        # RW edges: T' --WR(x)--> T and T' --WW(x)--> S with T != S gives
        # T --RW(x)--> S.
        ww_get = ww_succ.get
        for w, r, k in zip(wr_src, wr_dst, wr_key):
            successors = ww_get(w * radix + k)
            if successors:
                for overwriter in successors:
                    if overwriter != r:
                        src_append(r)
                        dst_append(overwriter)
                        et_append(_RW)
                        kid_append(k)
        return graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        """Edge rows stored (duplicates included; see class docstring)."""
        return len(self.src)

    @property
    def nbytes(self) -> int:
        """Retained bytes of the flat edge store (plus compiled CSR)."""
        total = sum(
            a.itemsize * len(a) for a in (self.src, self.dst, self.etype, self.key_id)
        )
        if self._indptr is not None and self._indices is not None:
            total += self._indptr.itemsize * len(self._indptr)
            total += self._indices.itemsize * len(self._indices)
        return total

    def iter_edges(self) -> Iterator[Edge]:
        """Yield labeled :class:`Edge` objects (debug/tests; not a hot path)."""
        node_ids = self.node_ids
        key_names = self.key_names
        types = EDGE_TYPE_FROM_CODE
        for s, t, e, k in zip(self.src, self.dst, self.etype, self.key_id):
            yield Edge(node_ids[s], node_ids[t], types[e], key_names[k] if k >= 0 else None)

    # ------------------------------------------------------------------
    # Acyclicity: one iterative Tarjan pass
    # ------------------------------------------------------------------
    def _compile(self) -> None:
        """Counting-sort the edge columns into CSR offsets (stable order)."""
        if self._indptr is not None:
            return
        n = len(self.node_ids)
        m = len(self.src)
        indptr = [0] * (n + 1)
        for s in self.src:
            indptr[s + 1] += 1
        for i in range(n):
            indptr[i + 1] += indptr[i]
        cursor = indptr[:-1]
        indices = [0] * m
        self_loop = -1
        for s, t in zip(self.src, self.dst):
            c = cursor[s]
            indices[c] = t
            cursor[s] = c + 1
            if s == t and self_loop < 0:
                self_loop = s
        self._indptr = array("i", indptr)
        self._indices = array("i", indices)
        self._self_loop = self_loop

    def has_cycle(self) -> Optional[List[int]]:
        """The first nontrivial SCC (as transaction ids), or ``None``.

        A self-loop is reported as a one-element SCC.  The accept path stops
        here; callers needing a *labeled* counterexample cycle convert with
        :meth:`to_multigraph` and run the legacy
        :meth:`~repro.core.graph.DependencyGraph.find_cycle`, which keeps
        violation output identical to the legacy pipeline.
        """
        self._compile()
        if self._self_loop >= 0:
            return [self.node_ids[self._self_loop]]
        assert self._indptr is not None and self._indices is not None
        scc = _first_nontrivial_scc_csr(
            len(self.node_ids), self._indptr, self._indices
        )
        if scc is None:
            return None
        return [self.node_ids[v] for v in scc]

    def is_acyclic(self) -> bool:
        return self.has_cycle() is None

    # ------------------------------------------------------------------
    # SI composition at the CSR level
    # ------------------------------------------------------------------
    def si_induced(self) -> "CSRGraph":
        """The SI check graph ``(SO ∪ WR ∪ WW) ; RW?`` as a new CSRGraph.

        One pass over the base rows joined against an RW adjacency map: a
        base edge ``a → b`` contributes itself plus ``a → c`` (COMPOSED,
        keyed by the RW edge) for every ``b RW→ c``.  Matches
        :meth:`DependencyGraph.si_induced_graph` edge-set for edge-set.
        """
        rw_map: Dict[int, List[Tuple[int, int]]] = {}
        for s, t, e, k in zip(self.src, self.dst, self.etype, self.key_id):
            if e == _RW:
                rw_map.setdefault(s, []).append((t, k))

        induced = CSRGraph(self.node_ids, self.key_names)
        src_append = induced.src.append
        dst_append = induced.dst.append
        et_append = induced.etype.append
        kid_append = induced.key_id.append
        rw_get = rw_map.get
        for s, t, e, k in zip(self.src, self.dst, self.etype, self.key_id):
            if not _SO <= e <= _WW:
                continue
            src_append(s)
            dst_append(t)
            et_append(e)
            kid_append(k)
            successors = rw_get(t)
            if successors:
                for c, ck in successors:
                    src_append(s)
                    dst_append(c)
                    et_append(_COMPOSED)
                    kid_append(ck)
        return induced

    # ------------------------------------------------------------------
    # Lazy legacy conversion (reject path / explicit callers only)
    # ------------------------------------------------------------------
    def to_multigraph(self) -> DependencyGraph:
        """Materialise the legacy labeled multigraph (cached).

        Only runs when a cycle must be labeled or a caller explicitly asks
        for the multigraph; the edge *set* equals what the legacy
        ``build_dependency`` builds, so ``find_cycle`` / ``label_cycle`` /
        anomaly classification behave identically.
        """
        if self._multigraph is None:
            graph = DependencyGraph(self.node_ids)
            node_ids = self.node_ids
            key_names = self.key_names
            types = EDGE_TYPE_FROM_CODE
            add_edge = graph.add_edge
            for s, t, e, k in zip(self.src, self.dst, self.etype, self.key_id):
                add_edge(
                    node_ids[s],
                    node_ids[t],
                    types[e],
                    key_names[k] if k >= 0 else None,
                )
            self._multigraph = graph
        return self._multigraph

    def append_remapped(
        self,
        wire: WireCSR,
        node_map: Sequence[int],
        key_map: Sequence[int],
    ) -> None:
        """Append another graph's edge rows with ids translated into this one.

        ``node_map[local_dense] -> this graph's dense node id`` and
        ``key_map[local_kid] -> this graph's dense key id`` are the
        translation arrays for the wire graph's own interning; unkeyed
        edges (``key_id == -1``) stay unkeyed.  Edge rows are appended in
        the wire's order, so composing remaps over a reduction tree yields
        byte-identical edge columns to remapping every leaf directly — the
        invariant the SSER tree merge relies on.  Invalidates any compiled
        CSR/multigraph state.
        """
        _node_ids, _key_names, src_b, dst_b, etype_b, key_b = wire
        src = array("i")
        src.frombytes(src_b)
        dst = array("i")
        dst.frombytes(dst_b)
        etype = array("i")
        etype.frombytes(etype_b)
        key_id = array("i")
        key_id.frombytes(key_b)
        src_append = self.src.append
        dst_append = self.dst.append
        et_append = self.etype.append
        kid_append = self.key_id.append
        for s, t, e, k in zip(src, dst, etype, key_id):
            src_append(node_map[s])
            dst_append(node_map[t])
            et_append(e)
            kid_append(key_map[k] if k >= 0 else -1)
        self._indptr = None
        self._indices = None
        self._self_loop = -1
        self._multigraph = None

    # ------------------------------------------------------------------
    # Process-boundary wire format
    # ------------------------------------------------------------------
    def to_wire(self) -> WireCSR:
        """Flatten into compact picklable buffers (see :data:`WireCSR`)."""
        return (
            self.node_ids,
            self.key_names,
            self.src.tobytes(),
            self.dst.tobytes(),
            self.etype.tobytes(),
            self.key_id.tobytes(),
        )

    @classmethod
    def from_wire(cls, wire: WireCSR) -> "CSRGraph":
        node_ids, key_names, src_b, dst_b, etype_b, key_b = wire
        columns = []
        for buf in (src_b, dst_b, etype_b, key_b):
            column = array("i")
            column.frombytes(buf)
            columns.append(column)
        return cls(node_ids, key_names, *columns)

    def __repr__(self) -> str:
        return (
            f"CSRGraph(nodes={len(self.node_ids)}, edges={len(self.src)}, "
            f"nbytes={self.nbytes})"
        )


# ----------------------------------------------------------------------
# Tarjan SCC (iterative, allocation-light)
# ----------------------------------------------------------------------
def _first_nontrivial_scc_csr(
    n: int, indptr: Sequence[int], indices: Sequence[int]
) -> Optional[List[int]]:
    """First SCC of size > 1 over CSR adjacency, or ``None`` when acyclic.

    Iterative Tarjan with flat arrays for discovery indices and low-links;
    roots are visited in ascending dense order and successors in CSR
    (insertion) order, so the reported component is deterministic.
    Self-loops are the caller's job (pre-scanned during compilation).
    """
    ids = [-1] * n
    low = [0] * n
    on_stack = bytearray(n)
    scc_stack: List[int] = []
    counter = 0
    for root in range(n):
        if ids[root] != -1:
            continue
        ids[root] = low[root] = counter
        counter += 1
        scc_stack.append(root)
        on_stack[root] = 1
        work: List[Tuple[int, int]] = [(root, indptr[root])]
        while work:
            v, ptr = work[-1]
            if ptr < indptr[v + 1]:
                work[-1] = (v, ptr + 1)
                w = indices[ptr]
                if ids[w] == -1:
                    ids[w] = low[w] = counter
                    counter += 1
                    scc_stack.append(w)
                    on_stack[w] = 1
                    work.append((w, indptr[w]))
                elif on_stack[w] and ids[w] < low[v]:
                    low[v] = ids[w]
            else:
                work.pop()
                low_v = low[v]
                if work:
                    u = work[-1][0]
                    if low_v < low[u]:
                        low[u] = low_v
                if low_v == ids[v]:
                    component: List[int] = []
                    while True:
                        w = scc_stack.pop()
                        on_stack[w] = 0
                        component.append(w)
                        if w == v:
                            break
                    if len(component) > 1:
                        return component
    return None


def first_nontrivial_scc(
    adjacency: Sequence[Sequence[int]],
) -> Optional[List[int]]:
    """First cycle-witnessing SCC over a dense list-of-lists adjacency.

    Compiles the rows into CSR offsets (stable counting sort, preserving
    successor order) and runs the same Tarjan core as
    :meth:`CSRGraph.has_cycle`; a self-loop is reported as a one-element
    component.  Shared with the solver baselines' known-edge installation,
    which runs one SCC pass instead of a reachability DFS per edge on the
    accept path.
    """
    n = len(adjacency)
    indptr = [0] * (n + 1)
    for v, row in enumerate(adjacency):
        indptr[v + 1] = indptr[v] + len(row)
        for w in row:
            if w == v:
                return [v]
    indices: List[int] = []
    for row in adjacency:
        indices.extend(row)
    return _first_nontrivial_scc_csr(n, indptr, indices)
