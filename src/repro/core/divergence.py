"""Detection of the DIVERGENCE pattern (paper, Definition 10).

A history contains the DIVERGENCE pattern when two transactions read the
same value of an object from a third transaction and subsequently write
different values to that object.  Any history exhibiting the pattern
violates snapshot isolation (Lemma 1): whichever way the two writers are
ordered in ``WW``, a ``WW ; RW`` back-and-forth cycle arises (Figure 3).
CHECKSI therefore rejects a history as soon as the pattern is detected,
before constructing the full dependency graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .index import HistoryIndex
from .model import History
from .result import AnomalyKind, Violation

__all__ = ["DivergenceInstance", "find_divergence", "find_all_divergences"]


@dataclass(frozen=True)
class DivergenceInstance:
    """One instance of the DIVERGENCE pattern.

    ``reader_a`` and ``reader_b`` both read ``value`` of ``key`` from
    ``writer`` and then write different values to ``key``.
    """

    key: str
    writer: int
    value: int
    reader_a: int
    reader_b: int

    def to_violation(self) -> Violation:
        return Violation(
            kind=AnomalyKind.LOST_UPDATE,
            description=(
                f"DIVERGENCE pattern on object {self.key}: T{self.reader_a} and "
                f"T{self.reader_b} both read value {self.value} written by "
                f"T{self.writer} and then wrote different values"
            ),
            txn_ids=[self.writer, self.reader_a, self.reader_b],
            key=self.key,
        )


def find_divergence(
    history: History,
    *,
    index: Optional[HistoryIndex] = None,
) -> Optional[DivergenceInstance]:
    """Return the first DIVERGENCE instance found, or ``None``.

    Runs in time linear in the number of operations: for every committed
    transaction that both reads and writes an object, the ``(object, value
    read)`` slot is recorded; two different writers landing in the same slot
    form the pattern.
    """
    instances = find_all_divergences(history, index=index, first_only=True)
    return instances[0] if instances else None


def find_all_divergences(
    history: History,
    *,
    index: Optional[HistoryIndex] = None,
    first_only: bool = False,
) -> List[DivergenceInstance]:
    """Find (all) DIVERGENCE instances in a history.

    The scan replays the shared :class:`~repro.core.index.HistoryIndex` read
    resolutions (building the index when the caller did not supply one) via
    the flat :meth:`~repro.core.index.HistoryIndex.iter_read_tuples`
    accessor, so it stays object-free on columnar-built indexes.
    """
    if index is None:
        index = HistoryIndex.build(history)

    # (key, value read) -> (first reader-writer txn id, value it wrote).
    slots: Dict[Tuple[str, Optional[int]], Tuple[int, Optional[int]]] = {}
    instances: List[DivergenceInstance] = []
    for reader_id, key, value, writer_id, writes_key, written_value in index.iter_read_tuples():
        if not writes_key:
            continue
        slot = (key, value)
        other = slots.get(slot)
        if other is None:
            slots[slot] = (reader_id, written_value)
            continue
        other_id, other_written = other
        if other_id == reader_id:
            continue
        if other_written == written_value:
            # Both overwrote with the same value: not DIVERGENCE (only
            # possible in histories without unique values).
            continue
        instance = DivergenceInstance(
            key=key,
            writer=writer_id if writer_id is not None else -2,
            value=value,
            reader_a=other_id,
            reader_b=reader_id,
        )
        instances.append(instance)
        if first_only:
            return instances
    return instances
