"""History serialization: save and load histories as JSON.

Black-box checking pipelines persist histories between the generation and
verification stages (Figure 2, Step 3).  This module serialises
:class:`~repro.core.model.History` and :class:`~repro.core.lwt.LWTHistory`
objects to a simple, stable JSON format so that histories can be archived,
shared, and re-verified.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from ..core.lwt import LWTHistory, LWTKind, LWTOperation
from ..core.model import (
    History,
    Operation,
    OpType,
    Session,
    Transaction,
    TransactionStatus,
)

__all__ = [
    "history_to_dict",
    "history_from_dict",
    "save_history",
    "load_history",
    "lwt_history_to_dict",
    "lwt_history_from_dict",
    "save_lwt_history",
    "load_lwt_history",
]


# ----------------------------------------------------------------------
# Transactional histories
# ----------------------------------------------------------------------
def history_to_dict(history: History) -> Dict[str, Any]:
    """Convert a history to a JSON-serialisable dictionary."""
    payload: Dict[str, Any] = {
        "format": "repro-history-v1",
        "sessions": [
            {
                "session_id": session.session_id,
                "transactions": [_txn_to_dict(txn) for txn in session.transactions],
            }
            for session in history.sessions
        ],
    }
    if history.initial_transaction is not None:
        payload["initial_transaction"] = _txn_to_dict(history.initial_transaction)
    return payload


def history_from_dict(payload: Dict[str, Any]) -> History:
    """Reconstruct a history from :func:`history_to_dict` output."""
    if payload.get("format") != "repro-history-v1":
        raise ValueError("unrecognised history format")
    sessions = []
    for session_payload in payload.get("sessions", []):
        session = Session(session_id=session_payload["session_id"])
        for txn_payload in session_payload.get("transactions", []):
            session.transactions.append(_txn_from_dict(txn_payload))
        sessions.append(session)
    initial = payload.get("initial_transaction")
    initial_txn = _txn_from_dict(initial) if initial is not None else None
    return History(sessions=sessions, initial_transaction=initial_txn)


def save_history(history: History, path: Union[str, Path]) -> None:
    """Write a history to ``path`` as JSON."""
    Path(path).write_text(json.dumps(history_to_dict(history), indent=2))


def load_history(path: Union[str, Path]) -> History:
    """Load a history previously written by :func:`save_history`."""
    return history_from_dict(json.loads(Path(path).read_text()))


def _txn_to_dict(txn: Transaction) -> Dict[str, Any]:
    return {
        "txn_id": txn.txn_id,
        "session_id": txn.session_id,
        "status": txn.status.value,
        "start_ts": txn.start_ts,
        "finish_ts": txn.finish_ts,
        "operations": [
            {"op": op.op_type.value, "key": op.key, "value": op.value}
            for op in txn.operations
        ],
    }


def _txn_from_dict(payload: Dict[str, Any]) -> Transaction:
    operations = [
        Operation(OpType(op["op"]), op["key"], op["value"])
        for op in payload.get("operations", [])
    ]
    return Transaction(
        txn_id=payload["txn_id"],
        operations=operations,
        session_id=payload.get("session_id", 0),
        status=TransactionStatus(payload.get("status", "committed")),
        start_ts=payload.get("start_ts"),
        finish_ts=payload.get("finish_ts"),
    )


# ----------------------------------------------------------------------
# Lightweight-transaction histories
# ----------------------------------------------------------------------
def lwt_history_to_dict(history: LWTHistory) -> Dict[str, Any]:
    """Convert an LWT history to a JSON-serialisable dictionary."""
    return {
        "format": "repro-lwt-history-v1",
        "operations": [
            {
                "op_id": op.op_id,
                "kind": op.kind.value,
                "key": op.key,
                "expected": op.expected,
                "written": op.written,
                "start_ts": op.start_ts,
                "finish_ts": op.finish_ts,
                "session_id": op.session_id,
            }
            for op in history.operations
        ],
    }


def lwt_history_from_dict(payload: Dict[str, Any]) -> LWTHistory:
    """Reconstruct an LWT history from :func:`lwt_history_to_dict` output."""
    if payload.get("format") != "repro-lwt-history-v1":
        raise ValueError("unrecognised LWT history format")
    operations: List[LWTOperation] = []
    for op in payload.get("operations", []):
        operations.append(
            LWTOperation(
                op_id=op["op_id"],
                kind=LWTKind(op["kind"]),
                key=op["key"],
                expected=op.get("expected"),
                written=op["written"],
                start_ts=op.get("start_ts", 0.0),
                finish_ts=op.get("finish_ts", 0.0),
                session_id=op.get("session_id", 0),
            )
        )
    return LWTHistory(operations=operations)


def save_lwt_history(history: LWTHistory, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(lwt_history_to_dict(history), indent=2))


def load_lwt_history(path: Union[str, Path]) -> LWTHistory:
    return lwt_history_from_dict(json.loads(Path(path).read_text()))
