"""History serialization: JSON documents and streaming JSONL.

Black-box checking pipelines persist histories between the generation and
verification stages (Figure 2, Step 3).  This module serialises
:class:`~repro.core.model.History` and :class:`~repro.core.lwt.LWTHistory`
objects two ways:

* a single JSON document (``repro-history-v1``) for archived histories —
  :func:`save_history` / :func:`load_history`;
* a line-oriented JSONL stream (``repro-history-stream-v1``) for live
  checking — one transaction per line in arrival order, written by
  :class:`HistoryStreamWriter` and consumed lazily by
  :func:`iter_history_jsonl`, so a history never has to fit in memory and a
  ``repro watch`` process can follow the file while it grows.

The stream format is a header line ``{"format": "repro-history-stream-v1",
"initial_transaction": {...}?}`` followed by one transaction object per
line (the same shape as in the document format, including ``session_id``).
"""

from __future__ import annotations

import gzip
import json
import warnings
from pathlib import Path
from typing import IO, Any, Dict, Iterable, Iterator, List, Optional, Union

from ..core.lwt import LWTHistory, LWTKind, LWTOperation
from ..core.model import (
    History,
    Operation,
    OpType,
    Session,
    Transaction,
    TransactionStatus,
    history_from_stream,
    make_initial_transaction,
)

__all__ = [
    "history_to_dict",
    "history_from_dict",
    "save_history",
    "load_history",
    "transaction_to_dict",
    "transaction_from_dict",
    "HistoryStreamWriter",
    "write_history_jsonl",
    "iter_history_jsonl",
    "load_history_jsonl",
    "is_stream_path",
    "open_history_stream",
    "lwt_history_to_dict",
    "lwt_history_from_dict",
    "save_lwt_history",
    "load_lwt_history",
]

STREAM_FORMAT = "repro-history-stream-v1"


# ----------------------------------------------------------------------
# Transactional histories
# ----------------------------------------------------------------------
def history_to_dict(history: History) -> Dict[str, Any]:
    """Convert a history to a JSON-serialisable dictionary."""
    payload: Dict[str, Any] = {
        "format": "repro-history-v1",
        "sessions": [
            {
                "session_id": session.session_id,
                "transactions": [_txn_to_dict(txn) for txn in session.transactions],
            }
            for session in history.sessions
        ],
    }
    if history.initial_transaction is not None:
        payload["initial_transaction"] = _txn_to_dict(history.initial_transaction)
    return payload


def history_from_dict(payload: Dict[str, Any]) -> History:
    """Reconstruct a history from :func:`history_to_dict` output."""
    if payload.get("format") != "repro-history-v1":
        raise ValueError("unrecognised history format")
    sessions = []
    for session_payload in payload.get("sessions", []):
        session = Session(session_id=session_payload["session_id"])
        for txn_payload in session_payload.get("transactions", []):
            session.transactions.append(_txn_from_dict(txn_payload))
        sessions.append(session)
    initial = payload.get("initial_transaction")
    initial_txn = _txn_from_dict(initial) if initial is not None else None
    return History(sessions=sessions, initial_transaction=initial_txn)


def save_history(history: History, path: Union[str, Path]) -> None:
    """Write a history to ``path`` as JSON."""
    Path(path).write_text(json.dumps(history_to_dict(history), indent=2))


def load_history(path: Union[str, Path]) -> History:
    """Load a history previously written by :func:`save_history`."""
    return history_from_dict(json.loads(Path(path).read_text()))


def transaction_to_dict(txn: Transaction) -> Dict[str, Any]:
    """Convert one transaction to the JSON shape shared by both formats."""
    return {
        "txn_id": txn.txn_id,
        "session_id": txn.session_id,
        "status": txn.status.value,
        "start_ts": txn.start_ts,
        "finish_ts": txn.finish_ts,
        "operations": [
            {"op": op.op_type.value, "key": op.key, "value": op.value}
            for op in txn.operations
        ],
    }


def transaction_from_dict(payload: Dict[str, Any]) -> Transaction:
    """Reconstruct one transaction from :func:`transaction_to_dict` output."""
    operations = [
        Operation(OpType(op["op"]), op["key"], op["value"])
        for op in payload.get("operations", [])
    ]
    return Transaction(
        txn_id=payload["txn_id"],
        operations=operations,
        session_id=payload.get("session_id", 0),
        status=TransactionStatus(payload.get("status", "committed")),
        start_ts=payload.get("start_ts"),
        finish_ts=payload.get("finish_ts"),
    )


# Backwards-compatible aliases for the original private helpers.
_txn_to_dict = transaction_to_dict
_txn_from_dict = transaction_from_dict


# ----------------------------------------------------------------------
# Streaming JSONL histories
# ----------------------------------------------------------------------
def is_stream_path(path: Union[str, Path]) -> bool:
    """Whether ``path`` looks like a JSONL history stream (by suffix).

    Gzip-compressed streams (``*.jsonl.gz`` / ``*.ndjson.gz``) count: every
    stream consumer opens files through :func:`open_history_stream`, which
    decompresses transparently.
    """
    name = Path(path).name.lower()
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    return name.endswith((".jsonl", ".ndjson"))


def open_history_stream(path: Union[str, Path]) -> IO[str]:
    """Open a JSONL stream for text reading, gunzipping ``*.gz`` files.

    Compression is detected by content (the two gzip magic bytes), not by
    suffix, so renamed files still open correctly.
    """
    with open(path, "rb") as probe:
        is_gzip = probe.read(2) == b"\x1f\x8b"
    if is_gzip:
        return gzip.open(path, "rt", encoding="utf-8")  # type: ignore[return-value]
    return open(path, "r", encoding="utf-8")


class HistoryStreamWriter:
    """Append-only writer for the JSONL history stream format.

    Emits the header on construction and one line per transaction after
    that, flushing so a concurrent ``repro watch`` (or any
    :func:`iter_history_jsonl` consumer in follow mode) sees transactions
    as soon as they commit.  Usable as a context manager and directly as a
    :class:`~repro.workloads.runner.WorkloadRunner` ``on_transaction`` hook.

    ``flush_every=N`` batches flushes (every ``N`` transactions instead of
    every one) for high-throughput producers; the header is always flushed
    immediately so a follower can validate the stream at any time, and
    buffered lines are flushed on :meth:`close`.  With ``N > 1`` the OS may
    observe a *torn* final line mid-run — all stream readers tolerate that
    (the watcher buffers until the newline arrives; one-shot readers skip a
    torn tail).

    A ``*.gz`` path (or ``compress=True``) writes the stream
    gzip-compressed; every reader in this module decompresses transparently.

    Example:
        >>> import tempfile, os
        >>> from repro import Transaction, read, write
        >>> path = os.path.join(tempfile.mkdtemp(), "stream.jsonl")
        >>> with HistoryStreamWriter(path) as writer:
        ...     writer.write(Transaction(1, [read("x", 0), write("x", 1)]))
        >>> len(list(iter_history_jsonl(path)))
        1
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        initial_transaction: Optional[Transaction] = None,
        initial_keys: Optional[Iterable[str]] = None,
        flush_every: int = 1,
        compress: Optional[bool] = None,
    ) -> None:
        """``initial_keys`` synthesises the header's ``⊥T`` from a key list —
        the convenient form when tailing a live run (serial or concurrent)
        whose workload keys are known before any transaction commits."""
        if flush_every < 1:
            raise ValueError("flush_every must be a positive transaction count")
        if initial_transaction is None and initial_keys is not None:
            initial_transaction = make_initial_transaction(initial_keys)
        if compress is None:
            compress = str(path).lower().endswith(".gz")
        if compress:
            self._fh: IO[str] = gzip.open(path, "wt", encoding="utf-8")  # type: ignore[assignment]
        else:
            self._fh = open(path, "w", encoding="utf-8")
        self._flush_every = flush_every
        self._pending = 0
        header: Dict[str, Any] = {"format": STREAM_FORMAT}
        if initial_transaction is not None:
            header["initial_transaction"] = transaction_to_dict(initial_transaction)
        self._emit(header, force_flush=True)

    def write(self, txn: Transaction) -> None:
        """Append one transaction to the stream."""
        self._emit(transaction_to_dict(txn))

    __call__ = write

    def _emit(self, payload: Dict[str, Any], *, force_flush: bool = False) -> None:
        self._fh.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._pending += 1
        if force_flush or self._pending >= self._flush_every:
            self._fh.flush()
            self._pending = 0

    def flush(self) -> None:
        """Flush buffered lines to the OS immediately."""
        self._fh.flush()
        self._pending = 0

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "HistoryStreamWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_history_jsonl(
    history: History,
    path: Union[str, Path],
    *,
    order: Optional[Iterable[Transaction]] = None,
) -> None:
    """Write a complete history as a JSONL stream in canonical order.

    ``order`` overrides the default arrival order
    (:func:`repro.core.stream_order`: merged by finish timestamp, falling
    back to round-robin); it must not include the initial transaction,
    which goes into the header.
    """
    from ..core.incremental import stream_order  # local import: avoid cycle

    with HistoryStreamWriter(
        path, initial_transaction=history.initial_transaction
    ) as writer:
        if order is None:
            order = (
                txn for txn in stream_order(history) if not txn.is_initial
            )
        for txn in order:
            writer.write(txn)


def parse_stream_header(line: str) -> Dict[str, Any]:
    """Validate a stream's header line; raises ``ValueError`` when invalid.

    Shared by :func:`iter_history_jsonl` and the CLI's follow mode so the
    two cannot drift on what counts as a valid stream.
    """
    if not line.strip():
        raise ValueError("empty history stream (missing header)")
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not a {STREAM_FORMAT} stream: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != STREAM_FORMAT:
        raise ValueError(f"not a {STREAM_FORMAT} stream")
    return header


def iter_history_jsonl(path: Union[str, Path]) -> Iterator[Transaction]:
    """Lazily yield the transactions of a JSONL stream, ``⊥T`` first.

    The file is read line by line, so arbitrarily long streams can be
    verified in bounded memory when combined with the streaming checker's
    window mode.  Gzip-compressed streams are decompressed transparently,
    and a *torn* final line — a live producer (or a ``flush_every`` batch)
    caught mid-append, recognisable by the missing terminating newline — is
    skipped with a ``UserWarning`` instead of raising
    ``json.JSONDecodeError``, so the complete prefix stays checkable while
    the truncation remains visible (a truncated copy of a *finished*
    history would otherwise be silently shortened); use ``repro watch`` to
    keep following until the line completes.
    """
    with open_history_stream(path) as fh:
        try:
            header_line = fh.readline()
        except EOFError:
            # A gzip member cut off before its end-of-stream marker — the
            # producer is still writing (or the copy was truncated).
            raise ValueError(f"{path}: truncated compressed stream (no header)") from None
        try:
            header = parse_stream_header(header_line)
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from None
        initial = header.get("initial_transaction")
        if initial is not None:
            yield transaction_from_dict(initial)
        while True:
            try:
                line = fh.readline()
            except EOFError:
                # Torn compressed tail (live gzip writer): the complete
                # prefix has been yielded; the stream ends here.
                warnings.warn(
                    f"{path}: compressed stream truncated mid-member "
                    f"(producer still writing?); stopping at the last "
                    f"complete transaction",
                    stacklevel=2,
                )
                return
            if not line:
                return
            if not line.strip():
                continue
            if not line.endswith("\n"):
                # Unterminated final line: the producer is mid-append.  If it
                # parses it is a complete record that merely lacks a trailing
                # newline; otherwise it is torn and the stream ends here.
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    warnings.warn(
                        f"{path}: skipping torn final line "
                        f"({len(line)} bytes without a newline)",
                        stacklevel=2,
                    )
                    return
                yield transaction_from_dict(payload)
                return
            yield transaction_from_dict(json.loads(line))


def load_history_jsonl(path: Union[str, Path]) -> History:
    """Materialise a JSONL stream into a :class:`History` (for batch use)."""
    return history_from_stream(iter_history_jsonl(path))


# ----------------------------------------------------------------------
# Lightweight-transaction histories
# ----------------------------------------------------------------------
def lwt_history_to_dict(history: LWTHistory) -> Dict[str, Any]:
    """Convert an LWT history to a JSON-serialisable dictionary."""
    return {
        "format": "repro-lwt-history-v1",
        "operations": [
            {
                "op_id": op.op_id,
                "kind": op.kind.value,
                "key": op.key,
                "expected": op.expected,
                "written": op.written,
                "start_ts": op.start_ts,
                "finish_ts": op.finish_ts,
                "session_id": op.session_id,
            }
            for op in history.operations
        ],
    }


def lwt_history_from_dict(payload: Dict[str, Any]) -> LWTHistory:
    """Reconstruct an LWT history from :func:`lwt_history_to_dict` output."""
    if payload.get("format") != "repro-lwt-history-v1":
        raise ValueError("unrecognised LWT history format")
    operations: List[LWTOperation] = []
    for op in payload.get("operations", []):
        operations.append(
            LWTOperation(
                op_id=op["op_id"],
                kind=LWTKind(op["kind"]),
                key=op["key"],
                expected=op.get("expected"),
                written=op["written"],
                start_ts=op.get("start_ts", 0.0),
                finish_ts=op.get("finish_ts", 0.0),
                session_id=op.get("session_id", 0),
            )
        )
    return LWTHistory(operations=operations)


def save_lwt_history(history: LWTHistory, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(lwt_history_to_dict(history), indent=2))


def load_lwt_history(path: Union[str, Path]) -> LWTHistory:
    return lwt_history_from_dict(json.loads(Path(path).read_text()))
