"""Columnar history segments: the zero-copy data plane of the pipeline.

JSONL (:mod:`repro.history.serialization`) is the *interchange* format —
human-greppable, append-only, tailable.  It is also the slowest possible way
to feed the checker: every transaction becomes a parsed dict, then a
:class:`~repro.core.model.Transaction` with one frozen
:class:`~repro.core.model.Operation` per op, and every downstream layer
re-walks those objects attribute by attribute.  At millions of transactions
the accept path spends more time allocating Python objects than checking.

:class:`ColumnarHistory` stores the same information as flat typed columns —
the representation the dense kernel (:mod:`repro.core.csr`) and the shared
index (:class:`~repro.core.index.HistoryIndex`) already work in:

* per transaction: ``txn_ids`` / ``session_ids`` (``array('q')``),
  ``statuses`` (small codes), ``start_ts`` / ``finish_ts`` (``array('d')``,
  NaN encodes "no timestamp"), and ``op_offsets`` (CSR-style: transaction
  ``i`` owns operations ``op_offsets[i]:op_offsets[i+1]``);
* per operation: ``op_kinds`` (read/write), ``op_keys`` (dense key ids into
  ``key_names``), ``op_values`` + ``op_has_value`` (``None``-aware values).

A segment round-trips losslessly with the JSONL stream format (``repro
convert``), serialises to a compact binary file (:meth:`ColumnarHistory.save`
/ :meth:`ColumnarHistory.load`, gzip-optional via a ``.gz`` suffix), and
crosses process boundaries as raw buffers (:meth:`ColumnarHistory.to_wire` /
:meth:`ColumnarHistory.from_wire`) — which is how the parallel executor ships
shard slices without pickling a single ``Transaction``.

The fast consumption path is :meth:`repro.core.index.HistoryIndex.from_columns`,
which scans these columns directly; :meth:`to_history` exists for the legacy
object pipeline and for debugging.
"""

from __future__ import annotations

import gzip
import json
import math
import mmap as _mmap_module
import os
import sys
import zlib
from array import array
from pathlib import Path
from typing import (
    IO,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .. import obs
from ..resilience.failpoints import fail_point
from ..core.model import (
    INITIAL_TXN_ID,
    STATUS_CODES,
    STATUS_FROM_CODE,
    History,
    Operation,
    OpType,
    Transaction,
    TransactionStatus,
    history_from_stream,
)

__all__ = [
    "ColumnarHistory",
    "ColumnBuilder",
    "SegmentWriter",
    "is_segment_path",
    "write_history_segment",
    "load_history_segment",
    "OP_READ",
    "OP_WRITE",
    "SEGMENT_FORMAT",
    "SEGMENT_MAGIC",
    "file_crc32",
    "segment_token",
]

SEGMENT_FORMAT = "repro-history-segment-v1"
SEGMENT_MAGIC = b"REPROSEG1\n"

#: Op-kind codes used in the ``op_kinds`` column.  (Status codes in the
#: ``statuses`` column are :data:`repro.core.model.STATUS_CODES`,
#: re-exported here for segment consumers.)
OP_READ, OP_WRITE = 0, 1
_READ, _WRITE = OP_READ, OP_WRITE

_NAN = float("nan")
#: Pre-built has-value run for :meth:`ColumnarHistory.append_row` (every
#: collector-recorded operation carries a value).
_ONES = b"\x01" * 256

#: Process-boundary wire format: key names plus one raw buffer per column.
WireColumns = Tuple[
    List[str],  # key_names
    bytes,  # txn_ids      array('q')
    bytes,  # session_ids  array('q')
    bytes,  # statuses     array('b')
    bytes,  # start_ts     array('d')
    bytes,  # finish_ts    array('d')
    bytes,  # op_offsets   array('q')
    bytes,  # op_kinds     array('b')
    bytes,  # op_keys      array('i')
    bytes,  # op_values    array('q')
    bytes,  # op_has_value array('b')
]


def is_segment_path(path: Union[str, Path]) -> bool:
    """Whether ``path`` looks like a columnar segment file (by suffix)."""
    name = Path(path).name.lower()
    return name.endswith(".seg") or name.endswith(".seg.gz")


def file_crc32(path: Union[str, Path]) -> int:
    """CRC-32 of a file's raw bytes (streamed; no decompression).

    Content fingerprint for segment-adjacent caches — e.g. the
    ``<segment>.idx`` sidecar written by
    :meth:`~repro.core.index.HistoryIndex.save_cache` — so a cache built
    from one segment can never be served for another.
    """
    crc = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def segment_token(path: Union[str, Path]) -> Tuple[int, int]:
    """Cheap identity token for a segment file: ``(size, mtime_ns)``.

    Keys the per-worker warm segment/index caches in
    :mod:`repro.parallel.executor` — stat-only, so it can be computed per
    payload without touching the file contents; any rewrite of the segment
    changes the token and invalidates the cached mappings.
    """
    st = os.stat(path)
    return (st.st_size, st.st_mtime_ns)


class ColumnarHistory:
    """A history as flat typed columns (one appendable in-memory segment).

    Rows are transactions in arrival order; when the history has an initial
    transaction ``⊥T`` it occupies row 0 (``txn_id == -1``).  Per-session
    order is whatever order rows were appended in, which every producer
    (stream order, the collector's finish-order hook) preserves.

    Example:
        >>> from repro.core.model import Transaction, read, write
        >>> cols = ColumnarHistory()
        >>> cols.append(Transaction(1, [read("x", 0), write("x", 1)]))
        >>> cols.num_transactions, cols.num_operations, cols.key_names
        (1, 2, ['x'])
        >>> str(cols.transaction_at(0))
        'T1[R(x,0), W(x,1)]'
    """

    __slots__ = (
        "key_names",
        "key_ids",
        "txn_ids",
        "session_ids",
        "statuses",
        "start_ts",
        "finish_ts",
        "op_offsets",
        "op_kinds",
        "op_keys",
        "op_values",
        "op_has_value",
    )

    def __init__(self) -> None:
        self.key_names: List[str] = []
        self.key_ids: Dict[str, int] = {}
        self.txn_ids = array("q")
        self.session_ids = array("q")
        self.statuses = array("b")
        self.start_ts = array("d")
        self.finish_ts = array("d")
        self.op_offsets = array("q", [0])
        self.op_kinds = array("b")
        self.op_keys = array("i")
        self.op_values = array("q")
        self.op_has_value = array("b")

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_transactions(self) -> int:
        return len(self.txn_ids)

    @property
    def num_operations(self) -> int:
        return len(self.op_kinds)

    @property
    def has_initial(self) -> bool:
        """Whether row 0 is the initial transaction ``⊥T``."""
        return len(self.txn_ids) > 0 and self.txn_ids[0] == INITIAL_TXN_ID

    @property
    def nbytes(self) -> int:
        """Retained bytes of the flat column store (key names excluded)."""
        return sum(
            column.itemsize * len(column)
            for column in (
                self.txn_ids,
                self.session_ids,
                self.statuses,
                self.start_ts,
                self.finish_ts,
                self.op_offsets,
                self.op_kinds,
                self.op_keys,
                self.op_values,
                self.op_has_value,
            )
        )

    def __len__(self) -> int:
        return len(self.txn_ids)

    def __repr__(self) -> str:
        return (
            f"ColumnarHistory(transactions={self.num_transactions}, "
            f"operations={self.num_operations}, keys={len(self.key_names)}, "
            f"nbytes={self.nbytes})"
        )

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def key_id(self, key: str) -> int:
        """Intern ``key`` and return its dense id."""
        kid = self.key_ids.get(key)
        if kid is None:
            kid = len(self.key_names)
            self.key_ids[key] = kid
            self.key_names.append(key)
        return kid

    def append_raw(
        self,
        txn_id: int,
        session_id: int,
        status_code: int,
        start_ts: Optional[float],
        finish_ts: Optional[float],
        ops: Iterable[Tuple[int, str, Optional[int]]],
    ) -> None:
        """Append one row from flat fields — the object-free accept path.

        ``ops`` yields ``(kind_code, key, value)`` triples, where the kind
        code is :data:`OP_READ`/:data:`OP_WRITE` and ``value`` is ``None``
        for an operation without one.  ``status_code`` is a
        :data:`repro.core.model.STATUS_CODES` value; timestamps may be
        ``None``.  No :class:`Transaction`/:class:`Operation` objects are
        touched, which is what lets the async collector feed rows straight
        from its coroutines.

        Raises ``ValueError`` when an id or value falls outside the segment
        format's integer range (signed 64-bit for transaction/session ids
        and values, signed 32-bit for distinct keys); the instance must be
        considered corrupt afterwards.
        """
        try:
            self.txn_ids.append(txn_id)
            self.session_ids.append(session_id)
            self.statuses.append(status_code)
            self.start_ts.append(_NAN if start_ts is None else float(start_ts))
            self.finish_ts.append(_NAN if finish_ts is None else float(finish_ts))
            key_ids = self.key_ids
            key_names = self.key_names
            kinds_append = self.op_kinds.append
            keys_append = self.op_keys.append
            values_append = self.op_values.append
            has_append = self.op_has_value.append
            for kind, key, value in ops:
                kid = key_ids.get(key)
                if kid is None:
                    kid = len(key_names)
                    key_ids[key] = kid
                    key_names.append(key)
                kinds_append(kind)
                keys_append(kid)
                if value is None:
                    values_append(0)
                    has_append(0)
                else:
                    values_append(value)
                    has_append(1)
            self.op_offsets.append(len(self.op_kinds))
        except OverflowError as exc:
            raise ValueError(
                f"transaction T{txn_id} does not fit the columnar segment "
                f"format (ids and values are signed 64-bit, distinct keys "
                f"signed 32-bit): {exc}"
            ) from None
        except AttributeError:
            if isinstance(self.txn_ids, array):
                raise
            raise ValueError(
                "cannot append to a memory-mapped segment (loaded with "
                "mmap=True); use slice_rows() to derive a mutable copy"
            ) from None

    def append_row(
        self,
        txn_id: int,
        session_id: int,
        status_code: int,
        start_ts: Optional[float],
        finish_ts: Optional[float],
        kinds: List[int],
        keys: List[str],
        values: List[int],
    ) -> None:
        """Append one row from parallel op lists — the hottest accept path.

        Same contract as :meth:`append_raw` but takes the kinds/keys/values
        as three equal-length lists with every value present (collectors
        resolve reads to the observed value before recording), which lets
        the op columns grow by ``extend`` instead of a per-op loop.
        """
        try:
            self.txn_ids.append(txn_id)
            self.session_ids.append(session_id)
            self.statuses.append(status_code)
            self.start_ts.append(_NAN if start_ts is None else float(start_ts))
            self.finish_ts.append(_NAN if finish_ts is None else float(finish_ts))
            key_ids = self.key_ids
            try:
                ids = [key_ids[key] for key in keys]
            except KeyError:
                ids = [self.key_id(key) for key in keys]
            self.op_kinds.extend(kinds)
            self.op_keys.extend(ids)
            self.op_values.extend(values)
            self.op_has_value.extend(_ONES[: len(kinds)] if len(kinds) <= len(_ONES)
                                     else bytes(1 for _ in kinds))
            self.op_offsets.append(len(self.op_kinds))
        except OverflowError as exc:
            raise ValueError(
                f"transaction T{txn_id} does not fit the columnar segment "
                f"format (ids and values are signed 64-bit, distinct keys "
                f"signed 32-bit): {exc}"
            ) from None
        except AttributeError:
            if isinstance(self.txn_ids, array):
                raise
            raise ValueError(
                "cannot append to a memory-mapped segment (loaded with "
                "mmap=True); use slice_rows() to derive a mutable copy"
            ) from None

    def append(self, txn: Transaction) -> None:
        """Append one transaction as a new row (see :meth:`append_raw` for
        the failure contract; this is the object-accepting wrapper)."""
        self.append_raw(
            txn.txn_id,
            txn.session_id,
            STATUS_CODES[txn.status],
            txn.start_ts,
            txn.finish_ts,
            (
                (_WRITE if op.is_write else _READ, op.key, op.value)
                for op in txn.operations
            ),
        )

    __call__ = append

    # ------------------------------------------------------------------
    # Row materialisation (debug / legacy interop; not the hot path)
    # ------------------------------------------------------------------
    def transaction_at(self, row: int) -> Transaction:
        """Materialise one row as a :class:`Transaction`."""
        lo, hi = self.op_offsets[row], self.op_offsets[row + 1]
        key_names = self.key_names
        operations = [
            Operation(
                OpType.WRITE if kind else OpType.READ,
                key_names[kid],
                value if has else None,
            )
            for kind, kid, value, has in zip(
                self.op_kinds[lo:hi],
                self.op_keys[lo:hi],
                self.op_values[lo:hi],
                self.op_has_value[lo:hi],
            )
        ]
        start = self.start_ts[row]
        finish = self.finish_ts[row]
        return Transaction(
            txn_id=self.txn_ids[row],
            operations=operations,
            session_id=self.session_ids[row],
            status=STATUS_FROM_CODE[self.statuses[row]],
            start_ts=None if math.isnan(start) else start,
            finish_ts=None if math.isnan(finish) else finish,
        )

    def iter_transactions(self) -> Iterator[Transaction]:
        """Yield every row as a :class:`Transaction` (``⊥T`` first if present)."""
        for row in range(len(self.txn_ids)):
            yield self.transaction_at(row)

    def row_ops(self, row: int) -> Iterator[Tuple[int, int, Optional[int]]]:
        """Yield ``(kind, key_id, value)`` for one row (``None``-aware values)."""
        lo, hi = self.op_offsets[row], self.op_offsets[row + 1]
        for kind, kid, value, has in zip(
            self.op_kinds[lo:hi],
            self.op_keys[lo:hi],
            self.op_values[lo:hi],
            self.op_has_value[lo:hi],
        ):
            yield kind, kid, (value if has else None)

    def timestamps_at(self, row: int) -> Tuple[Optional[float], Optional[float]]:
        """``(start_ts, finish_ts)`` of one row, NaN decoded back to ``None``."""
        start = self.start_ts[row]
        finish = self.finish_ts[row]
        return (
            None if math.isnan(start) else start,
            None if math.isnan(finish) else finish,
        )

    # ------------------------------------------------------------------
    # History conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_history(cls, history: History) -> "ColumnarHistory":
        """Column-encode a history in canonical streaming arrival order."""
        from ..core.incremental import stream_order  # deferred: avoid cycle

        return cls.from_transactions(stream_order(history))

    @classmethod
    def from_transactions(cls, transactions: Iterable[Transaction]) -> "ColumnarHistory":
        """Column-encode transactions in the given (session-preserving) order."""
        cols = cls()
        for txn in transactions:
            cols.append(txn)
        return cols

    def to_history(self) -> History:
        """Materialise a :class:`History` (sessions ordered by session id).

        The inverse of :meth:`from_history` up to session-list ordering —
        exactly the convention of
        :func:`repro.history.serialization.load_history_jsonl`, so JSONL and
        segment loads of the same history are indistinguishable (both
        delegate to :func:`repro.core.model.history_from_stream`).
        """
        return history_from_stream(self.iter_transactions())

    # ------------------------------------------------------------------
    # Row slicing (shard construction)
    # ------------------------------------------------------------------
    def slice_rows(
        self,
        rows: Sequence[int],
        *,
        restrict_initial_keys: Optional[Iterable[str]] = None,
    ) -> "ColumnarHistory":
        """A new segment containing ``rows`` (in the given order).

        When ``restrict_initial_keys`` is set, the initial transaction's
        operations are filtered to those keys — the same restriction the
        object partitioner applies to each shard's ``⊥T``.
        """
        restrict = (
            None if restrict_initial_keys is None else set(restrict_initial_keys)
        )
        out = ColumnarHistory()
        key_names = self.key_names
        offsets = self.op_offsets
        for row in rows:
            out.txn_ids.append(self.txn_ids[row])
            out.session_ids.append(self.session_ids[row])
            out.statuses.append(self.statuses[row])
            out.start_ts.append(self.start_ts[row])
            out.finish_ts.append(self.finish_ts[row])
            initial_row = self.txn_ids[row] == INITIAL_TXN_ID
            for op in range(offsets[row], offsets[row + 1]):
                name = key_names[self.op_keys[op]]
                if initial_row and restrict is not None and name not in restrict:
                    continue
                out.op_kinds.append(self.op_kinds[op])
                out.op_keys.append(out.key_id(name))
                out.op_values.append(self.op_values[op])
                out.op_has_value.append(self.op_has_value[op])
            out.op_offsets.append(len(out.op_kinds))
        return out

    # ------------------------------------------------------------------
    # Wire format (process boundary)
    # ------------------------------------------------------------------
    def to_wire(self) -> WireColumns:
        """Flatten into compact picklable buffers (same-machine transfer)."""
        return (
            self.key_names,
            self.txn_ids.tobytes(),
            self.session_ids.tobytes(),
            self.statuses.tobytes(),
            self.start_ts.tobytes(),
            self.finish_ts.tobytes(),
            self.op_offsets.tobytes(),
            self.op_kinds.tobytes(),
            self.op_keys.tobytes(),
            self.op_values.tobytes(),
            self.op_has_value.tobytes(),
        )

    @classmethod
    def from_wire(cls, wire: WireColumns) -> "ColumnarHistory":
        cols = cls.__new__(cls)
        cols.key_names = list(wire[0])
        cols.key_ids = {name: kid for kid, name in enumerate(cols.key_names)}
        for slot, typecode, buf in zip(_COLUMN_SLOTS, _COLUMN_TYPECODES, wire[1:]):
            column = array(typecode)
            column.frombytes(buf)
            setattr(cols, slot, column)
        return cols

    # ------------------------------------------------------------------
    # Binary segment files
    # ------------------------------------------------------------------
    def save(
        self, path: Union[str, Path], *, compress: Optional[bool] = None
    ) -> None:
        """Write a binary segment file (gzip when ``compress`` or ``*.gz``).

        Layout: :data:`SEGMENT_MAGIC`, one JSON header line (format name,
        byte order, counts, key names, column manifest), then each column's
        raw bytes in manifest order.
        """
        if compress is None:
            compress = str(path).lower().endswith(".gz")
        columns = [getattr(self, slot) for slot in _COLUMN_SLOTS]
        header = {
            "format": SEGMENT_FORMAT,
            "byteorder": sys.byteorder,
            "transactions": self.num_transactions,
            "operations": self.num_operations,
            "key_names": self.key_names,
            "columns": [
                [slot, column.typecode, column.itemsize * len(column)]
                for slot, column in zip(_COLUMN_SLOTS, columns)
            ],
        }
        opener = gzip.open if compress else open
        with opener(path, "wb") as fh:
            fh.write(SEGMENT_MAGIC)
            fh.write(json.dumps(header, separators=(",", ":")).encode("utf-8"))
            fh.write(b"\n")
            for column in columns:
                fh.write(column.tobytes())
        fail_point("columnar.segment.write", path=path)

    @classmethod
    def load(
        cls, path: Union[str, Path], *, mmap: bool = False
    ) -> "ColumnarHistory":
        """Read a segment written by :meth:`save` (gzip auto-detected).

        With ``mmap=True`` an uncompressed native-byteorder segment is
        memory-mapped instead of copied: every column becomes a typed
        ``memoryview`` over one shared read-only mapping, so the load is
        O(header) regardless of segment size and concurrent readers of the
        same file share a single physical copy of the pages.  Mapped
        segments are read-only (``append`` raises ``ValueError``);
        ``slice_rows`` / ``to_wire`` / index construction all work
        unchanged.  Gzip segments and foreign-byteorder files silently fall
        back to the copying loader.
        """
        fail_point("columnar.segment.load", path=path)
        with open(path, "rb") as raw:
            if raw.read(2) == b"\x1f\x8b":  # gzip magic
                raw.seek(0)
                with gzip.open(raw, "rb") as fh:
                    return cls._read(fh, path)
            raw.seek(0)
            if mmap:
                mapped = cls._read_mapped(raw, path)
                if mapped is not None:
                    return mapped
                raw.seek(0)
            return cls._read(raw, path)

    @classmethod
    def _read(cls, fh: IO[bytes], path: Union[str, Path]) -> "ColumnarHistory":
        if fh.read(len(SEGMENT_MAGIC)) != SEGMENT_MAGIC:
            raise ValueError(f"{path}: not a {SEGMENT_FORMAT} segment file")
        header_line = fh.readline()
        try:
            header: Dict[str, Any] = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: corrupt segment header: {exc}") from None
        if header.get("format") != SEGMENT_FORMAT:
            raise ValueError(f"{path}: not a {SEGMENT_FORMAT} segment file")
        swap = header.get("byteorder", sys.byteorder) != sys.byteorder
        cols = cls.__new__(cls)
        cols.key_names = list(header.get("key_names", []))
        cols.key_ids = {name: kid for kid, name in enumerate(cols.key_names)}
        manifest = header.get("columns", [])
        by_name = {entry[0]: entry for entry in manifest}
        for slot, typecode in zip(_COLUMN_SLOTS, _COLUMN_TYPECODES):
            entry = by_name.get(slot)
            if entry is None:
                raise ValueError(f"{path}: segment missing column {slot!r}")
            _, stored_typecode, nbytes = entry
            column = array(stored_typecode)
            data = fh.read(nbytes)
            if len(data) != nbytes:
                raise ValueError(f"{path}: truncated segment column {slot!r}")
            column.frombytes(data)
            if swap:
                column.byteswap()
            if stored_typecode != typecode:
                column = array(typecode, column)
            setattr(cols, slot, column)
        if len(cols.op_offsets) != len(cols.txn_ids) + 1:
            raise ValueError(f"{path}: inconsistent segment offsets")
        return cols

    @classmethod
    def _read_mapped(
        cls, fh: IO[bytes], path: Union[str, Path]
    ) -> Optional["ColumnarHistory"]:
        """Zero-copy loader: typed memoryviews over one shared mapping.

        Returns ``None`` when the file cannot be mapped verbatim (foreign
        byte order or stored typecodes differing from the native layout) —
        the caller then falls back to :meth:`_read`.  Structural corruption
        (bad magic/header, truncated columns) raises ``ValueError`` exactly
        like the copying loader.
        """
        if fh.read(len(SEGMENT_MAGIC)) != SEGMENT_MAGIC:
            raise ValueError(f"{path}: not a {SEGMENT_FORMAT} segment file")
        header_line = fh.readline()
        try:
            header: Dict[str, Any] = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: corrupt segment header: {exc}") from None
        if header.get("format") != SEGMENT_FORMAT:
            raise ValueError(f"{path}: not a {SEGMENT_FORMAT} segment file")
        if header.get("byteorder", sys.byteorder) != sys.byteorder:
            return None
        data_start = fh.tell()
        by_name = {entry[0]: entry for entry in header.get("columns", [])}
        file_size = os.fstat(fh.fileno()).st_size
        mapping = _mmap_module.mmap(
            fh.fileno(), 0, access=_mmap_module.ACCESS_READ
        )
        view = memoryview(mapping)
        cols = cls.__new__(cls)
        cols.key_names = list(header.get("key_names", []))
        cols.key_ids = {name: kid for kid, name in enumerate(cols.key_names)}
        offset = data_start
        for slot, typecode in zip(_COLUMN_SLOTS, _COLUMN_TYPECODES):
            entry = by_name.get(slot)
            if entry is None:
                raise ValueError(f"{path}: segment missing column {slot!r}")
            _, stored_typecode, nbytes = entry
            if stored_typecode != typecode:
                return None
            if offset + nbytes > file_size:
                raise ValueError(f"{path}: truncated segment column {slot!r}")
            setattr(cols, slot, view[offset : offset + nbytes].cast(typecode))
            offset += nbytes
        if len(cols.op_offsets) != len(cols.txn_ids) + 1:
            raise ValueError(f"{path}: inconsistent segment offsets")
        # The column memoryviews keep ``mapping`` (and its kernel-side file
        # reference) alive; the fd opened by the caller may close freely.
        return cols


#: Column slots in (wire and file) manifest order, with their typecodes.
_COLUMN_SLOTS: Tuple[str, ...] = (
    "txn_ids",
    "session_ids",
    "statuses",
    "start_ts",
    "finish_ts",
    "op_offsets",
    "op_kinds",
    "op_keys",
    "op_values",
    "op_has_value",
)
_COLUMN_TYPECODES: Tuple[str, ...] = ("q", "q", "b", "d", "d", "q", "b", "i", "q", "b")


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------
def write_history_segment(
    history: History, path: Union[str, Path], *, compress: Optional[bool] = None
) -> None:
    """Write a complete history as a binary segment (canonical order)."""
    ColumnarHistory.from_history(history).save(path, compress=compress)


def load_history_segment(path: Union[str, Path]) -> ColumnarHistory:
    """Load a segment file into a :class:`ColumnarHistory`."""
    return ColumnarHistory.load(path)


class ColumnBuilder:
    """Reusable flat-column appender — the data plane's accept path.

    Wraps one growing :class:`ColumnarHistory` and exposes the two entry
    points every producer needs: :meth:`append_raw` for object-free flat
    rows (the async collector's hot path) and :meth:`append` for legacy
    :class:`Transaction` producers.  :class:`SegmentWriter` composes one of
    these for persistence; the async collector drains its backpressure
    queue into one directly, so no ``Transaction``/``Operation`` object is
    ever constructed between the adapter and the columns.
    """

    __slots__ = ("columns",)

    def __init__(self, columns: Optional[ColumnarHistory] = None) -> None:
        self.columns = columns if columns is not None else ColumnarHistory()

    def seed_initial(self, keys: Iterable[str], value: int = 0) -> None:
        """Install ``⊥T`` (one committed write of ``value`` per key) as the
        first row, without materialising the initial transaction."""
        self.columns.append_raw(
            INITIAL_TXN_ID,
            -1,
            STATUS_CODES[TransactionStatus.COMMITTED],
            None,
            None,
            ((_WRITE, key, value) for key in keys),
        )

    def append_raw(
        self,
        txn_id: int,
        session_id: int,
        status_code: int,
        start_ts: Optional[float],
        finish_ts: Optional[float],
        ops: Iterable[Tuple[int, str, Optional[int]]],
    ) -> None:
        """Append one flat row (see :meth:`ColumnarHistory.append_raw`)."""
        self.columns.append_raw(
            txn_id, session_id, status_code, start_ts, finish_ts, ops
        )

    def append_row(
        self,
        txn_id: int,
        session_id: int,
        status_code: int,
        start_ts: Optional[float],
        finish_ts: Optional[float],
        kinds: List[int],
        keys: List[str],
        values: List[int],
    ) -> None:
        """Append one parallel-lists row (see
        :meth:`ColumnarHistory.append_row`)."""
        self.columns.append_row(
            txn_id, session_id, status_code, start_ts, finish_ts,
            kinds, keys, values,
        )

    def append(self, txn: Transaction) -> None:
        """Append one materialised transaction."""
        self.columns.append(txn)

    __call__ = append

    @property
    def num_transactions(self) -> int:
        return self.columns.num_transactions

    @property
    def num_operations(self) -> int:
        return self.columns.num_operations


class SegmentWriter:
    """Collect transactions live and persist them as one segment on close.

    The columnar counterpart of
    :class:`~repro.history.serialization.HistoryStreamWriter`: usable as a
    context manager and directly as an ``on_transaction`` hook for the
    workload runner or the concurrent
    :class:`~repro.adapters.collector.Collector`.  Unlike the JSONL writer
    the segment is written atomically at close (columns are not a tailable
    format — pair with a JSONL stream when live followers are needed).

    Example:
        >>> import tempfile, os
        >>> from repro import Transaction, read, write
        >>> path = os.path.join(tempfile.mkdtemp(), "history.seg")
        >>> with SegmentWriter(path, initial_keys=["x"]) as writer:
        ...     writer.write(Transaction(1, [read("x", 0), write("x", 1)]))
        >>> ColumnarHistory.load(path).num_transactions
        2
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        initial_transaction: Optional[Transaction] = None,
        initial_keys: Optional[Iterable[str]] = None,
        compress: Optional[bool] = None,
    ) -> None:
        self.path = Path(path)
        self._builder = ColumnBuilder()
        self.columns = self._builder.columns
        self._compress = compress
        self._closed = False
        if initial_transaction is not None:
            self._builder.append(initial_transaction)
        elif initial_keys is not None:
            self._builder.seed_initial(initial_keys)

    def write(self, txn: Transaction) -> None:
        """Append one transaction to the in-memory segment."""
        self._builder.append(txn)

    __call__ = write

    def append_raw(
        self,
        txn_id: int,
        session_id: int,
        status_code: int,
        start_ts: Optional[float],
        finish_ts: Optional[float],
        ops: Iterable[Tuple[int, str, Optional[int]]],
    ) -> None:
        """Append one flat row without materialising a transaction — lets
        object-free producers (the async collector's drain task) stream
        into a segment with zero object overhead."""
        self._builder.append_raw(
            txn_id, session_id, status_code, start_ts, finish_ts, ops
        )

    def close(self) -> None:
        """Persist the segment (idempotent)."""
        if not self._closed:
            self.columns.save(self.path, compress=self._compress)
            self._closed = True
            if obs.enabled():
                obs.inc(
                    "repro_segment_rows_written_total",
                    self.columns.num_transactions,
                )
                try:
                    obs.inc(
                        "repro_segment_bytes_written_total",
                        os.path.getsize(self.path),
                    )
                except OSError:
                    pass

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
