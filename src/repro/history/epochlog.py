"""Durable epoch log: a crash-safe, resumable multi-segment history store.

A single ``.seg`` segment (:mod:`repro.history.columnar`) is written
atomically at close — perfect for archived histories, useless for an
always-on verification service that must survive restarts.  The epoch log
promotes the segment to a *directory*:

* ``epoch-NNNNN.seg`` (optionally ``.seg.gz``) — immutable columnar
  segments of ``epoch_transactions`` rows each, sealed atomically
  (written to a temp file, fsynced, renamed into place);
* ``MANIFEST.json`` — the commit record: one entry per sealed epoch with
  its row/operation counts, transaction-id range, CRC-32, and byte size.
  The manifest is replaced atomically after each seal, so a reader never
  observes a half-written log: an epoch is *sealed* exactly when its
  manifest entry lands;
* ``checkpoint-NNNNN.ckpt`` — verifier-side snapshots of
  :meth:`repro.core.incremental.IncrementalChecker.checkpoint`, CRC-framed
  and gzip-compressed, so a restarted verifier resumes mid-log instead of
  replaying from epoch 0;
* ``RETIRED`` — the window-GC watermark: epochs up to this number have
  been ingested, checkpointed, and aged out of the verifier's bounded
  window, and their files may be deleted.

Recovery is *prefix-based*: :meth:`EpochLog.open` accepts the longest
prefix of epochs that exists, has the recorded size, and (on load) matches
its CRC.  A writer killed at any byte offset therefore loses at most the
epoch it was buffering — never a sealed one.  An epoch file sealed on disk
whose manifest update did not land (the one-crash window between the two
renames) is adopted back by reading the file itself; a torn or missing
manifest is rebuilt the same way.  Checkpoints are independent of this:
a half-written checkpoint simply fails its CRC and the previous one is
used (the newest two are kept).

The reader memory-maps epoch files by default
(:meth:`~repro.history.columnar.ColumnarHistory.load` with ``mmap=True``),
so following a 100k-transaction log costs O(epochs) header parses, not
O(bytes) copies, and concurrent verifier processes share one physical copy
of every epoch.
"""

from __future__ import annotations

import gzip
import json
import os
import time
import zlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .. import obs
from ..core.model import INITIAL_TXN_ID, Transaction, make_initial_transaction
from ..resilience.failpoints import fail_point
from .columnar import ColumnarHistory

if TYPE_CHECKING:
    from ..core.index import HistoryIndex

__all__ = [
    "EpochInfo",
    "EpochLog",
    "EpochLogError",
    "EpochLogWriter",
    "CheckpointInfo",
    "is_epochlog_path",
    "MANIFEST_NAME",
    "RETIRED_NAME",
    "EPOCHLOG_FORMAT",
    "INDEX_CACHE_NAME",
]

EPOCHLOG_FORMAT = "repro-epoch-log-v1"
CHECKPOINT_FILE_FORMAT = "repro-epoch-checkpoint-v1"
MANIFEST_NAME = "MANIFEST.json"
RETIRED_NAME = "RETIRED"
#: Serialized batch HistoryIndex cached beside the epochs (CRC-stamped
#: against the manifest fingerprint; see :meth:`EpochLog.cached_index`).
INDEX_CACHE_NAME = "INDEX.cache"
CHECKPOINT_MAGIC = b"REPROCKPT1\n"
_EPOCH_PREFIX = "epoch-"
_EPOCH_DIGITS = 5
#: Checkpoints retained per log: the newest plus one fallback, so a crash
#: mid-checkpoint-write never strands the verifier without a valid one.
_CHECKPOINTS_KEPT = 2


class EpochLogError(ValueError):
    """An epoch log directory is unusable for the requested operation."""


def is_epochlog_path(path: Union[str, Path]) -> bool:
    """Whether ``path`` denotes an epoch-log directory.

    True for the conventional ``*.epochs`` suffix (even before the
    directory exists — output paths) and for any existing directory.
    """
    p = Path(path)
    return p.name.lower().endswith(".epochs") or p.is_dir()


@dataclass(frozen=True)
class EpochInfo:
    """Manifest record of one sealed epoch segment."""

    epoch: int
    name: str
    transactions: int
    operations: int
    min_txn_id: int
    max_txn_id: int
    crc32: int
    size_bytes: int
    #: Dropped by window GC: the file may no longer exist on disk.
    retired: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "name": self.name,
            "transactions": self.transactions,
            "operations": self.operations,
            "min_txn_id": self.min_txn_id,
            "max_txn_id": self.max_txn_id,
            "crc32": self.crc32,
            "size_bytes": self.size_bytes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EpochInfo":
        return cls(
            epoch=int(data["epoch"]),
            name=str(data["name"]),
            transactions=int(data["transactions"]),
            operations=int(data["operations"]),
            min_txn_id=int(data["min_txn_id"]),
            max_txn_id=int(data["max_txn_id"]),
            crc32=int(data["crc32"]),
            size_bytes=int(data["size_bytes"]),
        )


@dataclass(frozen=True)
class CheckpointInfo:
    """A decoded verifier checkpoint: stream position plus checker state."""

    #: Epochs fully ingested when the snapshot was taken (resume point).
    epochs: int
    #: Committed transactions ingested at snapshot time (reporting only).
    transactions: int
    path: Path
    #: The :meth:`IncrementalChecker.checkpoint` state dictionary.
    state: Dict[str, Any]


# ----------------------------------------------------------------------
# Shared low-level helpers
# ----------------------------------------------------------------------
def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp file + fsync + rename."""
    tmp = path.with_name(f".{path.name}.tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _sweep_stale_tmp(directory: Path) -> int:
    """Remove orphaned ``.*.tmp`` files left by a crash mid-seal.

    Every atomic write in the log uses a ``.{name}.tmp`` staging file; a
    writer killed between the write and the rename strands it.  Stranded
    temp files are never part of the recoverable prefix (recovery only
    reads published names), so the only question is hygiene: without this
    sweep they accumulate forever.  Called from crash-recovery entry
    points only (:meth:`EpochLog.open`, :class:`EpochLogWriter`), never
    from :meth:`EpochLog.refresh` — a live follower must not race a
    concurrent writer's in-flight staging file.
    """
    swept = 0
    for tmp in directory.glob(".*.tmp"):
        try:
            tmp.unlink()
            swept += 1
        except OSError:
            pass  # concurrent sweep or permissions: hygiene is best-effort
    if swept:
        obs.inc("repro_epochlog_tmp_swept_total", swept)
    return swept


def _file_crc_and_size(path: Path) -> Tuple[int, int]:
    crc = 0
    size = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
            size += len(chunk)
    return crc, size


def _epoch_file_names(epoch: int) -> Tuple[str, str]:
    base = f"{_EPOCH_PREFIX}{epoch:0{_EPOCH_DIGITS}d}.seg"
    return base, base + ".gz"


def _entry_from_file(directory: Path, epoch: int, name: str) -> EpochInfo:
    """Rebuild a manifest entry by reading the epoch file itself.

    Raises ``ValueError`` when the file is torn/corrupt — the caller treats
    that as the end of the recoverable prefix.
    """
    path = directory / name
    segment = ColumnarHistory.load(path)  # validates structure
    crc, size = _file_crc_and_size(path)
    txn_ids = segment.txn_ids
    return EpochInfo(
        epoch=epoch,
        name=name,
        transactions=segment.num_transactions,
        operations=segment.num_operations,
        min_txn_id=min(txn_ids),
        max_txn_id=max(txn_ids),
        crc32=crc,
        size_bytes=size,
    )


def _read_retired(directory: Path) -> int:
    """The retirement watermark (epoch number), or ``-1`` when absent/torn."""
    try:
        return int((directory / RETIRED_NAME).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return -1


def _read_manifest_entries(directory: Path) -> Optional[List[EpochInfo]]:
    """Manifest entries as recorded, or ``None`` when missing/torn."""
    try:
        raw = (directory / MANIFEST_NAME).read_text(encoding="utf-8")
        data = json.loads(raw)
        if not isinstance(data, dict) or data.get("format") != EPOCHLOG_FORMAT:
            return None
        return [EpochInfo.from_dict(entry) for entry in data.get("epochs", [])]
    except (OSError, ValueError, KeyError, TypeError):
        return None


def _write_manifest(directory: Path, entries: Iterable[EpochInfo]) -> None:
    payload = {
        "format": EPOCHLOG_FORMAT,
        "epochs": [entry.to_dict() for entry in entries],
    }
    fail_point("epochlog.manifest.commit", path=directory / MANIFEST_NAME)
    _atomic_write(
        directory / MANIFEST_NAME,
        json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n",
    )


def _recover_entries(directory: Path, retired_through: int) -> List[EpochInfo]:
    """The longest valid epoch prefix of ``directory``.

    Starts from the manifest (rebuilding it from the files on disk when
    missing or torn), drops any suffix whose files are missing or
    truncated, and adopts contiguous sealed-but-unrecorded epoch files
    beyond the manifest.  Epochs at or below ``retired_through`` are
    accepted without their files (window GC deleted them).
    """
    recorded = _read_manifest_entries(directory)
    accepted: List[EpochInfo] = []

    if recorded is not None:
        for position, entry in enumerate(recorded):
            if entry.epoch != position:
                break  # malformed manifest: non-contiguous numbering
            if entry.epoch <= retired_through:
                accepted.append(replace(entry, retired=True))
                continue
            path = directory / entry.name
            try:
                if os.stat(path).st_size != entry.size_bytes:
                    break  # torn epoch file (partial write surfaced)
            except OSError:
                break  # sealed epoch file missing without retirement
            accepted.append(entry)

    # Adopt epoch files sealed on disk whose manifest entry never landed
    # (writer killed between the segment rename and the manifest rename),
    # or rebuild the whole list when the manifest itself was lost.
    while True:
        nxt = len(accepted)
        raw_name, gz_name = _epoch_file_names(nxt)
        name = None
        if (directory / raw_name).exists():
            name = raw_name
        elif (directory / gz_name).exists():
            name = gz_name
        if name is None:
            break
        try:
            accepted.append(_entry_from_file(directory, nxt, name))
        except (OSError, ValueError, EOFError, zlib.error):
            # Torn orphan (gzip truncation surfaces as EOFError/zlib.error):
            # not sealed, the buffered epoch died with the writer.
            break
    return accepted


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
class EpochLogWriter:
    """Append transactions; seal immutable epoch segments as they fill.

    The durable counterpart of
    :class:`~repro.history.columnar.SegmentWriter`: instead of one segment
    written at close, transactions are buffered in memory and flushed as an
    ``epoch-NNNNN.seg`` file every ``epoch_transactions`` rows (plus a
    final partial epoch at :meth:`close`).  Each seal is atomic — segment
    temp-file rename, then manifest rename — so a crash at any byte offset
    loses only the unsealed buffer.

    Opening an existing log directory *appends* to it: recovery first
    accepts the longest valid epoch prefix (adopting sealed files whose
    manifest entry was lost) and rewrites the manifest to match.

    Usable directly as an ``on_transaction`` hook (it is callable), like
    every other history sink in the package.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        epoch_transactions: int = 1024,
        compress: bool = False,
        initial_transaction: Optional[Transaction] = None,
        initial_keys: Optional[Iterable[str]] = None,
    ) -> None:
        if epoch_transactions < 1:
            raise ValueError("epoch_transactions must be a positive row count")
        self.directory = Path(directory)
        self.epoch_transactions = epoch_transactions
        self.compress = compress
        self._closed = False
        self.directory.mkdir(parents=True, exist_ok=True)
        _sweep_stale_tmp(self.directory)

        self._entries = _recover_entries(
            self.directory, _read_retired(self.directory)
        )
        _write_manifest(self.directory, self._entries)

        self._buffer = ColumnarHistory()
        if initial_transaction is None and initial_keys is not None:
            initial_transaction = make_initial_transaction(initial_keys)
        if initial_transaction is not None and not self._entries:
            self._buffer.append(initial_transaction)

    @property
    def epochs_sealed(self) -> int:
        return len(self._entries)

    def append(self, txn: Transaction) -> None:
        """Buffer one transaction; seal an epoch when the buffer fills."""
        if self._closed:
            raise ValueError("epoch log writer is closed")
        self._buffer.append(txn)
        if self._buffer.num_transactions >= self.epoch_transactions:
            self.seal()

    __call__ = append

    def seal(self) -> Optional[EpochInfo]:
        """Flush the buffered rows as one epoch (no-op on an empty buffer).

        The epoch becomes durable in two ordered renames: segment file
        first, manifest second.  Readers treat the manifest as the commit
        record and adopt the file-without-entry state on recovery, so a
        crash between the renames is indistinguishable from one after.
        """
        if self._buffer.num_transactions == 0:
            return None
        seal_started = time.perf_counter()
        epoch = len(self._entries)
        raw_name, gz_name = _epoch_file_names(epoch)
        name = gz_name if self.compress else raw_name
        path = self.directory / name
        tmp = self.directory / f".{name}.tmp"
        self._buffer.save(tmp, compress=self.compress)
        fail_point("epochlog.seal.tmp_write", path=tmp)
        fsync_started = time.perf_counter()
        fail_point("epochlog.seal.fsync", path=tmp)
        with open(tmp, "rb") as fh:
            os.fsync(fh.fileno())
        obs.observe(
            "repro_epochlog_fsync_seconds", time.perf_counter() - fsync_started
        )
        crc, size = _file_crc_and_size(tmp)
        fail_point("epochlog.seal.rename", path=tmp)
        os.replace(tmp, path)
        txn_ids = self._buffer.txn_ids
        entry = EpochInfo(
            epoch=epoch,
            name=name,
            transactions=self._buffer.num_transactions,
            operations=self._buffer.num_operations,
            min_txn_id=min(txn_ids),
            max_txn_id=max(txn_ids),
            crc32=crc,
            size_bytes=size,
        )
        self._entries.append(entry)
        _write_manifest(self.directory, self._entries)
        self._buffer = ColumnarHistory()
        obs.inc("repro_epochlog_epochs_sealed_total")
        obs.inc("repro_epochlog_txns_sealed_total", entry.transactions)
        obs.inc("repro_epochlog_bytes_written_total", entry.size_bytes)
        obs.observe(
            "repro_epochlog_seal_seconds", time.perf_counter() - seal_started
        )
        return entry

    def close(self) -> None:
        """Seal any buffered rows and mark the writer closed (idempotent)."""
        if not self._closed:
            self.seal()
            self._closed = True

    def __enter__(self) -> "EpochLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
class EpochLog:
    """Read-side view of an epoch log directory: epochs + checkpoints.

    :meth:`open` performs crash recovery (longest-valid-prefix, see the
    module docstring); :meth:`refresh` re-reads the manifest so a live
    follower picks up epochs a concurrent writer seals.  Epoch segments
    load memory-mapped by default.  The checkpoint methods store and
    recover verifier snapshots inside the same directory — the epoch log
    is the one durable artefact a verification service needs.
    """

    def __init__(self, directory: Path, entries: List[EpochInfo], retired: int):
        self.directory = directory
        self.epochs = entries
        self.retired_through = retired

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "EpochLog":
        """Open ``directory``, recovering the longest valid epoch prefix.

        Raises :class:`EpochLogError` when the directory does not exist
        (or is a file); an empty or not-yet-populated directory opens as a
        zero-epoch log that :meth:`refresh` can follow.
        """
        path = Path(directory)
        if not path.is_dir():
            raise EpochLogError(f"{path}: not an epoch log directory")
        # Crash recovery includes hygiene: a writer killed mid-seal strands
        # its ``.*.tmp`` staging file, which no future seal will ever reuse.
        _sweep_stale_tmp(path)
        retired = _read_retired(path)
        return cls(path, _recover_entries(path, retired), retired)

    def __len__(self) -> int:
        return len(self.epochs)

    @property
    def num_transactions(self) -> int:
        """Total rows across sealed epochs (``⊥T`` included when present)."""
        return sum(entry.transactions for entry in self.epochs)

    def refresh(self) -> List[EpochInfo]:
        """Pick up newly sealed epochs; return the new entries.

        Raises :class:`EpochLogError` when the directory disappeared or
        the log regressed (fewer or different epochs than already seen) —
        both mean the follower's position is no longer meaningful.
        """
        if not self.directory.is_dir():
            raise EpochLogError(
                f"{self.directory}: epoch log disappeared while following"
            )
        retired = _read_retired(self.directory)
        entries = _recover_entries(self.directory, retired)
        if len(entries) < len(self.epochs):
            raise EpochLogError(
                f"{self.directory}: epoch log regressed from "
                f"{len(self.epochs)} to {len(entries)} epochs"
            )
        for old, new in zip(self.epochs, entries):
            if (old.name, old.crc32) != (new.name, new.crc32) and not new.retired:
                raise EpochLogError(
                    f"{self.directory}: sealed epoch {old.epoch} changed on disk"
                )
        fresh = entries[len(self.epochs):]
        self.epochs = entries
        self.retired_through = retired
        return fresh

    def load_epoch(
        self,
        info: Union[int, EpochInfo],
        *,
        mmap: bool = True,
        verify: bool = True,
    ) -> ColumnarHistory:
        """Load one epoch segment (memory-mapped unless ``mmap=False``).

        ``verify=True`` checks size and CRC-32 against the manifest entry
        first, so silent on-disk corruption surfaces as
        :class:`EpochLogError` instead of a wrong verdict.
        """
        entry = self.epochs[info] if isinstance(info, int) else info
        if entry.retired:
            raise EpochLogError(
                f"{self.directory}: epoch {entry.epoch} was retired by window "
                f"GC; resume from a checkpoint past it"
            )
        path = self.directory / entry.name
        if verify:
            try:
                crc, size = _file_crc_and_size(path)
            except OSError as exc:
                raise EpochLogError(
                    f"{self.directory}: epoch {entry.epoch} unreadable: {exc}"
                ) from None
            if (crc, size) != (entry.crc32, entry.size_bytes):
                raise EpochLogError(
                    f"{self.directory}: epoch {entry.epoch} fails its checksum "
                    f"(file {entry.name} corrupted on disk)"
                )
        obs.inc("repro_epochlog_epochs_loaded_total")
        return ColumnarHistory.load(path, mmap=mmap)

    def iter_segments(
        self, start_epoch: int = 0, *, mmap: bool = True, verify: bool = True
    ) -> Iterator[Tuple[EpochInfo, ColumnarHistory]]:
        """Yield ``(entry, segment)`` for every epoch from ``start_epoch``."""
        for entry in self.epochs[start_epoch:]:
            yield entry, self.load_epoch(entry, mmap=mmap, verify=verify)

    def to_columns(
        self, *, mmap: bool = True, verify: bool = True
    ) -> ColumnarHistory:
        """Concatenate every live epoch into one in-memory segment.

        The batch-check entry point: key ids are re-interned across
        epochs, so the result is indistinguishable from a single segment
        written over the whole history.  Raises :class:`EpochLogError`
        when retired epochs make the full history unrecoverable.
        """
        out = ColumnarHistory()
        for entry in self.epochs:
            segment = self.load_epoch(entry, mmap=mmap, verify=verify)
            base = len(out.op_kinds)
            remap = [out.key_id(name) for name in segment.key_names]
            out.txn_ids.extend(segment.txn_ids)
            out.session_ids.extend(segment.session_ids)
            out.statuses.extend(segment.statuses)
            out.start_ts.extend(segment.start_ts)
            out.finish_ts.extend(segment.finish_ts)
            for offset in segment.op_offsets[1:]:
                out.op_offsets.append(base + offset)
            for kid in segment.op_keys:
                out.op_keys.append(remap[kid])
            out.op_kinds.extend(segment.op_kinds)
            out.op_values.extend(segment.op_values)
            out.op_has_value.extend(segment.op_has_value)
        return out

    # ------------------------------------------------------------------
    # Cached batch index (scale-out: skip from_columns on re-checks)
    # ------------------------------------------------------------------
    def index_cache_path(self) -> Path:
        """Where the serialized batch :class:`HistoryIndex` lives."""
        return self.directory / INDEX_CACHE_NAME

    def index_fingerprint(self) -> Dict[str, Any]:
        """What the cached index must have been built from to be served.

        Derived entirely from the manifest: the live epoch set, the
        transaction totals, the covered txn-id range, and every epoch
        file's CRC.  Appending (or retiring, or rewriting) an epoch
        changes the fingerprint, so a stale ``INDEX.cache`` is silently
        ignored rather than ever returning a verdict for the wrong
        history.
        """
        return {
            "epochs": [e.epoch for e in self.epochs],
            "transactions": self.num_transactions,
            "min_txn_id": min((e.min_txn_id for e in self.epochs), default=0),
            "max_txn_id": max((e.max_txn_id for e in self.epochs), default=0),
            "crcs": [e.crc32 for e in self.epochs],
        }

    def cached_index(self, columns: ColumnarHistory) -> Optional["HistoryIndex"]:
        """Rehydrate the cached batch index for ``columns``, if still valid.

        ``columns`` must be the :meth:`to_columns` concatenation of the
        current epoch set (the cache stores row numbers into it).  Returns
        ``None`` — never raises — on any mismatch or corruption.
        """
        from ..core.index import HistoryIndex

        return HistoryIndex.load_cache(
            self.index_cache_path(),
            fingerprint=self.index_fingerprint(),
            columns=columns,
        )

    def cache_index(self, index: "HistoryIndex") -> Optional[Path]:
        """Persist ``index`` beside the epochs, stamped with the fingerprint.

        Best-effort: a read-only directory simply means the next check
        rebuilds the index, so write failures are swallowed.
        """
        path = self.index_cache_path()
        try:
            index.save_cache(path, fingerprint=self.index_fingerprint())
        except OSError:
            return None
        return path

    # ------------------------------------------------------------------
    # Verifier checkpoints
    # ------------------------------------------------------------------
    def save_checkpoint(
        self, state: Dict[str, Any], *, epochs: int, transactions: int
    ) -> Path:
        """Persist a verifier snapshot taken after ``epochs`` whole epochs.

        The file is CRC-framed (a half-written checkpoint fails
        validation and is skipped by :meth:`latest_checkpoint`), written
        atomically, and the newest two checkpoints are kept.
        """
        write_started = time.perf_counter()
        payload = gzip.compress(
            json.dumps(
                {"epochs": epochs, "transactions": transactions, "state": state},
                separators=(",", ":"),
            ).encode("utf-8"),
            mtime=0,
        )
        header = json.dumps(
            {
                "format": CHECKPOINT_FILE_FORMAT,
                "epochs": epochs,
                "transactions": transactions,
                "crc32": zlib.crc32(payload),
                "payload_bytes": len(payload),
            },
            separators=(",", ":"),
        ).encode("utf-8")
        path = self.directory / f"checkpoint-{epochs:0{_EPOCH_DIGITS}d}.ckpt"
        fail_point("epochlog.checkpoint.save", path=path)
        _atomic_write(path, CHECKPOINT_MAGIC + header + b"\n" + payload)
        for stale in self._checkpoint_paths()[:-_CHECKPOINTS_KEPT]:
            try:
                stale.unlink()
            except OSError:
                pass
        obs.observe(
            "repro_epochlog_checkpoint_write_seconds",
            time.perf_counter() - write_started,
        )
        return path

    def _checkpoint_paths(self) -> List[Path]:
        return sorted(self.directory.glob("checkpoint-*.ckpt"))

    def latest_checkpoint(self) -> Optional[CheckpointInfo]:
        """The newest checkpoint that validates, or ``None``.

        Torn or corrupt checkpoint files are skipped (never fatal): the
        fallback copy kept by :meth:`save_checkpoint` takes over, and with
        no valid checkpoint at all the verifier replays from epoch 0.
        """
        for path in reversed(self._checkpoint_paths()):
            decoded = self._decode_checkpoint(path)
            if decoded is not None:
                return decoded
        return None

    @staticmethod
    def _decode_checkpoint(path: Path) -> Optional[CheckpointInfo]:
        try:
            blob = path.read_bytes()
            if not blob.startswith(CHECKPOINT_MAGIC):
                return None
            rest = blob[len(CHECKPOINT_MAGIC):]
            header_line, _, payload = rest.partition(b"\n")
            header = json.loads(header_line)
            if header.get("format") != CHECKPOINT_FILE_FORMAT:
                return None
            if len(payload) != header["payload_bytes"]:
                return None
            if zlib.crc32(payload) != header["crc32"]:
                return None
            body = json.loads(gzip.decompress(payload))
            return CheckpointInfo(
                epochs=int(body["epochs"]),
                transactions=int(body["transactions"]),
                path=path,
                state=body["state"],
            )
        except (OSError, ValueError, KeyError, TypeError, EOFError):
            return None

    # ------------------------------------------------------------------
    # Window-GC retirement
    # ------------------------------------------------------------------
    def retire_through(self, epoch: int) -> int:
        """Drop epoch files up to ``epoch`` (inclusive); return count removed.

        Writes the ``RETIRED`` watermark first (atomically), then unlinks
        the files — so a crash between the two leaves files that are
        simply re-deleted on the next retirement pass, never a watermark
        claiming files that are still needed.  Only meaningful for a
        verifier running with a bounded window **and** checkpoints: a
        restart without a checkpoint past the watermark cannot replay.
        """
        if epoch < 0 or epoch >= len(self.epochs):
            raise ValueError(f"epoch {epoch} not sealed (have {len(self.epochs)})")
        if epoch <= self.retired_through:
            return 0
        _atomic_write(
            self.directory / RETIRED_NAME, f"{epoch}\n".encode("utf-8")
        )
        removed = 0
        for position in range(self.retired_through + 1, epoch + 1):
            entry = self.epochs[position]
            try:
                (self.directory / entry.name).unlink()
                removed += 1
            except OSError:
                pass
            self.epochs[position] = replace(entry, retired=True)
        self.retired_through = epoch
        return removed
