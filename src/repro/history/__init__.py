"""History persistence: JSON documents, streaming JSONL, columnar segments.

Four formats, one data model:

* ``*.json`` — a single JSON document (archival);
* ``*.jsonl`` / ``*.ndjson`` (optionally ``.gz``) — a line-oriented stream
  (live tailing, interchange, debugging);
* ``*.seg`` (optionally ``.gz``) — a binary columnar segment
  (:mod:`repro.history.columnar`), the zero-copy fast path into the
  checker;
* ``*.epochs/`` — a durable epoch-log directory
  (:mod:`repro.history.epochlog`): crash-safe multi-segment storage with
  a manifest, verifier checkpoints, and window-GC retirement — the
  substrate of the resumable verification service.

``repro convert`` moves histories losslessly between all of them.
"""

from .columnar import (
    OP_READ,
    OP_WRITE,
    ColumnarHistory,
    ColumnBuilder,
    SegmentWriter,
    is_segment_path,
    load_history_segment,
    write_history_segment,
)
from .epochlog import (
    CheckpointInfo,
    EpochInfo,
    EpochLog,
    EpochLogError,
    EpochLogWriter,
    is_epochlog_path,
)
from .serialization import (
    HistoryStreamWriter,
    history_from_dict,
    history_to_dict,
    is_stream_path,
    iter_history_jsonl,
    load_history,
    load_history_jsonl,
    load_lwt_history,
    lwt_history_from_dict,
    lwt_history_to_dict,
    open_history_stream,
    parse_stream_header,
    save_history,
    save_lwt_history,
    transaction_from_dict,
    transaction_to_dict,
    write_history_jsonl,
)

__all__ = [
    "CheckpointInfo",
    "ColumnarHistory",
    "ColumnBuilder",
    "OP_READ",
    "OP_WRITE",
    "EpochInfo",
    "EpochLog",
    "EpochLogError",
    "EpochLogWriter",
    "SegmentWriter",
    "HistoryStreamWriter",
    "is_epochlog_path",
    "history_from_dict",
    "history_to_dict",
    "is_segment_path",
    "is_stream_path",
    "iter_history_jsonl",
    "load_history",
    "load_history_jsonl",
    "load_history_segment",
    "load_lwt_history",
    "lwt_history_from_dict",
    "lwt_history_to_dict",
    "open_history_stream",
    "parse_stream_header",
    "save_history",
    "save_lwt_history",
    "transaction_from_dict",
    "transaction_to_dict",
    "write_history_jsonl",
    "write_history_segment",
]
