"""History persistence: JSON documents and streaming JSONL histories."""

from .serialization import (
    HistoryStreamWriter,
    history_from_dict,
    history_to_dict,
    is_stream_path,
    iter_history_jsonl,
    load_history,
    load_history_jsonl,
    load_lwt_history,
    lwt_history_from_dict,
    lwt_history_to_dict,
    parse_stream_header,
    save_history,
    save_lwt_history,
    transaction_from_dict,
    transaction_to_dict,
    write_history_jsonl,
)

__all__ = [
    "HistoryStreamWriter",
    "history_from_dict",
    "history_to_dict",
    "is_stream_path",
    "iter_history_jsonl",
    "load_history",
    "load_history_jsonl",
    "load_lwt_history",
    "lwt_history_from_dict",
    "lwt_history_to_dict",
    "parse_stream_header",
    "save_history",
    "save_lwt_history",
    "transaction_from_dict",
    "transaction_to_dict",
    "write_history_jsonl",
]
