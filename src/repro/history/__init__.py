"""History persistence utilities (JSON serialization of recorded histories)."""

from .serialization import (
    history_from_dict,
    history_to_dict,
    load_history,
    load_lwt_history,
    lwt_history_from_dict,
    lwt_history_to_dict,
    save_history,
    save_lwt_history,
)

__all__ = [
    "history_from_dict",
    "history_to_dict",
    "load_history",
    "load_lwt_history",
    "lwt_history_from_dict",
    "lwt_history_to_dict",
    "save_history",
    "save_lwt_history",
]
