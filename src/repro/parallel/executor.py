"""Multiprocessing fan-out over history shards.

:func:`check_parallel` is the parallel counterpart of the serial
``check_ser`` / ``check_si`` / ``check_sser`` pipeline:

1. partition the history into key-connected shards
   (:mod:`repro.parallel.partition`);
2. check every shard independently — in ``workers`` OS processes when
   ``workers > 1``, inline otherwise (shard order and per-shard work are
   identical either way, so worker counts never change the result);
3. merge the shard verdicts (:mod:`repro.parallel.merge`); SSER
   additionally reassembles the shard graphs under the global real-time
   order, which is the one relation that crosses shard boundaries.

Shards cross the process boundary as **columnar wire buffers**
(:meth:`~repro.history.columnar.ColumnarHistory.to_wire`): a handful of raw
``array`` byte strings per shard instead of a pickled object graph of
``Transaction``/``Operation`` instances.  Workers rebuild their index with
:meth:`~repro.core.index.HistoryIndex.from_columns`, so a shard check never
materialises per-transaction Python objects on the accept path — the
instrumentation test in ``tests/test_columnar.py`` asserts no ``Transaction``
is ever pickled.

Invariant: **sharded verdicts equal serial verdicts on every history** —
the randomized equivalence suites (``tests/test_parallel.py``,
``tests/test_columnar.py``) enforce it across SER/SI/SSER, every simulated
engine, and injected faults.

The pool is a best-effort optimisation: environments where processes
cannot be spawned (sandboxes, restricted containers) transparently fall
back to inline execution.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..core.checkers import (
    GRAPH_CHECKED_LEVELS,
    check_ser,
    check_si,
    check_sser,
    raise_if_not_mt,
)
from ..core.graph import build_dependency
from ..core.index import HistoryIndex
from ..core.model import History
from ..core.result import CheckResult, IsolationLevel
from ..history.columnar import ColumnarHistory, WireColumns
from .merge import (
    ShardOutcome,
    merge_shard_results,
    merge_sser_csr,
    merge_sser_graphs,
    serialize_edges,
)
from .partition import DEFAULT_MAX_SHARDS, Shard, partition_columns, partition_history

__all__ = ["check_parallel", "make_payload"]

#: Segment-reference payload body: workers memory-map ``path`` themselves
#: and slice their rows locally, so N workers share one physical copy of
#: the segment (OS page cache) and the parent pickles only row numbers.
_SegRef = Tuple[str, str, List[int], List[str]]

#: One shard task shipped to a worker process: the shard's columnar wire
#: buffers — or a :data:`_SegRef` into an mmap-able segment file — plus the
#: check configuration.  Contains no ``Transaction``s either way.
_Payload = Tuple[int, Union[WireColumns, _SegRef], IsolationLevel, bool, bool]


def check_parallel(
    history: Optional[History],
    level: IsolationLevel,
    *,
    workers: int = 1,
    strict_mt: bool = False,
    transitive_ww: bool = False,
    index: Optional[HistoryIndex] = None,
    max_shards: Optional[int] = DEFAULT_MAX_SHARDS,
    dense: bool = True,
    columns: Optional[ColumnarHistory] = None,
    source_path: Optional[Union[str, Path]] = None,
) -> CheckResult:
    """Verify a history against ``level`` via the sharded pipeline.

    Args:
        history: the MT history to verify — or ``None`` when ``columns``
            carries the history in columnar form.
        level: SER, SI, SSER, or LIN (checked as SSER on plain histories).
        workers: number of OS processes to fan shard checks out over;
            ``1`` runs the same shard checks inline (identical result).
        strict_mt: validate the history against Definition 9 up front and
            raise :class:`~repro.core.checkers.MTHistoryError` on failure.
        transitive_ww: forward the unoptimized BUILDDEPENDENCY variant to
            every shard check.
        index: pre-built :class:`~repro.core.index.HistoryIndex` (built
            here when absent); also drives the partitioner.
        max_shards: cap on the shard fan-out (fixed, never worker-derived).
        dense: run shard checks on the array-native CSR kernel (default);
            SSER shard graphs then cross the process boundary back as
            compact ``array('i')`` buffers instead of pickled edge-tuple
            lists.  ``dense=False`` keeps the legacy multigraph path;
            verdicts are identical either way.
        columns: the history as a
            :class:`~repro.history.columnar.ColumnarHistory` — shards are
            then sliced straight from the columns and the object history is
            never materialised.
        source_path: the uncompressed segment file ``columns`` was loaded
            from, when there is one.  Shard payloads then carry
            ``(path, rows)`` references instead of sliced column bytes:
            each worker memory-maps the file (one shared physical copy)
            and slices its own rows, so the parent neither materialises
            nor pickles per-shard columns.  Verdicts are identical with
            and without it.
    """
    if level not in GRAPH_CHECKED_LEVELS:
        raise ValueError(f"unsupported isolation level for sharded checking: {level}")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if history is None and columns is None:
        raise ValueError("either a history or its columns must be provided")
    if level is IsolationLevel.LINEARIZABILITY:
        level = IsolationLevel.STRICT_SERIALIZABILITY

    started = time.perf_counter()
    if index is None:
        if history is not None:
            index = HistoryIndex.build(history)
        else:
            assert columns is not None
            index = HistoryIndex.from_columns(columns)

    if strict_mt:
        raise_if_not_mt(index)

    if history is not None:
        shards = partition_history(history, index=index, max_shards=max_shards)
    else:
        assert columns is not None
        shards = partition_columns(
            columns,
            index=index,
            max_shards=max_shards,
            materialize=source_path is None,
        )
    if len(shards) == 1:
        # Fully connected history: the serial pipeline on the shared index
        # is already optimal (and strict validation has been done above).
        if level is IsolationLevel.SNAPSHOT_ISOLATION:
            return check_si(history, transitive_ww=transitive_ww, index=index, dense=dense)
        if level is IsolationLevel.SERIALIZABILITY:
            return check_ser(history, transitive_ww=transitive_ww, index=index, dense=dense)
        return check_sser(history, transitive_ww=transitive_ww, index=index, dense=dense)

    payloads: List[_Payload] = [
        make_payload(shard, level, transitive_ww, dense, source_path=source_path)
        for shard in shards
    ]
    outcomes = _execute(payloads, workers)
    outcomes.sort(key=lambda o: o.shard_index)

    elapsed = time.perf_counter() - started
    if level is IsolationLevel.STRICT_SERIALIZABILITY:
        pre = merge_shard_results(level, outcomes, elapsed_seconds=elapsed)
        if not pre.satisfied:
            # An INT/provenance violation in any shard settles the verdict
            # before the merged graph is assembled, mirroring the serial
            # pre-pass-first ordering.
            pre.num_transactions = index.num_committed
            return pre
        if dense:
            result = merge_sser_csr(outcomes, index, elapsed_seconds=elapsed)
        else:
            result = merge_sser_graphs(outcomes, index, elapsed_seconds=elapsed)
    else:
        result = merge_shard_results(level, outcomes, elapsed_seconds=elapsed)
    result.elapsed_seconds = time.perf_counter() - started
    return result


def make_payload(
    shard: Shard,
    level: IsolationLevel,
    transitive_ww: bool,
    dense: bool,
    *,
    source_path: Optional[Union[str, Path]] = None,
) -> _Payload:
    """The process-boundary task for one shard: columnar buffers only.

    Shards from the columnar partitioner already carry their column slice;
    shards from the object partitioner are column-encoded here — either
    way the payload pickles as raw bytes, never as ``Transaction`` objects.
    With ``source_path`` set (and the shard carrying its source rows), the
    payload degenerates to a ``("segref", path, rows, keys)`` reference:
    the worker memory-maps the segment and slices the rows itself.
    """
    if source_path is not None and shard.rows is not None:
        ref: _SegRef = ("segref", str(source_path), list(shard.rows), list(shard.keys))
        return (shard.index, ref, level, transitive_ww, dense)
    columns = shard.columns
    if columns is None:
        assert shard.history is not None
        columns = ColumnarHistory.from_history(shard.history)
    return (shard.index, columns.to_wire(), level, transitive_ww, dense)


# ----------------------------------------------------------------------
# Worker-side machinery
# ----------------------------------------------------------------------
def _run_shard(payload: _Payload) -> ShardOutcome:
    """Check one shard; module-level so process pools can import it."""
    shard_index, wire, level, transitive_ww, dense = payload
    if wire and wire[0] == "segref":
        _, path, shard_rows, shard_keys = wire
        segment = ColumnarHistory.load(path, mmap=True)
        shard_columns = segment.slice_rows(
            shard_rows, restrict_initial_keys=shard_keys
        )
    else:
        shard_columns = ColumnarHistory.from_wire(wire)
    shard_idx_obj = HistoryIndex.from_columns(shard_columns)

    if level is IsolationLevel.STRICT_SERIALIZABILITY:
        int_violations = shard_idx_obj.int_violations()
        if int_violations:
            return ShardOutcome(
                shard_index=shard_index,
                num_transactions=shard_idx_obj.num_committed,
                violations=list(int_violations),
            )
        if dense:
            # Build array-native and ship the raw buffers: four bytes per
            # edge column instead of a pickled list of labeled tuples.
            csr = build_dependency(
                None,
                with_rt=False,
                transitive_ww=transitive_ww,
                index=shard_idx_obj,
                dense=True,
            )
            return ShardOutcome(
                shard_index=shard_index,
                num_transactions=shard_idx_obj.num_committed,
                csr=csr.to_wire(),
            )
        graph = build_dependency(
            None,
            with_rt=False,
            transitive_ww=transitive_ww,
            index=shard_idx_obj,
        )
        return ShardOutcome(
            shard_index=shard_index,
            num_transactions=shard_idx_obj.num_committed,
            nodes=sorted(shard_idx_obj.committed_ids),
            edges=serialize_edges(graph),
        )

    if level is IsolationLevel.SNAPSHOT_ISOLATION:
        result = check_si(
            None, transitive_ww=transitive_ww, index=shard_idx_obj, dense=dense
        )
    else:
        result = check_ser(
            None, transitive_ww=transitive_ww, index=shard_idx_obj, dense=dense
        )
    return ShardOutcome(
        shard_index=shard_index,
        num_transactions=result.num_transactions,
        violations=list(result.violations),
    )


def _execute(payloads: List[_Payload], workers: int) -> List[ShardOutcome]:
    """Fan the shard checks out, falling back to inline execution."""
    if workers <= 1 or len(payloads) <= 1:
        return [_run_shard(p) for p in payloads]
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(payloads))) as pool:
            return list(pool.map(_run_shard, payloads))
    except (OSError, BrokenProcessPool):
        # Process spawning unavailable (sandbox / resource limits): the
        # sharded pipeline still runs — just on this process.
        return [_run_shard(p) for p in payloads]
