"""Multiprocessing fan-out over history shards.

:func:`check_parallel` is the parallel counterpart of the serial
``check_ser`` / ``check_si`` / ``check_sser`` pipeline:

1. partition the history into key-connected shards
   (:mod:`repro.parallel.partition`);
2. check every shard independently — in ``workers`` OS processes when
   ``workers > 1``, inline otherwise (shard order and per-shard work are
   identical either way, so worker counts never change the result);
3. merge the shard verdicts (:mod:`repro.parallel.merge`); SSER
   additionally reassembles the shard graphs under the global real-time
   order — pairwise, as a reduction tree scheduled across the same pool,
   so merge cost is O(log shards) wall-clock.

Three scale-out mechanisms keep the pipeline copy- and rebuild-free:

* **Shared-mmap worker pool.**  The pool is a single persistent
  :class:`~concurrent.futures.ProcessPoolExecutor` reused across
  ``check_parallel`` calls (grown on demand, torn down via
  :func:`shutdown_pool` / atexit).  With ``source_path`` set, shard
  payloads degenerate to ``("segref", path, rows, keys, token)``
  references: every worker memory-maps the segment once (OS page cache —
  one physical copy fleet-wide) and serves shard *and* merge tasks from
  row slices.
* **Warm per-worker index caches.**  Workers cache the segment map and
  each shard's built :class:`~repro.core.index.HistoryIndex` keyed by
  ``(path, file token, rows)``, so repeated checks of the same source —
  the epoch-log re-verification loop — skip ``from_columns`` entirely.
* **Shipped/cached parent index.**  ``reuse_index=True`` persists the
  parent's dense index beside the source segment
  (:meth:`HistoryIndex.save_cache`, CRC-stamped) and rehydrates it on the
  next check instead of rebuilding; epoch-log directories get the same
  treatment via :meth:`~repro.history.epochlog.EpochLog.cached_index`.

Invariant: **sharded verdicts equal serial verdicts on every history** —
the randomized equivalence suites (``tests/test_parallel.py``,
``tests/test_scaleout.py``, ``tests/test_columnar.py``) enforce it across
SER/SI/SSER, every simulated engine, injected faults, and every
reduction-tree shape.

The pool is a best-effort optimisation: environments where processes
cannot be spawned (sandboxes, restricted containers) transparently fall
back to inline execution, and worker counts beyond ``os.cpu_count()`` are
clamped (with a warning) since extra processes would only timeshare.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
import warnings
from array import array
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..obs import metrics as _obs_metrics
from ..resilience import CircuitBreaker, Deadline, RetryPolicy
from ..resilience import failpoints as _failpoints
from ..resilience.failpoints import fail_point
from ..core.checkers import (
    GRAPH_CHECKED_LEVELS,
    check_ser,
    check_si,
    check_sser,
    raise_if_not_mt,
)
from ..core.csr import WireCSR
from ..core.graph import build_dependency
from ..core.index import HistoryIndex
from ..core.model import History
from ..core.result import CheckResult, IsolationLevel
from ..history.columnar import ColumnarHistory, WireColumns, file_crc32, segment_token
from .merge import (
    ShardOutcome,
    finalize_sser_wires,
    merge_csr_wires,
    merge_shard_results,
    merge_sser_csr,
    merge_sser_graphs,
    serialize_edges,
)
from .partition import DEFAULT_MAX_SHARDS, Shard, partition_columns, partition_history

__all__ = ["check_parallel", "make_payload", "shutdown_pool"]

#: Segment-reference payload body: workers memory-map ``path`` themselves
#: and slice their rows locally, so N workers share one physical copy of
#: the segment (OS page cache) and the parent pickles only row numbers —
#: shipped as a flat ``array('q')``, which pickles as raw bytes.  The
#: trailing token — ``(st_size, st_mtime_ns)`` — keys the per-worker warm
#: caches and invalidates them when the file is rewritten.
_SegRef = Tuple[str, str, Sequence[int], List[str], Tuple[int, int]]

#: One shard task shipped to a worker process: the shard's columnar wire
#: buffers — or a :data:`_SegRef` into an mmap-able segment file — plus the
#: check configuration.  Contains no ``Transaction``s either way.  An
#: optional sixth element (``with_metrics``) asks the worker to record its
#: shard work into a fresh telemetry registry and ship the snapshot back on
#: the outcome; five-element payloads remain valid (telemetry off).
_Payload = Tuple[int, Union[WireColumns, _SegRef], IsolationLevel, bool, bool]

#: Below this many committed transactions the pool is pure overhead
#: (process dispatch + pickling dwarf the shard checks), so fan-out runs
#: inline regardless of the requested worker count.  Results are identical
#: either way; only where the shard checks execute changes.
_MIN_POOL_TXNS = 4096

# ----------------------------------------------------------------------
# Persistent pool (parent side)
# ----------------------------------------------------------------------
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
#: Gates pool (re)creation after faults.  Replaces the old sticky
#: ``_POOL_BROKEN`` flag: a transient fault (one worker SIGKILLed, a
#: sandbox hiccup) no longer disables fan-out for the rest of the
#: process — the breaker re-admits a probe after ``reset_after`` and the
#: pool self-heals.  Persistent faults (spawning impossible) trip it
#: open and execution degrades to inline, exactly as before.
_POOL_BREAKER = CircuitBreaker(failure_threshold=3, reset_after=30.0, name="executor_pool")
#: Backoff between pool-respawn attempts inside one ``check_parallel``
#: call; after these attempts the remaining shards run inline.
_POOL_RETRY = RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.5, seed=0)


def _cpu_count() -> int:
    return os.cpu_count() or 1


def _pool_worker_init() -> None:
    """Pool-worker initializer: re-arm failpoints from the environment.

    Fork inherits the parent's armed plan but *not* fresh fire counters,
    and spawn inherits nothing; re-arming from ``REPRO_FAILPOINTS`` here
    gives every worker its own deterministic plan regardless of start
    method — and lets chaos suites arm worker-only rules by exporting the
    spec without arming the parent.
    """
    if not _failpoints.activate_from_env():
        _failpoints.deactivate()


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared worker pool, created lazily and grown on demand.

    Reusing one pool across ``check_parallel`` calls is what makes the
    per-worker warm caches effective: the second check of the same source
    hits processes that already mapped the segment and built the shard
    indexes.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS < workers:
        _POOL.shutdown(wait=True)
        _POOL = None
    if _POOL is None:
        fail_point("executor.pool.spawn")
        _POOL = ProcessPoolExecutor(
            max_workers=workers, initializer=_pool_worker_init
        )
        _POOL_WORKERS = workers
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent pool (tests, interpreter exit)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
    _POOL = None
    _POOL_WORKERS = 0
    _POOL_BREAKER.reset()


atexit.register(shutdown_pool)


def _pool_fault(kind: str) -> None:
    """Record one pool fault and tear the (possibly poisoned) pool down.

    The breaker decides policy: under :data:`_POOL_BREAKER`'s threshold
    the next attempt simply respawns the pool; past it, :func:`_execute`
    and :func:`_reduce_wires` degrade to inline execution until the
    breaker's reset window re-admits a probe.
    """
    global _POOL, _POOL_WORKERS
    obs.inc("repro_resilience_pool_faults_total", kind=kind)
    _POOL_BREAKER.record_failure()
    if _POOL is not None:
        try:
            _POOL.shutdown(wait=False)
        except Exception:
            pass
    _POOL = None
    _POOL_WORKERS = 0


def check_parallel(
    history: Optional[History],
    level: IsolationLevel,
    *,
    workers: int = 1,
    strict_mt: bool = False,
    transitive_ww: bool = False,
    index: Optional[HistoryIndex] = None,
    max_shards: Optional[int] = DEFAULT_MAX_SHARDS,
    dense: bool = True,
    columns: Optional[ColumnarHistory] = None,
    source_path: Optional[Union[str, Path]] = None,
    reuse_index: bool = False,
    task_timeout: Optional[float] = None,
    stats: Optional[Dict[str, object]] = None,
) -> CheckResult:
    """Verify a history against ``level`` via the sharded pipeline.

    Args:
        history: the MT history to verify — or ``None`` when ``columns``
            carries the history in columnar form.
        level: SER, SI, SSER, or LIN (checked as SSER on plain histories).
        workers: number of OS processes to fan shard checks out over;
            ``1`` runs the same shard checks inline (identical result).
            Counts beyond ``os.cpu_count()`` are clamped with a warning —
            extra processes would only timeshare the same cores — and
            histories below :data:`_MIN_POOL_TXNS` committed transactions
            run inline regardless (the pool would be pure overhead).
        strict_mt: validate the history against Definition 9 up front and
            raise :class:`~repro.core.checkers.MTHistoryError` on failure.
        transitive_ww: forward the unoptimized BUILDDEPENDENCY variant to
            every shard check.
        index: pre-built :class:`~repro.core.index.HistoryIndex` (built
            here when absent); also drives the partitioner.
        max_shards: cap on the shard fan-out (fixed, never worker-derived).
        dense: run shard checks on the array-native CSR kernel (default);
            SSER shard graphs then cross the process boundary back as
            compact ``array('i')`` buffers instead of pickled edge-tuple
            lists.  ``dense=False`` keeps the legacy multigraph path;
            verdicts are identical either way.
        columns: the history as a
            :class:`~repro.history.columnar.ColumnarHistory` — shards are
            then sliced straight from the columns and the object history is
            never materialised.
        source_path: the uncompressed segment file ``columns`` was loaded
            from, when there is one.  Shard payloads then carry
            ``(path, rows)`` references instead of sliced column bytes:
            each worker memory-maps the file (one shared physical copy)
            and slices its own rows, so the parent neither materialises
            nor pickles per-shard columns.  Verdicts are identical with
            and without it.
        reuse_index: persist the parent's built index beside
            ``source_path`` (``<path>.idx``, CRC-stamped against the
            segment's content) and rehydrate it on repeated checks instead
            of rebuilding with ``from_columns``.  Requires ``columns`` and
            ``source_path``; ignored when an ``index`` is supplied.
        task_timeout: per-dispatch deadline, seconds: when the pool has
            not returned every outstanding shard within this budget the
            dispatch is considered hung (a stuck or killed worker), the
            pool is torn down and respawned, and the unfinished shards are
            re-submitted — bounded by the module retry policy — before
            falling back to inline execution.  ``None`` (default) waits
            indefinitely, as before.  Verdicts are identical on every
            recovery path (shard checks are pure).
        stats: optional dict filled with scale-out metrics for this call:
            ``workers_requested`` / ``workers_effective``, ``shards``,
            ``inline``, ``index_build_s`` / ``index_reuse_s``,
            ``payload_bytes`` (pickled shard payload total), and
            ``merge_s`` (SSER merge wall-clock).  A compatibility shim over
            the :mod:`repro.obs` registry — the executor records
            ``repro_executor_*`` series and this dict is populated from
            them on the way out; new code should read the registry
            directly (``obs.scoped()`` / ``repro watch --metrics-file``).
    """
    with obs.maybe_scoped(stats is not None) as scoped_reg:
        result = _check_parallel_impl(
            history,
            level,
            workers=workers,
            strict_mt=strict_mt,
            transitive_ww=transitive_ww,
            index=index,
            max_shards=max_shards,
            dense=dense,
            columns=columns,
            source_path=source_path,
            reuse_index=reuse_index,
            task_timeout=task_timeout,
        )
        if stats is not None:
            reg = scoped_reg if scoped_reg is not None else obs.registry()
            if reg is not None:
                _fill_stats_from_registry(stats, reg)
        return result


#: Legacy ``stats=`` dict keys and the registry series each one mirrors.
_STATS_SERIES = (
    ("workers_requested", "repro_executor_workers_requested", int),
    ("workers_effective", "repro_executor_workers_effective", int),
    ("shards", "repro_executor_shards", int),
    ("inline", "repro_executor_inline", bool),
    ("payload_bytes", "repro_executor_payload_bytes", int),
    ("index_build_s", "repro_executor_index_build_seconds", float),
    ("index_reuse_s", "repro_executor_index_reuse_seconds", float),
    ("merge_s", "repro_executor_merge_seconds", float),
)


def _fill_stats_from_registry(
    stats: Dict[str, object], reg: "_obs_metrics.MetricsRegistry"
) -> None:
    """Populate the legacy ``stats=`` dict from executor registry gauges.

    Key presence matches the historical behaviour: a key appears only when
    the corresponding series was recorded for this call (``merge_s`` only
    on an SSER merge, ``index_reuse_s`` only on a cache rehydration, …).
    """
    for key, series, cast in _STATS_SERIES:
        value = reg.value(series)
        if value is not None:
            stats[key] = cast(value)


def _check_parallel_impl(
    history: Optional[History],
    level: IsolationLevel,
    *,
    workers: int,
    strict_mt: bool,
    transitive_ww: bool,
    index: Optional[HistoryIndex],
    max_shards: Optional[int],
    dense: bool,
    columns: Optional[ColumnarHistory],
    source_path: Optional[Union[str, Path]],
    reuse_index: bool,
    task_timeout: Optional[float] = None,
) -> CheckResult:
    if level not in GRAPH_CHECKED_LEVELS:
        raise ValueError(f"unsupported isolation level for sharded checking: {level}")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if history is None and columns is None:
        raise ValueError("either a history or its columns must be provided")
    if level is IsolationLevel.LINEARIZABILITY:
        level = IsolationLevel.STRICT_SERIALIZABILITY
    obs.inc("repro_executor_checks_total")

    requested = workers
    cpu = _cpu_count()
    if workers > cpu:
        warnings.warn(
            f"workers={workers} exceeds this machine's {cpu} CPU core(s); "
            f"clamping to {cpu} (extra processes would only timeshare)",
            RuntimeWarning,
            stacklevel=2,
        )
        workers = cpu

    started = time.perf_counter()
    if index is None:
        index_started = time.perf_counter()
        reused = False
        if history is not None:
            with obs.phase("index_build"):
                index = HistoryIndex.build(history)
        else:
            assert columns is not None
            if reuse_index and source_path is not None:
                index = _load_or_build_cached_index(source_path, columns)
                reused = index is not None
            if index is None:
                with obs.phase("index_build"):
                    index = HistoryIndex.from_columns(columns)
                if reuse_index and source_path is not None:
                    _store_cached_index(source_path, index)
        obs.set_gauge(
            "repro_executor_index_reuse_seconds"
            if reused
            else "repro_executor_index_build_seconds",
            time.perf_counter() - index_started,
        )
    else:
        obs.set_gauge("repro_executor_index_build_seconds", 0.0)

    if strict_mt:
        raise_if_not_mt(index)

    with obs.phase("partition"):
        if history is not None:
            shards = partition_history(history, index=index, max_shards=max_shards)
        else:
            assert columns is not None
            shards = partition_columns(
                columns,
                index=index,
                max_shards=max_shards,
                materialize=source_path is None,
            )
    effective = workers
    inline_small = effective > 1 and index.num_committed < _MIN_POOL_TXNS
    if inline_small:
        effective = 1
    obs.set_gauge("repro_executor_workers_requested", requested)
    obs.set_gauge("repro_executor_workers_effective", effective)
    obs.set_gauge("repro_executor_shards", len(shards))
    obs.set_gauge("repro_executor_inline", 1 if effective <= 1 else 0)
    if len(shards) == 1:
        # Fully connected history: the serial pipeline on the shared index
        # is already optimal (and strict validation has been done above).
        if level is IsolationLevel.SNAPSHOT_ISOLATION:
            return check_si(history, transitive_ww=transitive_ww, index=index, dense=dense)
        if level is IsolationLevel.SERIALIZABILITY:
            return check_ser(history, transitive_ww=transitive_ww, index=index, dense=dense)
        return check_sser(history, transitive_ww=transitive_ww, index=index, dense=dense)

    with_metrics = obs.enabled()
    payloads: List[_Payload] = [
        make_payload(
            shard,
            level,
            transitive_ww,
            dense,
            source_path=source_path,
            with_metrics=with_metrics,
        )
        for shard in shards
    ]
    if with_metrics:
        payload_bytes = sum(len(pickle.dumps(p)) for p in payloads)
        obs.set_gauge("repro_executor_payload_bytes", payload_bytes)
        obs.inc("repro_executor_payload_bytes_total", payload_bytes)
    with obs.phase("shard_checks"):
        outcomes = _execute(payloads, effective, task_timeout=task_timeout)
    outcomes.sort(key=lambda o: o.shard_index)
    for outcome in outcomes:
        obs.merge(outcome.metrics)

    elapsed = time.perf_counter() - started
    if level is IsolationLevel.STRICT_SERIALIZABILITY:
        pre = merge_shard_results(level, outcomes, elapsed_seconds=elapsed)
        if not pre.satisfied:
            # An INT/provenance violation in any shard settles the verdict
            # before the merged graph is assembled, mirroring the serial
            # pre-pass-first ordering.
            pre.num_transactions = index.num_committed
            return pre
        merge_started = time.perf_counter()
        with obs.phase("merge"):
            if dense:
                wires = [o.csr for o in outcomes if o.csr is not None]
                wires = _reduce_wires(wires, effective)
                result = finalize_sser_wires(
                    wires,
                    index,
                    num_transactions=sum(o.num_transactions for o in outcomes),
                    elapsed_seconds=elapsed,
                )
            else:
                result = merge_sser_graphs(outcomes, index, elapsed_seconds=elapsed)
        obs.set_gauge(
            "repro_executor_merge_seconds", time.perf_counter() - merge_started
        )
    else:
        result = merge_shard_results(level, outcomes, elapsed_seconds=elapsed)
    result.elapsed_seconds = time.perf_counter() - started
    return result


def make_payload(
    shard: Shard,
    level: IsolationLevel,
    transitive_ww: bool,
    dense: bool,
    *,
    source_path: Optional[Union[str, Path]] = None,
    with_metrics: bool = False,
) -> _Payload:
    """The process-boundary task for one shard: columnar buffers only.

    Shards from the columnar partitioner already carry their column slice;
    shards from the object partitioner are column-encoded here — either
    way the payload pickles as raw bytes, never as ``Transaction`` objects.
    With ``source_path`` set (and the shard carrying its source rows), the
    payload degenerates to a ``("segref", path, rows, keys, token)``
    reference: the worker memory-maps the segment and slices the rows
    itself, with ``token`` keying its warm segment/index caches.

    ``with_metrics=True`` appends a sixth payload element asking the worker
    to record its shard work (txns checked, cache hits, index builds) into
    a fresh registry and attach the snapshot to the returned outcome; the
    parent folds the snapshots into its own registry.  Five-element
    payloads stay valid — telemetry stays off in the worker.
    """
    if source_path is not None and shard.rows is not None:
        rows = shard.rows if isinstance(shard.rows, array) else array("q", shard.rows)
        ref: _SegRef = (
            "segref",
            str(source_path),
            rows,
            list(shard.keys),
            segment_token(source_path),
        )
        body: Tuple = (shard.index, ref, level, transitive_ww, dense)
    else:
        columns = shard.columns
        if columns is None:
            assert shard.history is not None
            columns = ColumnarHistory.from_history(shard.history)
        body = (shard.index, columns.to_wire(), level, transitive_ww, dense)
    return body + (True,) if with_metrics else body


# ----------------------------------------------------------------------
# Parent-side index cache (reuse_index=True)
# ----------------------------------------------------------------------
def _index_cache_path(source_path: Union[str, Path]) -> Path:
    return Path(f"{source_path}.idx")


def _segment_fingerprint(source_path: Union[str, Path]) -> Dict[str, object]:
    return {"crc32": file_crc32(source_path), "size": os.stat(source_path).st_size}


def _load_or_build_cached_index(
    source_path: Union[str, Path], columns: ColumnarHistory
) -> Optional[HistoryIndex]:
    try:
        fingerprint = _segment_fingerprint(source_path)
    except OSError:
        return None
    return HistoryIndex.load_cache(
        _index_cache_path(source_path), fingerprint=fingerprint, columns=columns
    )


def _store_cached_index(source_path: Union[str, Path], index: HistoryIndex) -> None:
    try:
        index.save_cache(
            _index_cache_path(source_path),
            fingerprint=_segment_fingerprint(source_path),
        )
    except OSError:
        pass  # read-only directory: caching is best-effort


# ----------------------------------------------------------------------
# Worker-side machinery
# ----------------------------------------------------------------------
#: Per-process warm caches (populated inside pool workers; the persistent
#: pool keeps the processes — and therefore these maps — alive across
#: check_parallel calls).  ``_SEGMENT_CACHE`` maps one mmap per segment
#: file; ``_SHARD_INDEX_CACHE`` keeps built shard indexes keyed by the
#: file identity token plus the exact row/key slice.
_WORKER_CACHE_LIMIT = 8
_SEGMENT_CACHE: "OrderedDict[Tuple[str, Tuple[int, int]], ColumnarHistory]" = OrderedDict()
_SHARD_INDEX_CACHE: "OrderedDict[tuple, Tuple[ColumnarHistory, HistoryIndex]]" = OrderedDict()


def _cache_put(cache: OrderedDict, key, value) -> None:
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > _WORKER_CACHE_LIMIT:
        cache.popitem(last=False)


def _mapped_segment(path: str, token: Tuple[int, int]) -> ColumnarHistory:
    key = (path, token)
    segment = _SEGMENT_CACHE.get(key)
    obs.inc(
        "repro_executor_segment_cache_total",
        outcome="miss" if segment is None else "hit",
    )
    if segment is None:
        segment = ColumnarHistory.load(path, mmap=True)
        _cache_put(_SEGMENT_CACHE, key, segment)
    return segment


def _shard_columns_and_index(
    wire: Union[WireColumns, _SegRef],
) -> Tuple[ColumnarHistory, HistoryIndex]:
    """Resolve a payload body to (columns, built index), warm-cached."""
    if wire and wire[0] == "segref":
        _, path, shard_rows, shard_keys, token = wire
        cache_key = (path, token, tuple(shard_rows), tuple(shard_keys))
        cached = _SHARD_INDEX_CACHE.get(cache_key)
        obs.inc(
            "repro_executor_shard_index_cache_total",
            outcome="miss" if cached is None else "hit",
        )
        if cached is not None:
            _SHARD_INDEX_CACHE.move_to_end(cache_key)
            return cached
        segment = _mapped_segment(path, token)
        shard_columns = segment.slice_rows(
            shard_rows, restrict_initial_keys=shard_keys
        )
        shard_index = HistoryIndex.from_columns(shard_columns)
        _cache_put(_SHARD_INDEX_CACHE, cache_key, (shard_columns, shard_index))
        return shard_columns, shard_index
    shard_columns = ColumnarHistory.from_wire(wire)
    return shard_columns, HistoryIndex.from_columns(shard_columns)


def _run_shard(payload: _Payload) -> ShardOutcome:
    """Check one shard; module-level so process pools can import it.

    Payloads carrying the ``with_metrics`` flag run under a fresh private
    registry — never the process-global one, so an inline run cannot
    double-count into the parent's — whose snapshot ships back on
    ``ShardOutcome.metrics`` for the parent to fold in.
    """
    if len(payload) > 5 and payload[5]:
        reg = _obs_metrics.MetricsRegistry()
        parent = _obs_metrics.swap_active(reg)
        try:
            outcome = _run_shard_body(payload)
            outcome.metrics = reg.snapshot()
        finally:
            _obs_metrics.swap_active(parent)
        fail_point("executor.wire.return")
        return outcome
    outcome = _run_shard_body(payload)
    fail_point("executor.wire.return")
    return outcome


def _run_shard_body(payload: _Payload) -> ShardOutcome:
    fail_point("executor.shard.task")
    shard_index, wire, level, transitive_ww, dense = payload[:5]
    _shard_columns, shard_idx_obj = _shard_columns_and_index(wire)
    obs.inc("repro_executor_shard_checks_total")
    obs.inc("repro_executor_shard_txns_total", shard_idx_obj.num_committed)

    if level is IsolationLevel.STRICT_SERIALIZABILITY:
        int_violations = shard_idx_obj.int_violations()
        if int_violations:
            return ShardOutcome(
                shard_index=shard_index,
                num_transactions=shard_idx_obj.num_committed,
                violations=list(int_violations),
            )
        if dense:
            # Build array-native and ship the raw buffers: four bytes per
            # edge column instead of a pickled list of labeled tuples.
            csr = build_dependency(
                None,
                with_rt=False,
                transitive_ww=transitive_ww,
                index=shard_idx_obj,
                dense=True,
            )
            return ShardOutcome(
                shard_index=shard_index,
                num_transactions=shard_idx_obj.num_committed,
                csr=csr.to_wire(),
            )
        graph = build_dependency(
            None,
            with_rt=False,
            transitive_ww=transitive_ww,
            index=shard_idx_obj,
        )
        return ShardOutcome(
            shard_index=shard_index,
            num_transactions=shard_idx_obj.num_committed,
            nodes=sorted(shard_idx_obj.committed_ids),
            edges=serialize_edges(graph),
        )

    if level is IsolationLevel.SNAPSHOT_ISOLATION:
        result = check_si(
            None, transitive_ww=transitive_ww, index=shard_idx_obj, dense=dense
        )
    else:
        result = check_ser(
            None, transitive_ww=transitive_ww, index=shard_idx_obj, dense=dense
        )
    return ShardOutcome(
        shard_index=shard_index,
        num_transactions=result.num_transactions,
        violations=list(result.violations),
    )


def _merge_pair(pair: Tuple[WireCSR, WireCSR]) -> WireCSR:
    """Pool task: one tree-reduction step over two shard wires."""
    return merge_csr_wires(pair[0], pair[1])


def _execute(
    payloads: List[_Payload],
    workers: int,
    *,
    task_timeout: Optional[float] = None,
) -> List[ShardOutcome]:
    """Fan the shard checks out; recover from pool faults; finish inline.

    The recovery ladder, each rung bounded:

    1. submit all unfinished shards to the pool, collecting results as
       they complete (a fault in one shard does not discard the others);
    2. on a broken pool, a spawn failure, or a ``task_timeout`` expiry,
       tear the pool down (:func:`_pool_fault`), back off per
       :data:`_POOL_RETRY`, respawn, and resubmit only the unfinished
       shards — unless :data:`_POOL_BREAKER` has opened;
    3. whatever remains after the retry budget runs inline on this
       process.  Shard checks are pure, so every path yields identical
       outcomes.
    """
    results: Dict[int, ShardOutcome] = {}
    pending = list(range(len(payloads)))
    if workers > 1 and len(payloads) > 1:
        delays = _POOL_RETRY.delays()
        while pending and _POOL_BREAKER.allow():
            deadline = (
                Deadline(task_timeout) if task_timeout is not None else None
            )
            try:
                pool = _get_pool(workers)
                futures = {
                    pool.submit(_run_shard, payloads[i]): i for i in pending
                }
            except (OSError, BrokenProcessPool):
                # Process spawning unavailable (sandbox / resource limits).
                _pool_fault("spawn")
                futures = {}
            fault: Optional[str] = None
            not_done = set(futures)
            while not_done and fault is None:
                done, not_done = wait(
                    not_done,
                    timeout=deadline.remaining() if deadline else None,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    obs.inc(
                        "repro_resilience_deadline_exceeded_total",
                        component="executor",
                    )
                    for future in not_done:
                        future.cancel()
                    fault = "timeout"
                    break
                for future in done:
                    try:
                        results[futures[future]] = future.result()
                    except (OSError, BrokenProcessPool):
                        # A dead worker poisons every sibling future; the
                        # results already collected stay good.
                        fault = "broken"
                        break
            pending = [i for i in range(len(payloads)) if i not in results]
            if not pending:
                _POOL_BREAKER.record_success()
                return [results[i] for i in range(len(payloads))]
            if fault is not None:
                _pool_fault(fault)
            delay = next(delays, None)
            if delay is None:
                break
            obs.inc("repro_resilience_retries_total", component="executor")
            time.sleep(delay)
    # Inline completion: the sharded pipeline still runs — on this process.
    for i in pending:
        results[i] = _run_shard(payloads[i])
    return [results[i] for i in range(len(payloads))]


def _reduce_wires(wires: List[WireCSR], workers: int) -> List[WireCSR]:
    """Tree-reduce shard CSR wires down to (at most) one root wire.

    Each round pairs *adjacent* wires — ``(0,1), (2,3), …`` with an odd
    tail passing through — and merges the pairs concurrently in the pool,
    so a 32-shard merge takes 5 rounds of parallel pairwise work instead
    of one serial 32-way pass.  Adjacent pairing preserves the global edge
    concatenation order, so every tree shape (odd counts, single-wire
    degenerate trees, inline execution) finalizes to byte-identical edge
    columns and labeled cycles.
    """
    rounds = 0
    while len(wires) > 1:
        rounds += 1
        pairs = [(wires[i], wires[i + 1]) for i in range(0, len(wires) - 1, 2)]
        tail = [wires[-1]] if len(wires) % 2 else []
        if workers > 1 and len(pairs) > 1 and _POOL_BREAKER.allow():
            try:
                merged = list(_get_pool(workers).map(_merge_pair, pairs))
                _POOL_BREAKER.record_success()
            except (OSError, BrokenProcessPool):
                _pool_fault("merge")
                merged = [merge_csr_wires(a, b) for a, b in pairs]
        else:
            merged = [merge_csr_wires(a, b) for a, b in pairs]
        wires = merged + tail
    obs.set_gauge("repro_executor_merge_rounds", rounds)
    return wires
