"""Key-connectivity partitioning of histories into checkable shards.

Two transactions can only ever be joined by a dependency edge when they
touch a common object (WR/WW/RW are per-key) or follow each other in a
session (SO).  Union-finding objects that co-occur in a transaction — and
then merging the components bridged by multi-component sessions — therefore
yields shards with **no dependency edge between them**: each shard can be
checked independently, and for SER and SI the conjunction of the shard
verdicts equals the serial verdict (real-time edges are the one global
relation; :mod:`repro.parallel.merge` handles SSER with a merged check).

Sessions that span otherwise-disjoint key groups are the fallback case:
their components are merged into a single residual shard rather than split,
so the session order is never cut.  Aborted and unknown-outcome
transactions participate in connectivity too — their writes anchor the
read-provenance pre-pass, which must stay shard-local.

The partition is fully deterministic (component order follows first key
appearance; an optional ``max_shards`` cap coalesces shards greedily by
size) and — crucially — independent of the worker count, so running the
same history with 1 or 8 workers produces identical shard checks.

Two front ends share the union-find core: :func:`partition_history` slices
a :class:`~repro.core.model.History` into sub-histories (object pipeline),
and :func:`partition_columns` slices a
:class:`~repro.history.columnar.ColumnarHistory` into per-shard column
segments — the form the executor ships across the process boundary without
pickling any ``Transaction``.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.index import HistoryIndex
from ..core.model import INITIAL_TXN_ID, History, Session, Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..history.columnar import ColumnarHistory

__all__ = ["Shard", "partition_history", "partition_columns"]

#: Default cap on the number of shards the executor fans out over.  Fixed
#: (never derived from the worker count) so results are reproducible across
#: worker counts; 32 keeps per-shard dispatch overhead negligible while
#: leaving plenty of slack for load balancing.
DEFAULT_MAX_SHARDS = 32


@dataclass
class Shard:
    """One independently checkable slice of a history.

    Exactly one of ``history`` / ``columns`` is set, depending on which
    front end produced the shard; the executor ships either as a columnar
    wire buffer.
    """

    index: int
    history: Optional[History]
    keys: List[str]
    session_ids: List[int]
    #: Committed transactions in the shard (excluding ``⊥T``).
    num_transactions: int
    #: Columnar slice of the shard (columnar front end).
    columns: Optional["ColumnarHistory"] = None
    #: Source rows of the slice within the parent segment (columnar front
    #: end) — lets the executor ship a (path, rows) reference instead of
    #: the sliced bytes when the segment lives in an mmap-able file.
    #: Stored as a flat ``array('q')`` so million-row segref payloads
    #: pickle as raw bytes rather than lists of boxed ints.
    rows: Optional[Sequence[int]] = None


def partition_history(
    history: History,
    *,
    index: Optional[HistoryIndex] = None,
    max_shards: Optional[int] = DEFAULT_MAX_SHARDS,
) -> List[Shard]:
    """Split ``history`` into key-connected, session-closed shards.

    Returns a single shard wrapping the original history when the history is
    fully connected (or has no keys at all).  The union of the shard
    sub-histories covers every transaction exactly once, and the initial
    transaction ``⊥T`` is restricted to each shard's keys.
    """
    if index is None:
        index = HistoryIndex.build(history)
    if len(index.key_names) == 0 or not history.sessions:
        return [_whole_history_shard(history, index)]

    session_positions = [
        [index.txn_dense[txn.txn_id] for txn in session.transactions]
        for session in history.sessions
    ]
    groups = _component_groups(index, session_positions)
    if groups is None:
        return [_whole_history_shard(history, index)]

    sized = [
        (keys, slots, sum(len(session_positions[i]) for i in slots))
        for keys, slots in groups
    ]
    if max_shards is not None and len(sized) > max_shards:
        sized = _coalesce(sized, max_shards)

    shards: List[Shard] = []
    for shard_idx, (keys, slots, _load) in enumerate(sized):
        sessions = [history.sessions[i] for i in slots]
        shards.append(_make_shard(shard_idx, history, keys, sessions))
    return shards


def partition_columns(
    columns: "ColumnarHistory",
    *,
    index: Optional[HistoryIndex] = None,
    max_shards: Optional[int] = DEFAULT_MAX_SHARDS,
    materialize: bool = True,
) -> List[Shard]:
    """Split a columnar segment into key-connected, session-closed shards.

    The columnar counterpart of :func:`partition_history`: the same
    union-find runs on the index's dense interning, but each shard comes out
    as a :class:`~repro.history.columnar.ColumnarHistory` slice (``⊥T``
    restricted to the shard's keys) — ready to ship over
    :meth:`~repro.history.columnar.ColumnarHistory.to_wire` without any
    ``Transaction`` materialisation.

    With ``materialize=False`` the per-shard column slices are *not* built:
    each shard carries only its source ``rows`` (and keys), which is all
    the executor needs when workers re-slice from a memory-mapped segment
    file themselves.
    """
    if index is None:
        index = HistoryIndex.from_columns(columns)
    num_positions = len(index.txn_ids)

    # Group dense positions (which are session-contiguous, ascending id) by
    # session; the initial transaction is excluded and re-attached per shard.
    session_ids: List[int] = []
    session_positions: List[List[int]] = []
    for pos in range(num_positions):
        if index.txn_ids[pos] == INITIAL_TXN_ID:
            continue
        sid = index.session_of(pos)
        if not session_ids or session_ids[-1] != sid:
            session_ids.append(sid)
            session_positions.append([])
        session_positions[-1].append(pos)

    def whole() -> List[Shard]:
        return [
            Shard(
                index=0,
                history=None,
                keys=list(index.key_names),
                session_ids=list(session_ids),
                num_transactions=index.num_committed,
                columns=columns,
            )
        ]

    if len(index.key_names) == 0 or not session_positions:
        return whole()
    groups = _component_groups(index, session_positions)
    if groups is None:
        return whole()

    sized = [
        (keys, slots, sum(len(session_positions[i]) for i in slots))
        for keys, slots in groups
    ]
    if max_shards is not None and len(sized) > max_shards:
        sized = _coalesce(sized, max_shards)

    shards: List[Shard] = []
    for shard_idx, (keys, slots, _load) in enumerate(sized):
        rows = array("q")
        if index.txn_ids and index.txn_ids[0] == INITIAL_TXN_ID:
            rows.append(index.column_row(0))
        committed = 0
        for slot in slots:
            for pos in session_positions[slot]:
                rows.append(index.column_row(pos))
                if index.is_committed_pos(pos):
                    committed += 1
        shards.append(
            Shard(
                index=shard_idx,
                history=None,
                keys=keys,
                session_ids=[session_ids[i] for i in slots],
                num_transactions=committed,
                columns=(
                    columns.slice_rows(rows, restrict_initial_keys=keys)
                    if materialize
                    else None
                ),
                rows=rows,
            )
        )
    return shards


# ----------------------------------------------------------------------
# Shared union-find core
# ----------------------------------------------------------------------
def _component_groups(
    index: HistoryIndex,
    session_positions: Sequence[Sequence[int]],
) -> Optional[List[Tuple[List[str], List[int]]]]:
    """Key components + the sessions assigned to each, or ``None`` if single.

    ``session_positions`` lists each session's dense transaction positions
    (in session order).  Returns ``(keys, session_slots)`` groups in
    first-key-appearance order; keyless sessions ride in group 0.
    """
    num_keys = len(index.key_names)
    parent = list(range(num_keys))

    def find(k: int) -> int:
        root = k
        while parent[root] != root:
            root = parent[root]
        while parent[k] != root:  # path compression
            parent[k], k = root, parent[k]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    # 1. Keys co-accessed by one transaction belong together (``⊥T`` exempt:
    #    it touches every key by construction and carries no constraint).
    txn_keys = index.txn_keys
    txn_ids = index.txn_ids
    for pos, key_ids in enumerate(txn_keys):
        if txn_ids[pos] == INITIAL_TXN_ID:
            continue
        for other in key_ids[1:]:
            union(key_ids[0], other)

    # 2. Sessions must stay whole: merge the components a session bridges.
    for positions in session_positions:
        anchor: Optional[int] = None
        for pos in positions:
            key_ids = txn_keys[pos]
            if not key_ids:
                continue
            if anchor is None:
                anchor = key_ids[0]
            else:
                union(anchor, key_ids[0])

    # 3. Number components by first key appearance (deterministic).
    component_of_root: Dict[int, int] = {}
    keys_per_component: List[List[str]] = []
    for kid in range(num_keys):
        root = find(kid)
        slot = component_of_root.get(root)
        if slot is None:
            slot = len(keys_per_component)
            component_of_root[root] = slot
            keys_per_component.append([])
        keys_per_component[slot].append(index.key_names[kid])

    if len(keys_per_component) <= 1:
        return None

    # 4. Assign sessions to components (keyless sessions ride in group 0).
    sessions_per_component: List[List[int]] = [[] for _ in keys_per_component]
    for session_slot, positions in enumerate(session_positions):
        slot = 0
        for pos in positions:
            key_ids = txn_keys[pos]
            if key_ids:
                slot = component_of_root[find(key_ids[0])]
                break
        sessions_per_component[slot].append(session_slot)

    return list(zip(keys_per_component, sessions_per_component))


def _whole_history_shard(history: History, index: HistoryIndex) -> Shard:
    return Shard(
        index=0,
        history=history,
        keys=list(index.key_names),
        session_ids=[s.session_id for s in history.sessions],
        num_transactions=index.num_committed,
    )


def _coalesce(
    sized: List[Tuple[List[str], List[int], int]], max_shards: int
) -> List[Tuple[List[str], List[int], int]]:
    """Greedily pack components into ``max_shards`` buckets by load.

    Components are taken largest-first (ties broken by original order) and
    placed into the currently lightest bucket (ties broken by bucket index),
    so the packing — like everything else here — is deterministic.
    """
    order = sorted(enumerate(sized), key=lambda item: (-item[1][2], item[0]))
    parts: List[List[Tuple[int, List[str], List[int], int]]] = [
        [] for _ in range(max_shards)
    ]
    loads = [0] * max_shards
    for orig, (keys, slots, load) in order:
        target = min(range(max_shards), key=lambda b: (loads[b], b))
        parts[target].append((orig, keys, slots, load))
        loads[target] += load
    merged: List[Tuple[List[str], List[int], int]] = []
    for bucket in parts:
        if not bucket:
            continue
        bucket.sort()
        keys = [k for _, key_part, _, _ in bucket for k in key_part]
        slots = [s for _, _, slot_part, _ in bucket for s in slot_part]
        merged.append((keys, slots, sum(load for _, _, _, load in bucket)))
    return merged


def _make_shard(
    shard_idx: int, history: History, keys: List[str], sessions: List[Session]
) -> Shard:
    """Build the sub-history of one shard without mutating shared objects."""
    key_set = set(keys)
    initial = history.initial_transaction
    shard_initial: Optional[Transaction] = None
    if initial is not None:
        shard_initial = Transaction(
            txn_id=initial.txn_id,
            operations=[op for op in initial.operations if op.key in key_set],
            session_id=initial.session_id,
            status=initial.status,
            start_ts=initial.start_ts,
            finish_ts=initial.finish_ts,
        )
    shard_sessions = [
        Session(session_id=s.session_id, transactions=list(s.transactions))
        for s in sessions
    ]
    num = sum(
        1 for s in shard_sessions for t in s.transactions if t.committed
    )
    return Shard(
        index=shard_idx,
        history=History(shard_sessions, initial_transaction=shard_initial),
        keys=keys,
        session_ids=[s.session_id for s in shard_sessions],
        num_transactions=num,
    )
