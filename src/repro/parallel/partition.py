"""Key-connectivity partitioning of histories into checkable shards.

Two transactions can only ever be joined by a dependency edge when they
touch a common object (WR/WW/RW are per-key) or follow each other in a
session (SO).  Union-finding objects that co-occur in a transaction — and
then merging the components bridged by multi-component sessions — therefore
yields shards with **no dependency edge between them**: each shard can be
checked independently, and for SER and SI the conjunction of the shard
verdicts equals the serial verdict (real-time edges are the one global
relation; :mod:`repro.parallel.merge` handles SSER with a merged check).

Sessions that span otherwise-disjoint key groups are the fallback case:
their components are merged into a single residual shard rather than split,
so the session order is never cut.  Aborted and unknown-outcome
transactions participate in connectivity too — their writes anchor the
read-provenance pre-pass, which must stay shard-local.

The partition is fully deterministic (component order follows first key
appearance; an optional ``max_shards`` cap coalesces shards greedily by
size) and — crucially — independent of the worker count, so running the
same history with 1 or 8 workers produces identical shard checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.index import HistoryIndex
from ..core.model import History, Session, Transaction

__all__ = ["Shard", "partition_history"]

#: Default cap on the number of shards the executor fans out over.  Fixed
#: (never derived from the worker count) so results are reproducible across
#: worker counts; 32 keeps per-shard pickling overhead negligible while
#: leaving plenty of slack for load balancing.
DEFAULT_MAX_SHARDS = 32


@dataclass
class Shard:
    """One independently checkable slice of a history."""

    index: int
    history: History
    keys: List[str]
    session_ids: List[int]
    #: Committed transactions in the shard (excluding ``⊥T``).
    num_transactions: int


def partition_history(
    history: History,
    *,
    index: Optional[HistoryIndex] = None,
    max_shards: Optional[int] = DEFAULT_MAX_SHARDS,
) -> List[Shard]:
    """Split ``history`` into key-connected, session-closed shards.

    Returns a single shard wrapping the original history when the history is
    fully connected (or has no keys at all).  The union of the shard
    sub-histories covers every transaction exactly once, and the initial
    transaction ``⊥T`` is restricted to each shard's keys.
    """
    if index is None:
        index = HistoryIndex.build(history)
    num_keys = len(index.key_names)
    if num_keys == 0 or not history.sessions:
        return [_whole_history_shard(history, index)]

    parent = list(range(num_keys))

    def find(k: int) -> int:
        root = k
        while parent[root] != root:
            root = parent[root]
        while parent[k] != root:  # path compression
            parent[k], k = root, parent[k]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    # 1. Keys co-accessed by one transaction belong together (``⊥T`` exempt:
    #    it touches every key by construction and carries no constraint).
    for dense, key_ids in enumerate(index.txn_keys):
        if index.txn_ids[dense] == _initial_id(history):
            continue
        for other in key_ids[1:]:
            union(key_ids[0], other)

    # 2. Sessions must stay whole: merge the components a session bridges.
    for session in history.sessions:
        anchor: Optional[int] = None
        for txn in session.transactions:
            key_ids = index.txn_keys[index.txn_dense[txn.txn_id]]
            if not key_ids:
                continue
            if anchor is None:
                anchor = key_ids[0]
            else:
                union(anchor, key_ids[0])

    # 3. Number components by first key appearance (deterministic).
    component_of_root: Dict[int, int] = {}
    keys_per_component: List[List[str]] = []
    for kid in range(num_keys):
        root = find(kid)
        slot = component_of_root.get(root)
        if slot is None:
            slot = len(keys_per_component)
            component_of_root[root] = slot
            keys_per_component.append([])
        keys_per_component[slot].append(index.key_names[kid])

    # 4. Assign sessions to components (keyless sessions ride in shard 0).
    sessions_per_component: List[List[Session]] = [[] for _ in keys_per_component]
    for session in history.sessions:
        slot = 0
        for txn in session.transactions:
            key_ids = index.txn_keys[index.txn_dense[txn.txn_id]]
            if key_ids:
                slot = component_of_root[find(key_ids[0])]
                break
        sessions_per_component[slot].append(session)

    if len(keys_per_component) <= 1:
        return [_whole_history_shard(history, index)]

    groups = list(zip(keys_per_component, sessions_per_component))
    if max_shards is not None and len(groups) > max_shards:
        groups = _coalesce(groups, max_shards)

    shards: List[Shard] = []
    for shard_idx, (keys, sessions) in enumerate(groups):
        shards.append(_make_shard(shard_idx, history, keys, sessions))
    return shards


def _initial_id(history: History) -> Optional[int]:
    initial = history.initial_transaction
    return initial.txn_id if initial is not None else None


def _whole_history_shard(history: History, index: HistoryIndex) -> Shard:
    return Shard(
        index=0,
        history=history,
        keys=list(index.key_names),
        session_ids=[s.session_id for s in history.sessions],
        num_transactions=index.num_committed,
    )


def _coalesce(groups, max_shards: int):
    """Greedily pack components into ``max_shards`` buckets by load.

    Components are taken largest-first (ties broken by original order) and
    placed into the currently lightest bucket (ties broken by bucket index),
    so the packing — like everything else here — is deterministic.
    """
    sized = sorted(
        enumerate(groups),
        key=lambda item: (-sum(len(s) for s in item[1][1]), item[0]),
    )
    parts: List[List] = [[] for _ in range(max_shards)]
    loads = [0] * max_shards
    for orig, (keys, sessions) in sized:
        target = min(range(max_shards), key=lambda b: (loads[b], b))
        parts[target].append((orig, keys, sessions))
        loads[target] += sum(len(s) for s in sessions)
    merged = []
    for bucket in parts:
        if not bucket:
            continue
        bucket.sort()
        keys = [k for _, key_part, _ in bucket for k in key_part]
        sessions = [s for _, _, session_part in bucket for s in session_part]
        merged.append((keys, sessions))
    return merged


def _make_shard(
    shard_idx: int, history: History, keys: List[str], sessions: List[Session]
) -> Shard:
    """Build the sub-history of one shard without mutating shared objects."""
    key_set = set(keys)
    initial = history.initial_transaction
    shard_initial: Optional[Transaction] = None
    if initial is not None:
        shard_initial = Transaction(
            txn_id=initial.txn_id,
            operations=[op for op in initial.operations if op.key in key_set],
            session_id=initial.session_id,
            status=initial.status,
            start_ts=initial.start_ts,
            finish_ts=initial.finish_ts,
        )
    shard_sessions = [
        Session(session_id=s.session_id, transactions=list(s.transactions))
        for s in sessions
    ]
    num = sum(
        1 for s in shard_sessions for t in s.transactions if t.committed
    )
    return Shard(
        index=shard_idx,
        history=History(shard_sessions, initial_transaction=shard_initial),
        keys=keys,
        session_ids=[s.session_id for s in shard_sessions],
        num_transactions=num,
    )
