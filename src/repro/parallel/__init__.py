"""Parallel sharded verification: partition, fan out, merge.

The subsystem splits a history into key-connected shards
(:mod:`~repro.parallel.partition`), checks every shard independently
across OS processes (:mod:`~repro.parallel.executor`), and merges the
verdicts (:mod:`~repro.parallel.merge`) under the invariant that sharded
verdicts equal serial verdicts on every history.  Reach it through
``MTChecker(workers=N)``, ``repro check --workers N``, or
:func:`check_parallel` directly.
"""

from .executor import check_parallel
from .merge import ShardOutcome, merge_shard_results, merge_sser_graphs
from .partition import DEFAULT_MAX_SHARDS, Shard, partition_columns, partition_history

__all__ = [
    "DEFAULT_MAX_SHARDS",
    "Shard",
    "ShardOutcome",
    "check_parallel",
    "merge_shard_results",
    "merge_sser_graphs",
    "partition_columns",
    "partition_history",
]
