"""Merging shard outcomes back into a single :class:`CheckResult`.

For SER and SI no dependency edge crosses a shard boundary, so the merged
verdict is simply the conjunction of the shard verdicts; violations are
concatenated in shard order, which makes the merged result deterministic
and identical across worker counts.

SSER is the exception: the real-time order ``RT`` relates transactions in
*different* shards, so a cycle can thread through several shards even when
each shard is internally acyclic (dependency path in shard A, RT hop to
shard B, dependency path there, RT hop back).  The merger therefore
reassembles the per-shard dependency edges into one graph, adds the global
(transitively reduced) real-time edges, and runs a single acyclicity check
— exactly the graph the serial ``CHECKSSER`` would have built, with the
expensive per-shard construction already done in parallel.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.checkers import classify_cycle
from ..core.csr import CSRGraph, EDGE_TYPE_CODES, WireCSR
from ..core.graph import DependencyGraph, EdgeType
from ..core.index import HistoryIndex
from ..core.result import CheckResult, IsolationLevel, Violation

__all__ = [
    "ShardOutcome",
    "merge_shard_results",
    "merge_sser_graphs",
    "merge_sser_csr",
]

#: Wire format of one dependency edge: ``(source, target, type name, key)``.
WireEdge = Tuple[int, int, str, Optional[str]]


@dataclass
class ShardOutcome:
    """What one shard check sends back to the merger (cheap to pickle)."""

    shard_index: int
    num_transactions: int
    #: SER/SI: the shard's full verdict.  SSER: INT pre-pass violations only.
    violations: List[Violation] = field(default_factory=list)
    #: SSER only: the shard's committed transaction ids (legacy wire path).
    nodes: Optional[List[int]] = None
    #: SSER only, legacy path: the shard's SO/WR/WW/RW edges, serialized.
    edges: Optional[List[WireEdge]] = None
    #: SSER only, dense path: the shard graph as compact CSR buffers — four
    #: raw ``array('i')`` byte strings instead of a pickled dict multigraph.
    csr: Optional[WireCSR] = None


def merge_shard_results(
    level: IsolationLevel,
    outcomes: List[ShardOutcome],
    *,
    elapsed_seconds: float,
) -> CheckResult:
    """Conjunction merge for SER/SI (and the SSER INT pre-pass).

    Outcomes must already be sorted by shard index; the merged violation
    list concatenates the failing shards' violations in that order.
    """
    num_transactions = sum(o.num_transactions for o in outcomes)
    violations: List[Violation] = []
    for outcome in outcomes:
        violations.extend(outcome.violations)
    if violations:
        result = CheckResult.violated(level, violations, num_transactions=num_transactions)
    else:
        result = CheckResult.ok(level, num_transactions)
    result.elapsed_seconds = elapsed_seconds
    return result


def merge_sser_graphs(
    outcomes: List[ShardOutcome],
    index: HistoryIndex,
    *,
    level: IsolationLevel = IsolationLevel.STRICT_SERIALIZABILITY,
    reduced_rt: bool = True,
    elapsed_seconds: float = 0.0,
) -> CheckResult:
    """Reassemble shard dependency graphs, add global RT, check acyclicity."""
    num_transactions = sum(o.num_transactions for o in outcomes)
    graph = DependencyGraph()
    for outcome in outcomes:
        for node in outcome.nodes or ():
            graph.add_node(node)
        for source, target, type_name, key in outcome.edges or ():
            graph.add_edge(source, target, EdgeType[type_name], key)

    committed_ids = index.committed_ids
    for source, target in index.real_time_pairs(reduced=reduced_rt):
        if source.txn_id in committed_ids and target.txn_id in committed_ids:
            graph.add_edge(source.txn_id, target.txn_id, EdgeType.RT)

    cycle = graph.find_cycle()
    if cycle is None:
        result = CheckResult.ok(level, num_transactions)
    else:
        violation = classify_cycle(cycle, graph, level=level)
        result = CheckResult.violated(level, [violation], num_transactions=num_transactions)
    result.elapsed_seconds = elapsed_seconds
    return result


def merge_sser_csr(
    outcomes: List[ShardOutcome],
    index: HistoryIndex,
    *,
    level: IsolationLevel = IsolationLevel.STRICT_SERIALIZABILITY,
    reduced_rt: bool = True,
    elapsed_seconds: float = 0.0,
) -> CheckResult:
    """Dense counterpart of :func:`merge_sser_graphs`.

    Shard workers ship their dependency graphs as compact ``array('i')``
    buffers (:meth:`~repro.core.csr.CSRGraph.to_wire`); the merger remaps
    each shard's local node/key interning onto the parent index's global
    one with two translation arrays, appends the global (reduced) RT edges,
    and runs a single Tarjan pass.  Only a rejection materialises the
    labeled multigraph, so the counterexample equals what the legacy merge
    would report.
    """
    num_transactions = sum(o.num_transactions for o in outcomes)
    # Only the index's dense accessors are consumed, so a columnar-built
    # index merges without materialising a single Transaction.
    node_ids = list(index.committed_txn_ids)
    global_dense = {txn_id: i for i, txn_id in enumerate(node_ids)}
    key_dense = index.key_dense

    src = array("i")
    dst = array("i")
    etype = array("i")
    key_id = array("i")
    src_append = src.append
    dst_append = dst.append
    et_append = etype.append
    kid_append = key_id.append
    for outcome in outcomes:
        if outcome.csr is None:
            continue
        shard = CSRGraph.from_wire(outcome.csr)
        node_map = array("i", [global_dense[txn_id] for txn_id in shard.node_ids])
        key_map = array("i", [key_dense[name] for name in shard.key_names])
        for s, t, e, k in zip(shard.src, shard.dst, shard.etype, shard.key_id):
            src_append(node_map[s])
            dst_append(node_map[t])
            et_append(e)
            kid_append(key_map[k] if k >= 0 else -1)

    rt_code = EDGE_TYPE_CODES[EdgeType.RT]
    for source_id, target_id in index.real_time_id_pairs(reduced=reduced_rt):
        s = global_dense.get(source_id)
        t = global_dense.get(target_id)
        if s is not None and t is not None:
            src_append(s)
            dst_append(t)
            et_append(rt_code)
            kid_append(-1)

    merged = CSRGraph(node_ids, index.key_names, src, dst, etype, key_id)
    if merged.has_cycle() is None:
        result = CheckResult.ok(level, num_transactions)
    else:
        graph = merged.to_multigraph()
        cycle = graph.find_cycle()
        violation = classify_cycle(cycle, graph, level=level)
        result = CheckResult.violated(level, [violation], num_transactions=num_transactions)
    result.elapsed_seconds = elapsed_seconds
    return result


def serialize_edges(graph: DependencyGraph) -> List[WireEdge]:
    """Flatten a dependency graph into picklable wire edges (sorted)."""
    return sorted(
        (edge.source, edge.target, edge.edge_type.name, edge.key)
        for edge in graph.edges()
    )
