"""Merging shard outcomes back into a single :class:`CheckResult`.

For SER and SI no dependency edge crosses a shard boundary, so the merged
verdict is simply the conjunction of the shard verdicts; violations are
concatenated in shard order, which makes the merged result deterministic
and identical across worker counts.

SSER is the exception: the real-time order ``RT`` relates transactions in
*different* shards, so a cycle can thread through several shards even when
each shard is internally acyclic (dependency path in shard A, RT hop to
shard B, dependency path there, RT hop back).  The merger therefore
reassembles the per-shard dependency edges into one graph, adds the global
(transitively reduced) real-time edges, and runs a single acyclicity check
— exactly the graph the serial ``CHECKSSER`` would have built, with the
expensive per-shard construction already done in parallel.

Since the scale-out refactor the reassembly itself is **tree-shaped**:
:func:`merge_csr_wires` pairwise-merges two shard CSR wire buffers (union
interning, edge rows appended left-then-right through node/key remap
arrays), which the executor schedules across the worker pool so merge cost
is O(log shards) wall-clock instead of one serial global pass.  Because a
pairwise merge of *adjacent* shards preserves the overall edge
concatenation order, :func:`finalize_sser_wires` produces byte-identical
edge columns — and therefore identical verdicts and labeled cycles — for
every reduction-tree shape, including the degenerate single-wire tree.
The legacy (``dense=False``) edge-tuple path is routed through the same
remap helpers via :func:`wire_from_edges`, so the two paths cannot drift.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.checkers import classify_cycle
from ..core.csr import CSRGraph, EDGE_TYPE_CODES, WireCSR
from ..core.graph import DependencyGraph, EdgeType
from ..core.index import HistoryIndex
from ..core.result import CheckResult, IsolationLevel, Violation

__all__ = [
    "ShardOutcome",
    "merge_shard_results",
    "merge_sser_graphs",
    "merge_sser_csr",
    "merge_csr_wires",
    "finalize_sser_wires",
    "wire_from_edges",
]

#: Wire format of one dependency edge: ``(source, target, type name, key)``.
WireEdge = Tuple[int, int, str, Optional[str]]

_RT_CODE = EDGE_TYPE_CODES[EdgeType.RT]


@dataclass
class ShardOutcome:
    """What one shard check sends back to the merger (cheap to pickle)."""

    shard_index: int
    num_transactions: int
    #: SER/SI: the shard's full verdict.  SSER: INT pre-pass violations only.
    violations: List[Violation] = field(default_factory=list)
    #: SSER only: the shard's committed transaction ids (legacy wire path).
    nodes: Optional[List[int]] = None
    #: SSER only, legacy path: the shard's SO/WR/WW/RW edges, serialized.
    edges: Optional[List[WireEdge]] = None
    #: SSER only, dense path: the shard graph as compact CSR buffers — four
    #: raw ``array('i')`` byte strings instead of a pickled dict multigraph.
    csr: Optional[WireCSR] = None
    #: Telemetry snapshot recorded while checking the shard (JSON-safe
    #: numbers from ``MetricsRegistry.snapshot()``); ``None`` unless the
    #: payload carried ``with_metrics``.  The parent folds these into its
    #: registry — counters add, so any fold order yields the same totals.
    metrics: Optional[Dict[str, object]] = None


def merge_shard_results(
    level: IsolationLevel,
    outcomes: List[ShardOutcome],
    *,
    elapsed_seconds: float,
) -> CheckResult:
    """Conjunction merge for SER/SI (and the SSER INT pre-pass).

    Outcomes must already be sorted by shard index; the merged violation
    list concatenates the failing shards' violations in that order.
    """
    num_transactions = sum(o.num_transactions for o in outcomes)
    violations: List[Violation] = []
    for outcome in outcomes:
        violations.extend(outcome.violations)
    if violations:
        result = CheckResult.violated(level, violations, num_transactions=num_transactions)
    else:
        result = CheckResult.ok(level, num_transactions)
    result.elapsed_seconds = elapsed_seconds
    return result


# ----------------------------------------------------------------------
# Shared remap helpers: every SSER merge goes through these
# ----------------------------------------------------------------------
def _remap_arrays(
    wire: WireCSR,
    node_dense: Dict[int, int],
    key_dense: Dict[str, int],
) -> Tuple[array, array]:
    """Translation arrays from a wire graph's interning onto a target one."""
    node_map = array("i", [node_dense[txn_id] for txn_id in wire[0]])
    key_map = array("i", [key_dense[name] for name in wire[1]])
    return node_map, key_map


def merge_csr_wires(left: WireCSR, right: WireCSR) -> WireCSR:
    """One tree-reduction step: merge two shard CSR wires into one.

    The merged interning is the left wire's node ids / key names followed
    by the right wire's unseen ones (shards share at most ``⊥T`` and no
    keys, but the union is computed generally); edge rows are the left
    wire's followed by the right wire's, each translated through remap
    arrays.  Merging adjacent wires therefore preserves the global edge
    concatenation order, which keeps the final merged graph byte-identical
    for every reduction-tree shape.  Runs in worker processes — both
    inputs and the result are compact picklable buffers.
    """
    node_ids: List[int] = list(left[0])
    node_dense: Dict[int, int] = {txn_id: i for i, txn_id in enumerate(node_ids)}
    for txn_id in right[0]:
        if txn_id not in node_dense:
            node_dense[txn_id] = len(node_ids)
            node_ids.append(txn_id)
    key_names: List[str] = list(left[1])
    key_dense: Dict[str, int] = {name: i for i, name in enumerate(key_names)}
    for name in right[1]:
        if name not in key_dense:
            key_dense[name] = len(key_names)
            key_names.append(name)

    merged = CSRGraph(node_ids, key_names)
    for wire in (left, right):
        merged.append_remapped(wire, *_remap_arrays(wire, node_dense, key_dense))
    return merged.to_wire()


def finalize_sser_wires(
    wires: Sequence[WireCSR],
    index: HistoryIndex,
    *,
    num_transactions: int,
    level: IsolationLevel = IsolationLevel.STRICT_SERIALIZABILITY,
    reduced_rt: bool = True,
    elapsed_seconds: float = 0.0,
) -> CheckResult:
    """Remap merged shard wires onto the global index, add RT, check cycles.

    The parent's final (cheap) step of the SSER merge: every wire's edge
    rows are translated onto the global index's node/key interning in
    order, the global (reduced) real-time edges are appended, and a single
    Tarjan pass settles acyclicity.  Only a rejection materialises the
    labeled multigraph, so the counterexample is identical whether the
    wires arrive one-per-shard (flat merge) or as a single tree-reduced
    root.
    """
    # Only the index's dense accessors are consumed, so a columnar-built
    # index merges without materialising a single Transaction.
    node_ids = list(index.committed_txn_ids)
    global_dense = {txn_id: i for i, txn_id in enumerate(node_ids)}
    merged = CSRGraph(node_ids, index.key_names)
    for wire in wires:
        merged.append_remapped(
            wire, *_remap_arrays(wire, global_dense, index.key_dense)
        )

    src_append = merged.src.append
    dst_append = merged.dst.append
    et_append = merged.etype.append
    kid_append = merged.key_id.append
    for source_id, target_id in index.real_time_id_pairs(reduced=reduced_rt):
        s = global_dense.get(source_id)
        t = global_dense.get(target_id)
        if s is not None and t is not None:
            src_append(s)
            dst_append(t)
            et_append(_RT_CODE)
            kid_append(-1)

    if merged.has_cycle() is None:
        result = CheckResult.ok(level, num_transactions)
    else:
        graph = merged.to_multigraph()
        cycle = graph.find_cycle()
        violation = classify_cycle(cycle, graph, level=level)
        result = CheckResult.violated(level, [violation], num_transactions=num_transactions)
    result.elapsed_seconds = elapsed_seconds
    return result


def wire_from_edges(
    nodes: Sequence[int], edges: Sequence[WireEdge]
) -> WireCSR:
    """Encode a legacy edge-tuple shard outcome as CSR wire buffers.

    The bridge that routes the ``dense=False`` worker path through the
    same remap helpers as the dense one: node interning follows the
    outcome's (sorted) node list, keys are interned in first-appearance
    order, and edge types map through :data:`~repro.core.csr.EDGE_TYPE_CODES`.
    """
    node_dense = {txn_id: i for i, txn_id in enumerate(nodes)}
    key_names: List[str] = []
    key_dense: Dict[str, int] = {}
    graph = CSRGraph(nodes, key_names)
    src_append = graph.src.append
    dst_append = graph.dst.append
    et_append = graph.etype.append
    kid_append = graph.key_id.append
    for source, target, type_name, key in edges:
        if key is None:
            kid = -1
        else:
            kid = key_dense.get(key, -1)
            if kid < 0:
                kid = len(key_names)
                key_dense[key] = kid
                key_names.append(key)
        src_append(node_dense[source])
        dst_append(node_dense[target])
        et_append(EDGE_TYPE_CODES[EdgeType[type_name]])
        kid_append(kid)
    graph.key_names = key_names
    return graph.to_wire()


# ----------------------------------------------------------------------
# Level mergers
# ----------------------------------------------------------------------
def merge_sser_graphs(
    outcomes: List[ShardOutcome],
    index: HistoryIndex,
    *,
    level: IsolationLevel = IsolationLevel.STRICT_SERIALIZABILITY,
    reduced_rt: bool = True,
    elapsed_seconds: float = 0.0,
) -> CheckResult:
    """Legacy-path SSER merge: edge tuples in, one global acyclicity check.

    Each outcome's serialized edge list is first encoded as CSR wire
    buffers (:func:`wire_from_edges`) and then merged through exactly the
    remap/finalize helpers the dense path uses, so legacy and dense merged
    verdicts are pinned to each other by construction
    (``tests/test_scaleout.py`` asserts it end to end).
    """
    num_transactions = sum(o.num_transactions for o in outcomes)
    wires = [
        wire_from_edges(outcome.nodes or [], outcome.edges or [])
        for outcome in outcomes
    ]
    return finalize_sser_wires(
        wires,
        index,
        num_transactions=num_transactions,
        level=level,
        reduced_rt=reduced_rt,
        elapsed_seconds=elapsed_seconds,
    )


def merge_sser_csr(
    outcomes: List[ShardOutcome],
    index: HistoryIndex,
    *,
    level: IsolationLevel = IsolationLevel.STRICT_SERIALIZABILITY,
    reduced_rt: bool = True,
    elapsed_seconds: float = 0.0,
) -> CheckResult:
    """Dense SSER merge: shard CSR wires in, one global acyclicity check.

    Shard workers ship their dependency graphs as compact ``array('i')``
    buffers (:meth:`~repro.core.csr.CSRGraph.to_wire`); this remaps each
    shard's local node/key interning onto the parent index's global one,
    appends the global (reduced) RT edges, and runs a single Tarjan pass.
    The executor may first tree-reduce the wires pairwise in the pool
    (:func:`merge_csr_wires`) and hand a single root wire here — the
    result is byte-identical either way.
    """
    num_transactions = sum(o.num_transactions for o in outcomes)
    wires = [outcome.csr for outcome in outcomes if outcome.csr is not None]
    return finalize_sser_wires(
        wires,
        index,
        num_transactions=num_transactions,
        level=level,
        reduced_rt=reduced_rt,
        elapsed_seconds=elapsed_seconds,
    )


def serialize_edges(graph: DependencyGraph) -> List[WireEdge]:
    """Flatten a dependency graph into picklable wire edges (sorted)."""
    return sorted(
        (edge.source, edge.target, edge.edge_type.name, edge.key)
        for edge in graph.edges()
    )
