"""Async database adapters: the coroutine face of the adapter protocol.

The threaded :class:`~repro.adapters.collector.Collector` pays one OS
thread per session, which caps realistic session counts in the low
thousands.  The async collection plane multiplexes sessions as coroutines
instead, and this module supplies its driver side:

* :class:`AsyncAdapterSession` / :class:`AsyncDatabaseAdapter` — the
  ``await``-able mirror of :class:`~repro.adapters.base.AdapterSession` /
  :class:`~repro.adapters.base.DatabaseAdapter`.
* :class:`AsyncSimulatedAdapter` — a *native* async adapter over the
  in-process simulator.  The event loop serializes all sessions' calls by
  construction (no lock needed); each operation yields to the loop
  afterwards, so transactions from different coroutines genuinely
  interleave mid-flight — the same "concurrency = interleaving of atomic
  steps" model as the threaded simulated adapter, minus the threads.
* :class:`BridgedAsyncAdapter` — a thread-offload bridge wrapping *any*
  sync adapter.  Every session gets its own single-thread **lane**, so
  thread-affine clients (``sqlite3`` connections) are only ever touched
  from one thread, and calls from the event loop are queued to the lane
  and awaited.  Lanes are daemon threads for the same reason the threaded
  collector's workers are: a wedged adapter call can be abandoned by the
  deadline watchdog without hanging interpreter exit.
* :func:`ensure_async_adapter` / :func:`make_async_adapter` — coercion
  helpers used by :class:`~repro.adapters.acollector.AsyncCollector` and
  the CLI.
"""

from __future__ import annotations

import abc
import asyncio
import queue
import threading
from typing import Iterable, Optional, Union

from ..core.result import IsolationLevel
from ..db.database import Database
from ..db.errors import TransactionAborted
from ..db.faults import FaultPlan, FaultyEngine
from .base import (
    AdapterAborted,
    AdapterCapabilities,
    AdapterError,
    AdapterStateError,
    DatabaseAdapter,
)
from .simulated import _ENGINE_LEVELS

__all__ = [
    "AsyncAdapterSession",
    "AsyncDatabaseAdapter",
    "AsyncSimulatedAdapter",
    "AsyncSimulatedSession",
    "BridgedAsyncAdapter",
    "BridgedAsyncSession",
    "ensure_async_adapter",
    "make_async_adapter",
]


class AsyncAdapterSession(abc.ABC):
    """One client session driving transactions with coroutines.

    The contract mirrors :class:`~repro.adapters.base.AdapterSession`
    verbatim — including the abort-on-failure and idempotent-abort rules —
    with every call awaitable.  A session is owned by one coroutine and is
    not safe for concurrent awaits.
    """

    @abc.abstractmethod
    async def begin(self) -> None:
        """Start a transaction."""

    @abc.abstractmethod
    async def read(self, key: str) -> Optional[int]:
        """Read ``key`` inside the open transaction (``None`` = absent)."""

    @abc.abstractmethod
    async def write(self, key: str, value: int) -> None:
        """Write ``key`` inside the open transaction."""

    @abc.abstractmethod
    async def commit(self) -> None:
        """Commit; raises :class:`~repro.db.errors.TransactionAborted`
        (usually :class:`~repro.adapters.base.AdapterAborted`) on failure."""

    @abc.abstractmethod
    async def abort(self) -> None:
        """Roll back the open transaction (idempotent)."""

    async def aclose(self) -> None:
        """Release the session's resources (default: abort leftovers)."""
        await self.abort()

    def abandon(self) -> None:
        """Drop the session without awaiting anything — the deadline
        watchdog's exit for sessions whose adapter call is wedged (an
        ``aclose`` would block behind the stuck call).  Default: no-op.
        """


class AsyncDatabaseAdapter(abc.ABC):
    """Factory of async sessions over one logical database."""

    @abc.abstractmethod
    def capabilities(self) -> AdapterCapabilities:
        """Static description of the adapter (shared with the sync side)."""

    @abc.abstractmethod
    async def session(self, session_id: int) -> AsyncAdapterSession:
        """Open the session for client ``session_id``."""

    async def setup(self, keys: Iterable[str], initial_value: int = 0) -> None:
        """Install the initial value for each key (the history's ``⊥T``)."""

    async def teardown(self) -> None:
        """Release adapter-owned resources (temp files, engines)."""

    async def __aenter__(self) -> "AsyncDatabaseAdapter":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.teardown()


# ----------------------------------------------------------------------
# Native async simulator
# ----------------------------------------------------------------------
class AsyncSimulatedSession(AsyncAdapterSession):
    """One simulator session; calls run inline on the event loop thread."""

    def __init__(
        self, database: Database, session_id: int, op_delay: float = 0.0
    ) -> None:
        self._db = database
        self._session_id = session_id
        self._op_delay = op_delay
        self._ctx = None

    async def begin(self) -> None:
        if self._ctx is not None:
            raise AdapterStateError("begin() inside an open transaction")
        self._ctx = self._db.begin(self._session_id)
        if self._op_delay > 0.0:
            # Modeled latency: yield right after the snapshot is taken so
            # other live coroutines begin/commit before this transaction
            # finishes — transactions genuinely overlap (and conflict).
            # With zero modeled latency nothing ever *waits*, and a
            # cooperative scheduler that has nothing to wait for runs the
            # transaction straight through: no gratuitous task switch, no
            # context save/restore — precisely the overhead the threaded
            # collector cannot avoid paying on every preemption.
            await asyncio.sleep(self._op_delay)

    async def read(self, key: str) -> Optional[int]:
        ctx = self._require_txn("read")
        try:
            value = self._db.read(ctx, key)
        except TransactionAborted as exc:
            self._aborted(exc)
        if self._op_delay > 0.0:
            await asyncio.sleep(self._op_delay)
        return value

    async def write(self, key: str, value: int) -> None:
        ctx = self._require_txn("write")
        try:
            self._db.write(ctx, key, value)
        except TransactionAborted as exc:
            self._aborted(exc)
        if self._op_delay > 0.0:
            await asyncio.sleep(self._op_delay)

    async def commit(self) -> None:
        ctx = self._require_txn("commit")
        try:
            self._db.commit(ctx)
        except TransactionAborted as exc:
            self._aborted(exc)
        self._ctx = None

    async def abort(self) -> None:
        ctx, self._ctx = self._ctx, None
        if ctx is not None:
            self._db.abort(ctx)

    # ------------------------------------------------------------------
    def _require_txn(self, op: str):
        if self._ctx is None:
            raise AdapterStateError(f"{op}() outside a transaction")
        return self._ctx

    def _aborted(self, exc: TransactionAborted) -> None:
        # The database already rolled the transaction back; re-badge the
        # abort so protocol-level callers can catch AdapterAborted too.
        self._ctx = None
        raise AdapterAborted(exc.reason, exc.txn_id) from exc



class AsyncSimulatedAdapter(AsyncDatabaseAdapter):
    """Native async adapter over the in-process simulator.

    Single-threaded by construction: every engine call runs on the event
    loop thread, so no lock is needed and none is taken — which is exactly
    why the async collector clears 3x+ the threaded collector's throughput
    on this adapter (same engine, no lock convoy, no thread scheduling).

    Args:
        isolation: engine name or :class:`~repro.core.result.IsolationLevel`
            (as accepted by :class:`~repro.db.database.Database`).
        faults: optional fault plan making the simulated database buggy.
        database: supply a pre-built database instead (overrides the other
            arguments); useful for tests that inspect engine state.
        op_delay: seconds each operation takes to "return" (an
            ``asyncio.sleep``, so other coroutines run meanwhile) —
            models per-operation client latency, mirroring the sync
            adapter's ``op_delay``.  0 disables it.
    """

    def __init__(
        self,
        isolation: Union[str, IsolationLevel] = "si",
        *,
        faults: Optional[FaultPlan] = None,
        database: Optional[Database] = None,
        op_delay: float = 0.0,
    ) -> None:
        self.database = (
            database if database is not None else Database(isolation, faults=faults)
        )
        self.op_delay = op_delay

    def capabilities(self) -> AdapterCapabilities:
        name = self.database.isolation_name
        faulty = isinstance(self.database.engine, FaultyEngine)
        return AdapterCapabilities(
            name=f"simulated[{name}{',faulty' if faulty else ''},async]",
            isolation_levels=() if faulty else _ENGINE_LEVELS.get(name, ()),
            concurrent_sessions=True,  # coroutines; calls serialized by the loop
            real_time=True,
        )

    async def session(self, session_id: int) -> AsyncSimulatedSession:
        return AsyncSimulatedSession(self.database, session_id, self.op_delay)

    async def setup(self, keys: Iterable[str], initial_value: int = 0) -> None:
        self.database.store.load_initial(keys, value=initial_value)

    def committed_value(self, key: str) -> Optional[int]:
        return self.database.committed_value(key)


# ----------------------------------------------------------------------
# Thread-offload bridge for sync adapters
# ----------------------------------------------------------------------
class _Lane:
    """A single daemon worker thread executing submitted calls in order.

    One lane per bridged session keeps thread-affine clients correct
    (``sqlite3`` raises if a connection crosses threads) and preserves the
    session's serial call order.  Results travel back to the event loop
    via ``call_soon_threadsafe``, so ``call`` is awaitable from exactly
    one loop at a time.
    """

    __slots__ = ("_calls", "_thread")

    def __init__(self, name: str) -> None:
        self._calls: "queue.SimpleQueue" = queue.SimpleQueue()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while True:
            item = self._calls.get()
            if item is None:
                return
            fn, future, loop = item
            try:
                result = fn()
            except BaseException as exc:  # noqa: BLE001 - forwarded to awaiter
                loop.call_soon_threadsafe(self._resolve, future, None, exc)
            else:
                loop.call_soon_threadsafe(self._resolve, future, result, None)

    @staticmethod
    def _resolve(future: "asyncio.Future", result, exc) -> None:
        if future.cancelled():
            return
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)

    async def call(self, fn):
        """Run ``fn()`` on the lane thread and await its result."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._calls.put((fn, future, loop))
        return await future

    def close(self) -> None:
        """Stop the worker after the calls already queued (non-blocking)."""
        self._calls.put(None)


class BridgedAsyncSession(AsyncAdapterSession):
    """A sync :class:`~repro.adapters.base.AdapterSession` driven over a
    dedicated lane thread."""

    def __init__(self, lane: _Lane, session) -> None:
        self._lane = lane
        self._session = session

    @classmethod
    async def open(
        cls, adapter: DatabaseAdapter, session_id: int
    ) -> "BridgedAsyncSession":
        lane = _Lane(f"aio-bridge-session-{session_id}")
        # The session is *created* on its lane too: sqlite3 connections
        # must be used from the thread that opened them.
        session = await lane.call(lambda: adapter.session(session_id))
        return cls(lane, session)

    async def begin(self) -> None:
        await self._lane.call(self._session.begin)

    async def read(self, key: str) -> Optional[int]:
        return await self._lane.call(lambda: self._session.read(key))

    async def write(self, key: str, value: int) -> None:
        await self._lane.call(lambda: self._session.write(key, value))

    async def commit(self) -> None:
        await self._lane.call(self._session.commit)

    async def abort(self) -> None:
        await self._lane.call(self._session.abort)

    async def aclose(self) -> None:
        try:
            await self._lane.call(self._session.close)
        finally:
            self._lane.close()

    def abandon(self) -> None:
        # The lane thread may be wedged inside an adapter call; it is a
        # daemon, so dropping the shutdown sentinel is all that is safe.
        self._lane.close()


class BridgedAsyncAdapter(AsyncDatabaseAdapter):
    """Async facade over any sync adapter via per-session lane threads.

    The bridge trades one thread per *active* session for the ability to
    run unmodified sync adapters (SQLite, chaos-wrapped, simulated) under
    the async collector — the coroutine scheduler still owns pipelining,
    backpressure, and deadlines, so a bounded ``max_inflight`` keeps the
    thread count at the worker budget rather than the session count.
    """

    def __init__(self, adapter: DatabaseAdapter) -> None:
        self.sync_adapter = adapter

    def capabilities(self) -> AdapterCapabilities:
        return self.sync_adapter.capabilities()

    async def session(self, session_id: int) -> BridgedAsyncSession:
        return await BridgedAsyncSession.open(self.sync_adapter, session_id)

    async def setup(self, keys: Iterable[str], initial_value: int = 0) -> None:
        keys = list(keys)
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.sync_adapter.setup(keys, initial_value)
        )

    async def teardown(self) -> None:
        await asyncio.get_running_loop().run_in_executor(
            None, self.sync_adapter.teardown
        )


def ensure_async_adapter(
    adapter: Union[DatabaseAdapter, AsyncDatabaseAdapter],
    *,
    bridge: bool = True,
) -> AsyncDatabaseAdapter:
    """Coerce ``adapter`` to the async protocol.

    Native async adapters pass through; sync adapters are wrapped in the
    thread-offload :class:`BridgedAsyncAdapter` unless ``bridge`` is
    ``False``, in which case :class:`~repro.adapters.base.AdapterError`
    is raised (the caller asked for a no-threads guarantee the adapter
    cannot meet).
    """
    if isinstance(adapter, AsyncDatabaseAdapter):
        return adapter
    if not bridge:
        raise AdapterError(
            f"adapter {adapter.capabilities().name!r} has no native async "
            "support and the thread bridge is disabled (--no-bridge); use a "
            "native async adapter or re-enable the bridge"
        )
    return BridgedAsyncAdapter(adapter)


def make_async_adapter(
    name: str,
    *,
    isolation: Union[str, IsolationLevel] = "si",
    faults: Optional[FaultPlan] = None,
    bridge: bool = True,
    chaos: Optional[str] = None,
    **kwargs,
) -> AsyncDatabaseAdapter:
    """Async counterpart of :func:`repro.adapters.make_adapter`.

    ``simulated`` without chaos yields the native
    :class:`AsyncSimulatedAdapter`; everything else (SQLite, chaos-wrapped
    adapters) is built synchronously and bridged — or rejected with
    :class:`~repro.adapters.base.AdapterError` when ``bridge`` is off.
    """
    if name == "simulated" and chaos is None:
        return AsyncSimulatedAdapter(isolation, faults=faults)
    from . import make_adapter  # late import: adapters/__init__ imports us

    sync = make_adapter(name, isolation=isolation, faults=faults, chaos=chaos, **kwargs)
    return ensure_async_adapter(sync, bridge=bridge)
