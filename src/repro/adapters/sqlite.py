"""A real database behind the adapter protocol: stdlib ``sqlite3``.

SQLite is the one genuinely independent transactional engine every CI
machine already has, which makes it the zero-dependency way to exercise the
*end-to-end* claim: mini-transaction workloads run over a real client
protocol against a real storage engine, and only the observed history
reaches the checker.

Engine characteristics that matter for checking:

* SQLite serializes writers (one write transaction at a time), so histories
  collected from a healthy SQLite satisfy serializability — and strict
  serializability, since commits are totally ordered in real time.
* ``BEGIN IMMEDIATE`` takes the write lock up front: conflicts surface as
  ``database is locked`` at ``begin``.  ``BEGIN DEFERRED`` takes locks
  lazily: conflicts surface mid-transaction or at commit.  Both are mapped
  onto the retryable-abort path by
  :func:`repro.db.errors.retryable_sqlite_abort`.
* WAL mode allows readers to proceed concurrently with one writer; rollback
  journal mode serializes more coarsely.  Both modes are supported so the
  end-to-end suite can exercise either.

Each :class:`SQLiteSession` owns one connection in autocommit mode
(``isolation_level=None``) and drives transactions explicitly, so the
recorded begin/commit points are the ones the engine actually saw.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
from typing import Iterable, Optional

from ..db.errors import retryable_sqlite_abort
from ..resilience import RetryPolicy
from ..resilience.failpoints import FailpointError, fail_point
from .base import (
    AdapterAborted,
    AdapterCapabilities,
    AdapterSession,
    AdapterStateError,
    DatabaseAdapter,
)

__all__ = ["SQLiteAdapter", "SQLiteSession"]

_BEGIN_MODES = ("immediate", "deferred")


class SQLiteSession(AdapterSession):
    """One SQLite connection driving explicit transactions."""

    def __init__(self, path: str, *, mode: str, busy_timeout_ms: int) -> None:
        # One connection per session, created in the thread that uses it.
        self._conn = sqlite3.connect(path, timeout=busy_timeout_ms / 1000.0)
        self._conn.isolation_level = None  # autocommit: we issue BEGIN ourselves
        self._conn.execute(f"PRAGMA busy_timeout = {int(busy_timeout_ms)}")
        self._mode = mode
        self._in_txn = False

    def begin(self) -> None:
        if self._in_txn:
            raise AdapterStateError("begin() inside an open transaction")
        self._execute(f"BEGIN {self._mode.upper()}")
        self._in_txn = True

    def read(self, key: str) -> Optional[int]:
        self._require_txn("read")
        row = self._execute("SELECT value FROM kv WHERE key = ?", (key,)).fetchone()
        return None if row is None else int(row[0])

    def write(self, key: str, value: int) -> None:
        self._require_txn("write")
        self._execute(
            "INSERT INTO kv (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    def commit(self) -> None:
        self._require_txn("commit")
        try:
            # The chaos hook: an armed ``sqlite.commit`` rule surfaces as a
            # retryable abort below, exercising the collector's real
            # backoff-and-retry path against a real engine.
            fail_point("sqlite.commit")
            self._execute("COMMIT")
        except FailpointError as exc:
            self.abort()
            self._in_txn = False
            raise AdapterAborted(f"injected commit failure: {exc}") from exc
        except Exception:
            self.abort()
            raise
        self._in_txn = False

    def abort(self) -> None:
        if not self._in_txn:
            return
        self._in_txn = False
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.OperationalError:
            pass  # the failed statement already rolled the transaction back

    def close(self) -> None:
        self.abort()
        self._conn.close()

    # ------------------------------------------------------------------
    def _execute(self, sql: str, params: tuple = ()):  # type: ignore[type-arg]
        try:
            return self._conn.execute(sql, params)
        except sqlite3.OperationalError as exc:
            abort = retryable_sqlite_abort(exc)
            if abort is None:
                raise
            # Lock contention: roll back and surface as a retryable abort,
            # mirroring the simulator's conflict-abort handling.
            self.abort()
            raise AdapterAborted(abort.reason) from exc

    def _require_txn(self, op: str) -> None:
        if not self._in_txn:
            raise AdapterStateError(f"{op}() outside a transaction")


class SQLiteAdapter(DatabaseAdapter):
    """KV adapter over a SQLite database file.

    Args:
        path: database file; ``None`` creates (and owns) a temp file, removed
            by :meth:`teardown`.  ``:memory:`` is rejected — in-memory SQLite
            databases are per-connection, so sessions would not share state.
        mode: ``"immediate"`` (write lock at begin) or ``"deferred"``.
        wal: enable write-ahead logging (readers proceed under one writer).
        busy_timeout_ms: how long a session waits on a lock before the
            engine reports busy and the operation becomes a retryable abort.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        mode: str = "immediate",
        wal: bool = False,
        busy_timeout_ms: int = 2_000,
        busy_retry: Optional[RetryPolicy] = None,
    ) -> None:
        if mode not in _BEGIN_MODES:
            raise ValueError(f"mode must be one of {_BEGIN_MODES}, got {mode!r}")
        if path == ":memory:":
            raise ValueError("in-memory SQLite databases cannot be shared across sessions")
        self._owns_path = path is None
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-e2e-", suffix=".sqlite3")
            os.close(fd)
        self.path = path
        self.mode = mode
        self.wal = wal
        self.busy_timeout_ms = busy_timeout_ms
        # Admin statements (schema, setup, teardown reads) run outside the
        # recorded history, so a busy engine is retried here with backoff
        # rather than surfacing to the workload as a spurious failure.
        self.busy_retry = busy_retry or RetryPolicy(
            max_attempts=4, base_delay=0.01, max_delay=0.25, seed=0
        )
        self._admin(
            "CREATE TABLE IF NOT EXISTS kv (key TEXT PRIMARY KEY, value INTEGER NOT NULL)"
        )

    def capabilities(self) -> AdapterCapabilities:
        return AdapterCapabilities(
            name=f"sqlite[{self.mode}{',wal' if self.wal else ''}]",
            # Writers are serialized and commits are real-time ordered.
            isolation_levels=("SER", "SI", "SSER"),
            concurrent_sessions=True,
            real_time=True,
        )

    def session(self, session_id: int) -> SQLiteSession:
        return SQLiteSession(
            self.path, mode=self.mode, busy_timeout_ms=self.busy_timeout_ms
        )

    def setup(self, keys: Iterable[str], initial_value: int = 0) -> None:
        self._admin(
            "INSERT INTO kv (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            many=[(key, initial_value) for key in keys],
        )

    def teardown(self) -> None:
        if self._owns_path and os.path.exists(self.path):
            os.remove(self.path)
            for suffix in ("-wal", "-shm"):
                leftover = self.path + suffix
                if os.path.exists(leftover):
                    os.remove(leftover)

    def committed_value(self, key: str) -> Optional[int]:
        row = self._admin("SELECT value FROM kv WHERE key = ?", (key,), fetch=True)
        return None if row is None else int(row[0])

    # ------------------------------------------------------------------
    def _admin(self, sql: str, params: tuple = (), *, many=None, fetch: bool = False):
        """Run one administrative statement on a fresh, promptly-closed
        connection (the journal-mode pragma is applied here, once per file).
        Busy/locked errors are retried with backoff (``busy_retry``)."""
        return self.busy_retry.run(
            lambda: self._admin_once(sql, params, many=many, fetch=fetch),
            retry_on=sqlite3.OperationalError,
            should_retry=lambda exc: retryable_sqlite_abort(exc) is not None,
            component="sqlite_admin",
        )

    def _admin_once(self, sql: str, params: tuple, *, many, fetch: bool):
        conn = sqlite3.connect(self.path, timeout=self.busy_timeout_ms / 1000.0)
        try:
            journal = "WAL" if self.wal else "DELETE"
            conn.execute(f"PRAGMA journal_mode = {journal}")
            with conn:  # one transaction around the statement
                if many is not None:
                    conn.executemany(sql, many)
                    return None
                cursor = conn.execute(sql, params)
                return cursor.fetchone() if fetch else None
        finally:
            conn.close()
