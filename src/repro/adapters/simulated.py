"""The in-process simulator behind the adapter protocol.

Wrapping :class:`repro.db.database.Database` as a
:class:`~repro.adapters.base.DatabaseAdapter` puts every simulated engine
(SI, serializable, S2PL, read committed) and every
:class:`~repro.db.faults.FaultPlan` combination behind the same interface
the real-engine adapters implement, so one collection pipeline covers the
full matrix: correct engines, fault-injected engines, and real databases.

The simulator is single-threaded, so the adapter serializes all sessions'
calls behind one lock: threads still submit operations concurrently and the
OS scheduler still picks the interleaving, but each individual ``begin`` /
``read`` / ``write`` / ``commit`` executes atomically against the engine —
the same "concurrency = interleaving of atomic steps" model the serial
runner uses, now driven by real threads.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Optional, Union

from ..core.result import IsolationLevel
from ..db.database import Database
from ..db.errors import TransactionAborted
from ..db.faults import FaultPlan, FaultyEngine
from .base import (
    AdapterAborted,
    AdapterCapabilities,
    AdapterSession,
    AdapterStateError,
    DatabaseAdapter,
)

__all__ = ["SimulatedAdapter", "SimulatedSession"]

#: Levels histories from each (correct) engine are expected to satisfy.
_ENGINE_LEVELS = {
    "si": ("SI",),
    "snapshot-isolation": ("SI",),
    "serializable": ("SER", "SI"),
    "ser": ("SER", "SI"),
    "occ": ("SER", "SI"),
    "s2pl": ("SSER", "SER", "SI"),
    "sser": ("SSER", "SER", "SI"),
    "read-committed": (),
    "rc": (),
}


class SimulatedSession(AdapterSession):
    """One simulator session; every call runs under the database lock."""

    def __init__(
        self,
        database: Database,
        session_id: int,
        lock: threading.Lock,
        op_delay: float = 0.0,
    ) -> None:
        self._db = database
        self._session_id = session_id
        self._lock = lock
        self._op_delay = op_delay
        self._ctx = None

    def begin(self) -> None:
        if self._ctx is not None:
            raise AdapterStateError("begin() inside an open transaction")
        with self._lock:
            self._ctx = self._db.begin(self._session_id)
        self._yield()

    def read(self, key: str) -> Optional[int]:
        ctx = self._require_txn("read")
        with self._lock:
            try:
                value = self._db.read(ctx, key)
            except TransactionAborted as exc:
                self._aborted(exc)
        self._yield()
        return value

    def write(self, key: str, value: int) -> None:
        ctx = self._require_txn("write")
        with self._lock:
            try:
                self._db.write(ctx, key, value)
            except TransactionAborted as exc:
                self._aborted(exc)
        self._yield()

    def commit(self) -> None:
        ctx = self._require_txn("commit")
        with self._lock:
            try:
                self._db.commit(ctx)
            except TransactionAborted as exc:
                self._aborted(exc)
        self._ctx = None

    def abort(self) -> None:
        ctx, self._ctx = self._ctx, None
        if ctx is None:
            return
        with self._lock:
            self._db.abort(ctx)

    # ------------------------------------------------------------------
    def _require_txn(self, op: str):
        if self._ctx is None:
            raise AdapterStateError(f"{op}() outside a transaction")
        return self._ctx

    def _aborted(self, exc: TransactionAborted) -> None:
        # The database already rolled the transaction back; re-badge the
        # abort so protocol-level callers can catch AdapterAborted too.
        self._ctx = None
        raise AdapterAborted(exc.reason, exc.txn_id) from exc

    def _yield(self) -> None:
        """Hold the GIL hostage briefly outside the lock so other session
        threads interleave mid-transaction (see ``op_delay``)."""
        if self._op_delay > 0.0:
            time.sleep(self._op_delay)


class SimulatedAdapter(DatabaseAdapter):
    """Adapter over the in-process simulator.

    Args:
        isolation: engine name or :class:`~repro.core.result.IsolationLevel`
            (as accepted by :class:`~repro.db.database.Database`).
        faults: optional fault plan making the simulated database buggy.
        database: supply a pre-built database instead (overrides the other
            arguments); useful for tests that inspect engine state.
        op_delay: seconds each session sleeps (outside the lock) after an
            operation.  With the GIL, threaded transactions over the locked
            simulator often run start-to-finish within one scheduler slice
            and never actually overlap; a sub-millisecond delay forces the
            mid-transaction interleavings (and hence conflicts, aborts, and
            fault-injection opportunities) that the serial runner's
            step-scheduler produces by construction.  0 disables it.
    """

    def __init__(
        self,
        isolation: Union[str, IsolationLevel] = "si",
        *,
        faults: Optional[FaultPlan] = None,
        database: Optional[Database] = None,
        op_delay: float = 0.0,
    ) -> None:
        self.database = database if database is not None else Database(isolation, faults=faults)
        self.op_delay = op_delay
        self._lock = threading.Lock()

    def capabilities(self) -> AdapterCapabilities:
        name = self.database.isolation_name
        faulty = isinstance(self.database.engine, FaultyEngine)
        return AdapterCapabilities(
            name=f"simulated[{name}{',faulty' if faulty else ''}]",
            isolation_levels=() if faulty else _ENGINE_LEVELS.get(name, ()),
            concurrent_sessions=True,  # serialized internally by the adapter lock
            real_time=True,  # the logical clock is monotonic across sessions
        )

    def session(self, session_id: int) -> SimulatedSession:
        return SimulatedSession(self.database, session_id, self._lock, self.op_delay)

    def setup(self, keys: Iterable[str], initial_value: int = 0) -> None:
        self.database.store.load_initial(keys, value=initial_value)

    def committed_value(self, key: str) -> Optional[int]:
        with self._lock:
            return self.database.committed_value(key)
