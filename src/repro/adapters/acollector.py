"""The async collection plane: coroutine session multiplexing at scale.

The threaded :class:`~repro.adapters.collector.Collector` spends one OS
thread per session and materialises a :class:`~repro.core.model.Transaction`
per attempt, which BENCH_e2e shows is the end-to-end bottleneck (collection
runs an order of magnitude slower than checking).  :class:`AsyncCollector`
keeps the exact recording contract — it shares
:class:`~repro.adapters.collector.CollectorBase` with the threaded
collector, so clock stamping, txn-id allocation, unique written values and
deadline bookkeeping literally cannot drift — but changes the execution
model on both axes:

* **Coroutines, not threads.**  N logical sessions run as coroutines over
  a bounded worker budget (``max_inflight``); a native async adapter needs
  zero extra threads, a bridged sync adapter needs one lane thread per
  *active* session instead of per session.
* **Columns, not objects.**  Finished attempts are published as flat row
  tuples into a bounded ``asyncio.Queue`` and drained straight into a
  :class:`~repro.history.columnar.ColumnBuilder` — no ``Transaction`` or
  ``Operation`` object exists on the accept path.  A slow consumer (a
  :class:`~repro.history.columnar.SegmentWriter` sealing, an
  ``EpochLogWriter`` fsyncing) fills the queue and the publishing
  coroutines stall on ``put`` — backpressure all the way into the drivers.

Ordering soundness: a publisher ticks the shared clock for ``finish_ts``
and enqueues the row with **no intervening await**, so on the single
event-loop thread queue order equals finish-timestamp order and hooks
observe transactions exactly as they would from the threaded collector.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from .. import obs
from ..core.model import (
    History,
    Operation,
    OpType,
    STATUS_CODES,
    STATUS_FROM_CODE,
    Transaction,
    TransactionStatus,
)
from ..db.errors import TransactionAborted
from ..history.columnar import OP_READ, OP_WRITE, ColumnarHistory, ColumnBuilder
from ..resilience.failpoints import fail_point
from ..storage.clock import LogicalClock
from ..workloads.runner import RunStats
from ..workloads.spec import TransactionSpec, Workload
from .aio import AsyncDatabaseAdapter, ensure_async_adapter
from .base import DatabaseAdapter
from .collector import CollectorBase

__all__ = ["AsyncCollector", "AsyncCollectionResult"]

_COMMITTED = STATUS_CODES[TransactionStatus.COMMITTED]
_ABORTED = STATUS_CODES[TransactionStatus.ABORTED]
_UNKNOWN = STATUS_CODES[TransactionStatus.UNKNOWN]

#: One published row: (txn_id, session_id, status_code, start_ts,
#: finish_ts, op_kinds, op_keys, op_values) — parallel op lists, values
#: already resolved (reads observing nothing record ``initial_value``).
Row = Tuple[int, int, int, float, float, List[int], List[str], List[int]]


@dataclass
class _AsyncInFlight:
    """Published state of a session's current attempt (deadline watchdog)."""

    txn_id: int
    session_id: int
    start_ts: float
    started_mono: float
    op_kinds: List[int]
    op_keys: List[str]
    op_values: List[int]


@dataclass
class AsyncCollectionResult:
    """A columnar history collected by :class:`AsyncCollector`.

    The history never existed as objects — ``columns`` is the primary
    artifact and feeds :meth:`repro.core.checker.MTChecker.verify`
    directly; :attr:`history` materialises on demand for legacy consumers.
    """

    columns: ColumnarHistory
    stats: RunStats
    adapter_name: str = ""
    #: Sessions abandoned by the deadline watchdog (recorded as UNKNOWN).
    unknown: int = 0
    #: Times a publisher found the row queue full and had to stall.
    backpressure_stalls: int = 0

    @property
    def history(self) -> History:
        return self.columns.to_history()


class AsyncCollector(CollectorBase):
    """Asyncio workload driver over an (async or bridged sync) adapter.

    Accepts either an :class:`~repro.adapters.aio.AsyncDatabaseAdapter` or
    a plain sync :class:`~repro.adapters.base.DatabaseAdapter` (coerced via
    :func:`~repro.adapters.aio.ensure_async_adapter`).  Construction
    arguments shared with the threaded collector mean the same things;
    the additions:

    Args:
        max_inflight: concurrently *active* sessions.  Sessions beyond the
            budget wait on a semaphore; with a bridged adapter this also
            caps lane threads, so 10k logical sessions can run over a few
            hundred workers.
        queue_depth: bound of the finished-row queue between the session
            coroutines and the column drain — the backpressure valve.
        bridge: allow wrapping a sync adapter in the thread-offload
            bridge; ``False`` demands native async support and raises
            :class:`~repro.adapters.base.AdapterError` otherwise.
    """

    # All collector bookkeeping runs on the event-loop thread (bridge lane
    # threads only execute adapter calls, never collector state), so the
    # base class's locked id/value helpers are pure overhead here — bind
    # the lock-free variants instead.  The logic itself stays shared.
    _allocate_txn_id = CollectorBase._allocate_txn_id_unlocked
    _next_value = CollectorBase._next_value_unlocked

    def __init__(
        self,
        adapter: Union[DatabaseAdapter, AsyncDatabaseAdapter],
        *,
        max_inflight: int = 256,
        queue_depth: int = 1024,
        bridge: bool = True,
        **kwargs,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        if queue_depth <= 0:
            raise ValueError(f"queue_depth must be positive, got {queue_depth}")
        super().__init__(adapter, **kwargs)
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.bridge = bridge
        self._stalls = 0
        # Ticks also only ever happen on the loop thread; swap the locked
        # clock for its plain monotonic base.
        self._clock = LogicalClock()
        self._rows: Optional["asyncio.Queue[Optional[Row]]"] = None
        self._builder: Optional[ColumnBuilder] = None

    # ------------------------------------------------------------------
    def collect(self, workload: Workload) -> AsyncCollectionResult:
        """Run :meth:`collect_async` to completion on a private loop."""
        return asyncio.run(self.collect_async(workload))

    async def collect_async(self, workload: Workload) -> AsyncCollectionResult:
        """Execute the workload as session coroutines; return the columns."""
        started = time.perf_counter()
        stats = RunStats()
        adapter = ensure_async_adapter(self.adapter, bridge=self.bridge)
        if self.setup_keys:
            await adapter.setup(workload.keys, self.initial_value)

        builder = ColumnBuilder()
        # ⊥T must install what the database actually holds initially, or a
        # healthy engine would be flagged with spurious ThinAirReads.
        builder.seed_initial(workload.keys, self.initial_value)
        self._builder = builder
        self._stalls = 0
        # The queue exists to backpressure a downstream consumer; with no
        # hook installed the builder *is* the sink and rows go straight to
        # the columns — publishing costs one append, no queue, no drain.
        rows: Optional["asyncio.Queue[Optional[Row]]"] = (
            asyncio.Queue(maxsize=self.queue_depth)
            if self.on_transaction is not None
            else None
        )
        self._rows = rows
        drain = (
            asyncio.create_task(self._drain(rows, builder))
            if rows is not None
            else None
        )
        traffic = workload.traffic
        num_sessions = len(workload.sessions)
        watchdog = None
        if self.txn_deadline is not None:
            # Watchdog mode needs one cancellable task per session (the
            # deadline abandons exactly one session); bound concurrency
            # with a semaphore.
            semaphore = (
                asyncio.Semaphore(self.max_inflight)
                if num_sessions > self.max_inflight
                else None
            )
            tasks = {
                sid: asyncio.create_task(
                    self._session(adapter, sid, list(specs), semaphore, stats, traffic),
                    name=f"acollector-session-{sid}",
                )
                for sid, specs in enumerate(workload.sessions)
            }
            watchdog = asyncio.create_task(self._watchdog(tasks))
            runners = list(tasks.values())
        else:
            # Fast path: a fixed pool of ``max_inflight`` workers pulls
            # sessions off a shared iterator — task creation and
            # scheduling cost O(max_inflight), not O(sessions), which is
            # what keeps session-churn workloads cheap at 10k+ sessions.
            pending = iter(enumerate(workload.sessions))
            runners = [
                asyncio.create_task(
                    self._worker(adapter, pending, stats, traffic),
                    name=f"acollector-worker-{i}",
                )
                for i in range(min(self.max_inflight, num_sessions))
            ]
        results = await asyncio.gather(*runners, return_exceptions=True)
        if watchdog is not None:
            watchdog.cancel()
            try:
                await watchdog
            except asyncio.CancelledError:
                pass
        if rows is not None and drain is not None:
            await rows.put(None)  # drain sentinel: everything before it is flushed
            await drain
        errors = [
            exc
            for exc in results
            if isinstance(exc, BaseException)
            and not isinstance(exc, asyncio.CancelledError)
        ]
        if errors:
            raise errors[0]

        stats.wall_seconds = time.perf_counter() - started
        stats.logical_time = self._clock.now()
        if obs.enabled() and stats.wall_seconds > 0:
            obs.set_gauge(
                "repro_acollector_txns_per_second",
                stats.committed / stats.wall_seconds,
            )
        return AsyncCollectionResult(
            columns=builder.columns,
            stats=stats,
            adapter_name=adapter.capabilities().name,
            unknown=len(self._abandoned),
            backpressure_stalls=self._stalls,
        )

    # ------------------------------------------------------------------
    # Session coroutines
    # ------------------------------------------------------------------
    async def _worker(
        self,
        adapter: AsyncDatabaseAdapter,
        pending,
        stats: RunStats,
        traffic,
    ) -> None:
        # Single-threaded loop: plain iterator sharing is race-free.
        for session_id, specs in pending:
            await self._run_session(adapter, session_id, list(specs), stats, traffic)

    async def _session(
        self,
        adapter: AsyncDatabaseAdapter,
        session_id: int,
        specs: List[TransactionSpec],
        semaphore: Optional[asyncio.Semaphore],
        stats: RunStats,
        traffic,
    ) -> None:
        if semaphore is not None:
            async with semaphore:
                await self._run_session(adapter, session_id, specs, stats, traffic)
        else:
            await self._run_session(adapter, session_id, specs, stats, traffic)

    async def _run_session(
        self,
        adapter: AsyncDatabaseAdapter,
        session_id: int,
        specs: List[TransactionSpec],
        stats: RunStats,
        traffic,
    ) -> None:
        session = await adapter.session(session_id)
        obs.gauge_add("repro_acollector_sessions_in_flight", 1)
        try:
            for spec_index, spec in enumerate(specs):
                if traffic is not None:
                    idle = self._arrival_delay(traffic, session_id, spec_index)
                    if idle > 0:
                        await asyncio.sleep(idle)
                # The op shape of a spec is invariant across retries (only
                # observed/issued values change), so flatten it once here
                # instead of re-walking PlannedOperation objects per attempt.
                plan = [(op.is_read, op.key) for op in spec.operations]
                op_kinds = [OP_READ if is_read else OP_WRITE for is_read, _ in plan]
                op_keys = [key for _, key in plan]
                delays = None  # built lazily: most transactions never retry
                while True:
                    committed, retryable = await self._attempt(
                        session, session_id, plan, op_kinds, op_keys, stats
                    )
                    if session_id in self._abandoned:
                        # The watchdog recorded UNKNOWN and stopped
                        # counting on us; go silent.
                        return
                    if committed or not retryable:
                        break
                    if delays is None:
                        delays = self._retry_delays(session_id, spec_index)
                    delay = next(delays, None)
                    if delay is None:
                        break
                    obs.inc("repro_acollector_retries_total")
                    obs.inc("repro_resilience_backoff_seconds_total", delay)
                    stats.retries += 1
                    if delay > 0:
                        await asyncio.sleep(delay)
        except asyncio.CancelledError:
            # Cancelled by the deadline watchdog after it recorded the
            # UNKNOWN row; ending quietly keeps gather() clean.
            return
        finally:
            obs.gauge_add("repro_acollector_sessions_in_flight", -1)
            if session_id in self._abandoned:
                session.abandon()  # never await a wedged adapter again
            else:
                try:
                    await session.aclose()
                except Exception:  # noqa: BLE001 - close is best effort
                    pass

    async def _attempt(
        self,
        session,
        session_id: int,
        plan: List[Tuple[bool, str]],
        op_kinds: List[int],
        op_keys: List[str],
        stats: RunStats,
    ) -> Tuple[bool, bool]:
        """One transaction attempt, recorded as a flat row.

        ``plan``/``op_kinds``/``op_keys`` are the spec's precomputed op
        shape (shared across retries); only ``op_values`` is built here.
        Returns ``(committed, retryable)`` exactly like the threaded
        collector's ``_attempt``.
        """
        fail_point("collector.txn.attempt")
        start_ts = self._clock.tick()
        txn_id = self._allocate_txn_id()
        op_values: List[int] = []
        values_append = op_values.append
        if self.txn_deadline is not None:
            self._in_flight[session_id] = _AsyncInFlight(
                txn_id,
                session_id,
                start_ts,
                time.monotonic(),
                op_kinds,
                op_keys,
                op_values,
            )
        retryable = True
        initial_value = self.initial_value
        try:
            try:
                await session.begin()
                for is_read, key in plan:
                    if is_read:
                        value = await session.read(key)
                        # An absent object reads as the initial value ⊥T installed.
                        values_append(initial_value if value is None else value)
                    else:
                        value = self._next_value(session_id)
                        await session.write(key, value)
                        values_append(value)
                await session.commit()
                status_code = _COMMITTED
            except TransactionAborted as exc:
                await session.abort()  # idempotent; most adapters rolled back
                status_code = _ABORTED
                retryable = getattr(exc, "retryable", True)
        finally:
            if self.txn_deadline is not None:
                self._in_flight.pop(session_id, None)
        if session_id in self._abandoned:
            # The watchdog already recorded this session's attempt as
            # UNKNOWN; a late finish must not double-record.
            return False, False
        committed = status_code == _COMMITTED
        num_ops = len(op_values)
        if num_ops < len(plan):
            # Aborted mid-transaction: record only the ops that executed.
            op_kinds = op_kinds[:num_ops]
            op_keys = op_keys[:num_ops]
        stats.operations += num_ops
        if obs.enabled():
            obs.inc("repro_acollector_ops_total", num_ops)
            obs.inc(
                "repro_acollector_txns_total",
                status="committed" if committed else "aborted",
            )
        if committed:
            stats.committed += 1
        else:
            stats.aborted += 1
            if retryable:
                obs.inc("repro_collector_retryable_aborts_total")
            if not self.record_aborted:
                return committed, retryable
        # Tick-then-publish with no await between them: publish order ==
        # finish order, so the columns (and any hook) see finish_ts-sorted
        # rows.
        finish_ts = self._clock.tick()
        rows = self._rows
        if rows is None:
            self._builder.append_row(
                txn_id, session_id, status_code, start_ts, finish_ts,
                op_kinds, op_keys, op_values,
            )
        else:
            await self._publish(
                rows,
                (txn_id, session_id, status_code, start_ts, finish_ts,
                 op_kinds, op_keys, op_values),
            )
        return committed, retryable

    async def _publish(
        self, rows: "asyncio.Queue[Optional[Row]]", row: Row
    ) -> None:
        try:
            rows.put_nowait(row)  # common case: capacity available
        except asyncio.QueueFull:
            # Backpressure: the drain (SegmentWriter sealing, a slow hook)
            # is behind; this coroutine stalls until a slot frees up.
            self._stalls += 1
            obs.inc("repro_acollector_backpressure_stalls_total")
            await rows.put(row)

    # ------------------------------------------------------------------
    # Drain task: queue -> ColumnBuilder (+ hooks), in finish order
    # ------------------------------------------------------------------
    async def _drain(
        self, rows: "asyncio.Queue[Optional[Row]]", builder: ColumnBuilder
    ) -> None:
        hook = self.on_transaction
        # SegmentWriter-style hooks take flat rows and stay object-free;
        # legacy Transaction hooks get rows materialised off the hot path.
        raw_hook = getattr(hook, "append_raw", None)
        track = obs.enabled()
        while True:
            row = await rows.get()
            while row is not None:
                txn_id, session_id, status_code, start_ts, finish_ts, kinds, keys, values = row
                builder.append_raw(
                    txn_id, session_id, status_code, start_ts, finish_ts,
                    zip(kinds, keys, values),
                )
                if raw_hook is not None:
                    raw_hook(
                        txn_id, session_id, status_code, start_ts, finish_ts,
                        zip(kinds, keys, values),
                    )
                elif hook is not None:
                    hook(self._materialize(row))
                if track:
                    obs.set_gauge("repro_acollector_queue_depth", rows.qsize())
                # Drain everything already queued before yielding back to
                # the loop: one task switch flushes a whole batch of rows.
                try:
                    row = rows.get_nowait()
                except asyncio.QueueEmpty:
                    break
            else:
                return

    @staticmethod
    def _materialize(row: Row) -> Transaction:
        txn_id, session_id, status_code, start_ts, finish_ts, kinds, keys, values = row
        operations = [
            Operation(OpType.WRITE if kind else OpType.READ, key, value)
            for kind, key, value in zip(kinds, keys, values)
        ]
        return Transaction(
            txn_id=txn_id,
            operations=operations,
            session_id=session_id,
            status=STATUS_FROM_CODE[status_code],
            start_ts=start_ts,
            finish_ts=finish_ts,
        )

    # ------------------------------------------------------------------
    # Deadline watchdog
    # ------------------------------------------------------------------
    async def _watchdog(self, tasks: Dict[int, "asyncio.Task"]) -> None:
        """Abandon sessions whose current attempt outlived ``txn_deadline``.

        Unlike the threaded watchdog — which can only stop *waiting* on a
        wedged thread — cancelling the session task actually unwinds the
        coroutine; only a bridged adapter's lane thread can stay wedged,
        and it is a daemon.  The attempt is recorded as ``UNKNOWN`` (the
        honest status: the commit may still land) from its published
        in-flight state.
        """
        poll = max(min(self.txn_deadline / 4.0, 0.05), 0.001)
        while True:
            await asyncio.sleep(poll)
            now = time.monotonic()
            hung = [
                record
                for record in list(self._in_flight.values())
                if now - record.started_mono >= self.txn_deadline
            ]
            for record in hung:
                if not self._mark_abandoned(record.session_id):
                    continue
                obs.inc(
                    "repro_resilience_deadline_exceeded_total",
                    component="acollector",
                )
                task = tasks.get(record.session_id)
                if task is not None:
                    task.cancel()
                finish_ts = self._clock.tick()
                # The in-flight kinds/keys are the full spec shape; only
                # the ops that actually executed have values — record those.
                values = list(record.op_values)
                done = len(values)
                row = (
                    record.txn_id,
                    record.session_id,
                    _UNKNOWN,
                    record.start_ts,
                    finish_ts,
                    list(record.op_kinds[:done]),
                    list(record.op_keys[:done]),
                    values,
                )
                rows = self._rows
                if rows is None:
                    self._builder.append_raw(row[0], row[1], row[2], row[3], row[4],
                                             zip(row[5], row[6], row[7]))
                else:
                    await self._publish(rows, row)
