"""The database-adapter protocol: one client interface over any engine.

The paper's pipeline is *end-to-end*: workloads execute against a real
database over its client protocol, the observed requests/results become a
history, and the checker never sees anything the client did not.  This
module defines the seam that makes the rest of the repository
database-agnostic:

* a :class:`DatabaseAdapter` hands out per-session :class:`AdapterSession`
  objects (one client connection each) and advertises
  :class:`AdapterCapabilities`;
* an :class:`AdapterSession` speaks the minimal transactional KV protocol —
  ``begin`` / ``read`` / ``write`` / ``commit`` / ``abort`` — which is all a
  mini-transaction workload needs;
* :class:`AdapterError` / :class:`AdapterAborted` form the error taxonomy.
  :class:`AdapterAborted` subclasses the simulator's
  :class:`~repro.db.errors.TransactionAborted`, so the retry loop in the
  concurrent :class:`~repro.adapters.collector.Collector` and the serial
  :class:`~repro.workloads.runner.WorkloadRunner` treat a SQLite busy
  timeout, an OCC validation failure, and an injected chaos abort the same
  way.

Concrete adapters: :class:`~repro.adapters.sqlite.SQLiteAdapter` (a real
engine, stdlib only), :class:`~repro.adapters.simulated.SimulatedAdapter`
(the in-process engines of :mod:`repro.db`), and
:class:`~repro.adapters.chaos.ChaosAdapter` (protocol-boundary fault
injection over either).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..db.errors import TransactionAborted

__all__ = [
    "AdapterError",
    "AdapterAborted",
    "AdapterStateError",
    "AdapterCapabilities",
    "AdapterSession",
    "DatabaseAdapter",
]


class AdapterError(Exception):
    """Base class for errors crossing the adapter protocol boundary."""


class AdapterAborted(AdapterError, TransactionAborted):
    """The engine aborted the transaction; the client may retry.

    Inherits :class:`~repro.db.errors.TransactionAborted` so one ``except``
    clause covers simulator conflict aborts surfacing through
    :class:`~repro.adapters.simulated.SimulatedAdapter` and real-engine
    aborts (SQLite busy/locked, serialization failures) alike.
    """

    def __init__(self, reason: str, txn_id: int = -1, *, retryable: bool = True) -> None:
        TransactionAborted.__init__(self, txn_id, reason)
        self.retryable = retryable


class AdapterStateError(AdapterError):
    """The protocol was used out of order (e.g. a read outside a transaction)."""


@dataclass(frozen=True)
class AdapterCapabilities:
    """What an adapter's engine can do — consulted before collection.

    Attributes:
        name: engine identifier for logs and benchmark rows.
        isolation_levels: short names of the isolation levels histories
            collected from this adapter are expected to satisfy (strongest
            guarantees the engine provides), e.g. ``("SER", "SI")``.
        concurrent_sessions: whether sessions may run in parallel threads
            (the simulator is single-threaded behind a lock; real engines
            genuinely interleave).
        real_time: whether collected begin/commit intervals are meaningful
            for SSER checking.
    """

    name: str
    isolation_levels: Tuple[str, ...] = ()
    concurrent_sessions: bool = True
    real_time: bool = True

    def supports(self, level_short_name: str) -> bool:
        """Whether histories from this engine should satisfy the level."""
        return level_short_name.upper() in self.isolation_levels


class AdapterSession(abc.ABC):
    """One client session: a sequence of transactions over one connection.

    A session is *not* thread-safe; the collector drives each session from
    exactly one thread.  Implementations must raise :class:`AdapterAborted`
    (or any :class:`~repro.db.errors.TransactionAborted`) when the engine
    rejects the transaction, after rolling the transaction back — the caller
    only retries, it never cleans up.
    """

    @abc.abstractmethod
    def begin(self) -> None:
        """Start a transaction."""

    @abc.abstractmethod
    def read(self, key: str) -> Optional[int]:
        """Read ``key`` inside the current transaction (``None`` = absent)."""

    @abc.abstractmethod
    def write(self, key: str, value: int) -> None:
        """Write ``value`` to ``key`` inside the current transaction."""

    @abc.abstractmethod
    def commit(self) -> None:
        """Commit the current transaction (raises on conflict)."""

    @abc.abstractmethod
    def abort(self) -> None:
        """Roll back the current transaction (idempotent)."""

    def close(self) -> None:
        """Release the session's connection (default: nothing to release)."""

    # ------------------------------------------------------------------
    def __enter__(self) -> "AdapterSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class DatabaseAdapter(abc.ABC):
    """Factory of sessions over one database instance.

    Lifecycle: ``setup(keys)`` installs the initial values (the ``⊥T``
    writes), ``session(session_id)`` creates client sessions — safe to call
    from the thread that will use the session — and ``teardown()`` releases
    the database.  Adapters are usable as context managers.
    """

    @abc.abstractmethod
    def capabilities(self) -> AdapterCapabilities:
        """Describe the engine behind this adapter."""

    @abc.abstractmethod
    def session(self, session_id: int) -> AdapterSession:
        """Open a new client session (one connection per session)."""

    def setup(self, keys: Iterable[str], initial_value: int = 0) -> None:
        """Install ``initial_value`` for each key (default: no-op)."""

    def teardown(self) -> None:
        """Release database resources (default: no-op)."""

    def committed_value(self, key: str) -> Optional[int]:  # pragma: no cover - optional
        """The latest committed value of ``key``, when introspectable."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def __enter__(self) -> "DatabaseAdapter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.teardown()
