"""Database adapters and the concurrent collection pipeline.

This subpackage is the *end-to-end* layer of the reproduction: it executes
mini-transaction workloads against real databases (not only the in-process
simulator) over a generic client protocol, records what the clients
observed — unique write values, real-time begin/commit intervals — and
hands the resulting history to :class:`~repro.core.checker.MTChecker`.

* :mod:`repro.adapters.base` — the :class:`DatabaseAdapter` /
  :class:`AdapterSession` protocol and the :class:`AdapterError` taxonomy;
* :mod:`repro.adapters.sqlite` — a real engine via stdlib ``sqlite3``;
* :mod:`repro.adapters.simulated` — the simulator's engines (and fault
  plans) behind the same protocol;
* :mod:`repro.adapters.chaos` — protocol-boundary fault injection for
  true-positive detections against healthy engines;
* :mod:`repro.adapters.collector` — the multi-threaded session driver.

Use :func:`make_adapter` to construct adapters by name (the CLI's
``repro collect --adapter ...`` resolves through it).
"""

from __future__ import annotations

from typing import Optional

from .base import (
    AdapterAborted,
    AdapterCapabilities,
    AdapterError,
    AdapterSession,
    AdapterStateError,
    DatabaseAdapter,
)
from .chaos import CHAOS_FAULTS, ChaosAdapter, ChaosPlan, ChaosSession
from .collector import (
    CollectionResult,
    Collector,
    CollectorBase,
    ThreadSafeClock,
    collect_history,
)
from .simulated import SimulatedAdapter, SimulatedSession
from .sqlite import SQLiteAdapter, SQLiteSession
from .aio import (
    AsyncAdapterSession,
    AsyncDatabaseAdapter,
    AsyncSimulatedAdapter,
    AsyncSimulatedSession,
    BridgedAsyncAdapter,
    BridgedAsyncSession,
    ensure_async_adapter,
    make_async_adapter,
)
from .acollector import AsyncCollectionResult, AsyncCollector

__all__ = [
    "ADAPTER_NAMES",
    "AdapterAborted",
    "AdapterCapabilities",
    "AdapterError",
    "AdapterSession",
    "AdapterStateError",
    "AsyncAdapterSession",
    "AsyncCollectionResult",
    "AsyncCollector",
    "AsyncDatabaseAdapter",
    "AsyncSimulatedAdapter",
    "AsyncSimulatedSession",
    "BridgedAsyncAdapter",
    "BridgedAsyncSession",
    "CHAOS_FAULTS",
    "ChaosAdapter",
    "ChaosPlan",
    "ChaosSession",
    "CollectionResult",
    "Collector",
    "CollectorBase",
    "DatabaseAdapter",
    "SQLiteAdapter",
    "SQLiteSession",
    "SimulatedAdapter",
    "SimulatedSession",
    "ThreadSafeClock",
    "collect_history",
    "ensure_async_adapter",
    "make_adapter",
    "make_async_adapter",
]

#: Adapter names resolvable by :func:`make_adapter` (and the CLI).
ADAPTER_NAMES = ("sqlite", "simulated")


def make_adapter(
    name: str,
    *,
    isolation: str = "si",
    faults=None,
    path: Optional[str] = None,
    mode: str = "immediate",
    wal: bool = False,
    busy_timeout_ms: int = 2_000,
    chaos: Optional[str] = None,
    chaos_rate: float = 0.2,
    seed: int = 0,
) -> DatabaseAdapter:
    """Build an adapter by name, optionally wrapped in a :class:`ChaosAdapter`.

    Args:
        name: ``"sqlite"`` or ``"simulated"`` (see :data:`ADAPTER_NAMES`).
        isolation: simulated only — engine name for the simulator.
        faults: simulated only — a :class:`~repro.db.faults.FaultPlan`.
        path / mode / wal / busy_timeout_ms: sqlite only — see
            :class:`~repro.adapters.sqlite.SQLiteAdapter`.
        chaos: optional protocol fault to inject (see
            :data:`~repro.adapters.chaos.CHAOS_FAULTS`).
        chaos_rate: probability per opportunity for the chosen chaos fault.
        seed: RNG seed for the chaos plan.
    """
    if name == "sqlite":
        adapter: DatabaseAdapter = SQLiteAdapter(
            path, mode=mode, wal=wal, busy_timeout_ms=busy_timeout_ms
        )
    elif name == "simulated":
        adapter = SimulatedAdapter(isolation, faults=faults)
    else:
        raise ValueError(f"unknown adapter {name!r}; known: {', '.join(ADAPTER_NAMES)}")
    if chaos is not None:
        adapter = ChaosAdapter(adapter, ChaosPlan.for_fault(chaos, rate=chaos_rate, seed=seed))
    return adapter
