"""Concurrent history collection over any database adapter.

The serial :class:`~repro.workloads.runner.WorkloadRunner` *simulates*
concurrency by interleaving session steps; real engines need real
concurrency.  :class:`Collector` drives one OS thread per workload session
through a :class:`~repro.adapters.base.DatabaseAdapter`, records what each
client observed, and assembles the per-session logs into one
:class:`~repro.core.model.History` — Steps 1–3 of the paper's end-to-end
workflow (Figure 2), against an arbitrary engine.

Guarantees the checker relies on:

* **Unique written values** (Definition 9): a process-wide counter assigns
  every write ``session_id * 10_000_000 + n``, the same scheme as the
  serial runner; the collector additionally verifies no value is ever
  issued twice.
* **Real-time intervals**: one shared, lock-protected
  :class:`~repro.storage.clock.LogicalClock` is ticked immediately before
  ``begin`` and immediately after ``commit``/abort, so every recorded
  ``[start_ts, finish_ts]`` interval contains the transaction's actual
  execution and the derived RT order is sound for SSER checking.
* **Retry parity with the simulator**: any
  :class:`~repro.db.errors.TransactionAborted` (simulator conflicts, SQLite
  busy/locked via :func:`~repro.db.errors.retryable_sqlite_abort`, chaos
  aborts) is recorded as an aborted attempt and retried with fresh values,
  up to ``max_retries`` times.
* **Stream compatibility**: the ``on_transaction`` hook fires under a lock
  in finish-timestamp order, so a
  :class:`~repro.history.serialization.HistoryStreamWriter` (JSONL), a
  :class:`~repro.history.columnar.SegmentWriter` (binary columnar segment
  — the checker's zero-copy fast path, persisted when the writer closes),
  or a streaming :class:`~repro.core.incremental.CheckerSession` can
  consume the history live, exactly as with the serial runner.  (``repro
  collect --output x.seg`` writes the segment from the assembled history
  after the run completes.)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Set

from .. import obs
from ..core.model import (
    History,
    Operation,
    Session,
    Transaction,
    TransactionStatus,
    make_initial_transaction,
    read,
    write,
)
from ..db.errors import TransactionAborted
from ..storage.clock import LogicalClock
from ..workloads.runner import RunStats
from ..workloads.spec import TransactionSpec, Workload
from .base import AdapterError, DatabaseAdapter

__all__ = ["ThreadSafeClock", "Collector", "CollectionResult", "collect_history"]


class ThreadSafeClock:
    """A :class:`~repro.storage.clock.LogicalClock` behind a lock.

    Ticks happen at the wall-clock moments events occur and the clock is
    strictly monotonic across threads, so stamped intervals order exactly
    like the real-time events they bracket.
    """

    def __init__(self, base: Optional[LogicalClock] = None) -> None:
        self._base = base if base is not None else LogicalClock()
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._base.now()

    def tick(self, amount: Optional[float] = None) -> float:
        with self._lock:
            return self._base.tick(amount)


@dataclass
class CollectionResult:
    """A concurrently recorded history plus execution statistics."""

    history: History
    stats: RunStats
    adapter_name: str = ""


class Collector:
    """Multi-threaded workload driver over a database adapter.

    One thread per workload session (a session is a serial stream of
    transactions by definition, so session count *is* the concurrency
    level).  Sessions are opened inside their threads, which keeps
    thread-affine clients (``sqlite3`` connections) happy.

    Args:
        adapter: the database under test.
        max_retries: retries per aborted transaction (fresh values each).
        record_aborted: include aborted attempts in the history (needed for
            AbortedRead detection; checkers ignore them otherwise).
        on_transaction: live hook, called with every recorded transaction
            in finish-timestamp order (see module docstring).
        setup_keys: pre-install the workload's keys via ``adapter.setup``
            so the history's ``⊥T`` matches the database's initial state.
        initial_value: value installed for each pre-populated key.
    """

    def __init__(
        self,
        adapter: DatabaseAdapter,
        *,
        max_retries: int = 3,
        record_aborted: bool = True,
        on_transaction: Optional[Callable[[Transaction], object]] = None,
        setup_keys: bool = True,
        initial_value: int = 0,
    ) -> None:
        self.adapter = adapter
        self.max_retries = max_retries
        self.record_aborted = record_aborted
        self.on_transaction = on_transaction
        self.setup_keys = setup_keys
        self.initial_value = initial_value
        self._clock = ThreadSafeClock()
        self._id_lock = threading.Lock()
        self._record_lock = threading.Lock()
        self._next_txn_id = 1
        self._value_counter = 0
        self._issued_values: Set[int] = set()

    # ------------------------------------------------------------------
    def collect(self, workload: Workload) -> CollectionResult:
        """Execute the workload concurrently and return the history."""
        started = time.perf_counter()
        stats = RunStats()
        if self.setup_keys:
            self.adapter.setup(workload.keys, self.initial_value)

        session_logs = [Session(session_id=sid) for sid in range(len(workload.sessions))]
        errors: List[BaseException] = []
        threads = [
            threading.Thread(
                target=self._run_session,
                args=(sid, list(specs), session_logs[sid], stats, errors),
                name=f"collector-session-{sid}",
                daemon=True,
            )
            for sid, specs in enumerate(workload.sessions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

        history = History(sessions=session_logs)
        # ⊥T must install what the database actually holds initially, or a
        # healthy engine would be flagged with spurious ThinAirReads.
        history.initial_transaction = make_initial_transaction(
            workload.keys, value=self.initial_value
        )
        stats.wall_seconds = time.perf_counter() - started
        stats.logical_time = self._clock.now()
        return CollectionResult(
            history=history,
            stats=stats,
            adapter_name=self.adapter.capabilities().name,
        )

    # ------------------------------------------------------------------
    # Per-session worker
    # ------------------------------------------------------------------
    def _run_session(
        self,
        session_id: int,
        specs: List[TransactionSpec],
        log: Session,
        stats: RunStats,
        errors: List[BaseException],
    ) -> None:
        try:
            session = self.adapter.session(session_id)
        except BaseException as exc:  # noqa: BLE001 - reported to collect()
            errors.append(exc)
            return
        obs.gauge_add("repro_collector_sessions_in_flight", 1)
        try:
            for spec in specs:
                retries_left = self.max_retries
                while True:
                    committed, retryable = self._attempt(session, session_id, spec, log, stats)
                    if committed or not retryable or retries_left <= 0:
                        break
                    retries_left -= 1
                    obs.inc("repro_collector_retries_total")
                    with self._record_lock:
                        stats.retries += 1
        except BaseException as exc:  # noqa: BLE001 - reported to collect()
            errors.append(exc)
        finally:
            obs.gauge_add("repro_collector_sessions_in_flight", -1)
            session.close()

    def _attempt(self, session, session_id: int, spec, log: Session, stats: RunStats):
        """Run one transaction attempt and record it.

        Returns ``(committed, retryable)``: whether the attempt committed,
        and — when it aborted — whether the engine marked the abort as
        worth retrying (permanent failures are recorded but not re-run).
        """
        start_ts = self._clock.tick()
        txn_id = self._allocate_txn_id()
        operations: List[Operation] = []
        retryable = True
        try:
            session.begin()
            for planned in spec.operations:
                if planned.is_read:
                    value = session.read(planned.key)
                    # An absent object reads as the initial value ⊥T installed.
                    operations.append(
                        read(planned.key, value if value is not None else self.initial_value)
                    )
                else:
                    value = self._next_value(session_id)
                    session.write(planned.key, value)
                    operations.append(write(planned.key, value))
            session.commit()
            status = TransactionStatus.COMMITTED
        except TransactionAborted as exc:
            session.abort()  # idempotent; most adapters already rolled back
            status = TransactionStatus.ABORTED
            retryable = getattr(exc, "retryable", True)
            if retryable:
                obs.inc("repro_collector_retryable_aborts_total")
        self._record(
            txn_id, session_id, operations, status, start_ts, log, stats,
            num_ops=len(operations),
        )
        return status is TransactionStatus.COMMITTED, retryable

    # ------------------------------------------------------------------
    # Shared-state helpers
    # ------------------------------------------------------------------
    def _record(
        self,
        txn_id: int,
        session_id: int,
        operations: List[Operation],
        status: TransactionStatus,
        start_ts: float,
        log: Session,
        stats: RunStats,
        *,
        num_ops: int,
    ) -> None:
        # One lock around the finish stamp, the log append, the stats update,
        # and the hook call: hooks observe transactions in finish_ts order.
        if obs.enabled():
            obs.inc("repro_collector_ops_total", num_ops)
            obs.inc(
                "repro_collector_txns_total",
                status=(
                    "committed"
                    if status is TransactionStatus.COMMITTED
                    else "aborted"
                ),
            )
        with self._record_lock:
            finish_ts = self._clock.tick()
            stats.operations += num_ops
            if status is TransactionStatus.COMMITTED:
                stats.committed += 1
            else:
                stats.aborted += 1
                if not self.record_aborted:
                    return
            txn = Transaction(
                txn_id=txn_id,
                operations=operations,
                session_id=session_id,
                status=status,
                start_ts=start_ts,
                finish_ts=finish_ts,
            )
            log.transactions.append(txn)
            if self.on_transaction is not None:
                self.on_transaction(txn)

    def _allocate_txn_id(self) -> int:
        with self._id_lock:
            txn_id = self._next_txn_id
            self._next_txn_id += 1
            return txn_id

    def _next_value(self, session_id: int) -> int:
        """Globally unique write values (client id + shared counter), with
        the MT uniqueness invariant enforced rather than assumed."""
        with self._id_lock:
            self._value_counter += 1
            value = session_id * 10_000_000 + self._value_counter
            if value == self.initial_value:
                # The pre-populated value already belongs to ⊥T; re-issuing
                # it would break unique written values (session 0's values
                # are the bare counter, so e.g. initial_value=7 collides
                # with its 7th write — a timing-dependent FutureRead).
                self._value_counter += 1
                value = session_id * 10_000_000 + self._value_counter
            if value in self._issued_values:
                raise AdapterError(
                    f"unique-written-value invariant violated: {value} issued twice"
                )
            self._issued_values.add(value)
            return value


def collect_history(
    adapter: DatabaseAdapter,
    workload: Workload,
    *,
    max_retries: int = 3,
    record_aborted: bool = True,
    on_transaction: Optional[Callable[[Transaction], object]] = None,
) -> CollectionResult:
    """Convenience wrapper around :class:`Collector` (mirrors
    :func:`repro.workloads.runner.run_workload`)."""
    collector = Collector(
        adapter,
        max_retries=max_retries,
        record_aborted=record_aborted,
        on_transaction=on_transaction,
    )
    return collector.collect(workload)
